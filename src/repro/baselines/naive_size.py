"""The naive clock-free batch-size baseline (paper §6.5).

A Count-Min layout in which every counter carries a 64-bit ``t_l``
("last visited") timestamp instead of an ``s``-bit clock. Insertion
checks the gap: above ``T`` means the counter belongs to a finished
batch, so it restarts at 1; otherwise it increments. Querying takes
the minimum over the ``d`` hashed counters of cells that are still
in-window (stale cells count as zero). The 64-bit timestamps eat the
memory budget that CM+clock spends on counters, which is Figure 11b's
comparison.
"""

from __future__ import annotations

import numpy as np

from ..core.base import ClockSketchBase
from ..errors import ConfigurationError
from ..hashing import IndexDeriver
from ..timebase import WindowSpec
from ..units import parse_memory

__all__ = ["NaiveSizeSketch"]

#: 64-bit timestamp per counter (plus the counter itself).
TIMESTAMP_BITS = 64
DEFAULT_COUNTER_BITS = 16


class NaiveSizeSketch(ClockSketchBase):
    """The §6.5 naive batch-size baseline (timestamps instead of clocks).

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> cm = NaiveSizeSketch(width=128, depth=3, window=count_window(64))
    >>> for _ in range(5):
    ...     cm.insert("key")
    >>> cm.query("key")
    5
    """

    def __init__(self, width: int, depth: int, window: WindowSpec,
                 counter_bits: int = DEFAULT_COUNTER_BITS, seed: int = 0):
        super().__init__(window)
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.counter_bits = int(counter_bits)
        self.counter_max = (1 << counter_bits) - 1
        size = self.width * self.depth
        self.counters = np.zeros(size, dtype=np.uint32)
        self.last_visit = np.full(size, -np.inf, dtype=np.float64)
        self._derivers = [
            IndexDeriver(n=self.width, k=1, seed=seed + 1000003 * row)
            for row in range(self.depth)
        ]
        self.seed = seed

    @classmethod
    def from_memory(cls, memory, window: WindowSpec, depth: int = 3,
                    counter_bits: int = DEFAULT_COUNTER_BITS,
                    seed: int = 0) -> "NaiveSizeSketch":
        """Build a sketch fitting a budget of ``d*w*(b+64)`` bits."""
        bits = parse_memory(memory)
        width = bits // (depth * (counter_bits + TIMESTAMP_BITS))
        if width < 1:
            raise ConfigurationError(
                f"memory budget {bits} bits cannot hold one cell per row"
            )
        return cls(width=width, depth=depth, window=window,
                   counter_bits=counter_bits, seed=seed)

    def _flat_indexes(self, item) -> "list[int]":
        return [
            row * self.width + deriver.indexes(item)[0]
            for row, deriver in enumerate(self._derivers)
        ]

    def insert(self, item, t=None) -> None:
        """Increment the item's counters, restarting stale ones at 1."""
        now = self._insert_time(t)
        length = self.window.length
        for flat in self._flat_indexes(item):
            if now - self.last_visit[flat] >= length:
                self.counters[flat] = 1
            elif self.counters[flat] < self.counter_max:
                self.counters[flat] += 1
            self.last_visit[flat] = now

    def insert_many(self, keys, times=None) -> None:
        """Insert an array of integer keys (bulk-hashed)."""
        keys = np.asarray(keys)
        offsets = np.arange(self.depth, dtype=np.int64) * self.width
        columns = np.stack(
            [d.bulk_single(keys) for d in self._derivers], axis=1
        )
        flat_matrix = columns + offsets[None, :]
        if self.window.is_count_based:
            time_iter = (None for _ in range(len(keys)))
        else:
            if times is None:
                raise ConfigurationError("time-based insert_many requires times")
            time_iter = iter(np.asarray(times, dtype=float))
        length = self.window.length
        counters = self.counters
        last = self.last_visit
        counter_max = self.counter_max
        for row in flat_matrix:
            now = self._insert_time(next(time_iter))
            for flat in row:
                if now - last[flat] >= length:
                    counters[flat] = 1
                elif counters[flat] < counter_max:
                    counters[flat] += 1
                last[flat] = now

    def query(self, item, t=None) -> int:
        """Estimated size of the item's active batch (0 when inactive)."""
        now = self._query_time(t)
        length = self.window.length
        best = None
        for flat in self._flat_indexes(item):
            value = (
                int(self.counters[flat])
                if now - self.last_visit[flat] < length
                else 0
            )
            best = value if best is None else min(best, value)
        return int(best)

    def query_many(self, keys, t=None) -> np.ndarray:
        """Vectorised :meth:`query` over an integer key array."""
        now = self._query_time(t)
        offsets = np.arange(self.depth, dtype=np.int64) * self.width
        columns = np.stack(
            [d.bulk_single(np.asarray(keys)) for d in self._derivers], axis=1
        )
        flat_matrix = columns + offsets[None, :]
        live = now - self.last_visit[flat_matrix] < self.window.length
        values = np.where(live, self.counters[flat_matrix], 0)
        return np.min(values, axis=1).astype(np.int64)

    def memory_bits(self) -> int:
        """Accounted footprint: ``d*w`` cells of ``b + 64`` bits."""
        return self.width * self.depth * (self.counter_bits + TIMESTAMP_BITS)

    def __repr__(self) -> str:
        return (
            f"NaiveSizeSketch(width={self.width}, depth={self.depth}, "
            f"b={self.counter_bits}, window={self.window})"
        )
