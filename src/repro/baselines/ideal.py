"""The "Ideal" curve: a Bloom filter with perfect expiry (§6.2).

The paper's ideal baseline "artificially eliminates the error window":
at query time only the items that truly arrived within ``(t - T, t]``
are in a plain Bloom filter of the full memory budget. Any remaining
false positives are pure hash collisions — the floor every
sliding-window filter is chasing.

The implementation keeps the exact window as a deque (the oracle) and a
*counting* shadow of the Bloom filter so expired items can be removed;
memory is accounted as the plain ``n``-bit filter, because the counters
are only the simulation device for the oracle's deletions.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.base import ClockSketchBase
from ..core.params import optimal_k_membership
from ..hashing import IndexDeriver
from ..timebase import WindowSpec
from ..units import parse_memory

__all__ = ["IdealSlidingBloom"]


class IdealSlidingBloom(ClockSketchBase):
    """A Bloom filter over exactly the in-window items (oracle expiry).

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> f = IdealSlidingBloom(n=512, k=4, window=count_window(2))
    >>> f.insert("a"); f.insert("b"); f.insert("c")
    >>> f.contains("a")  # expired: only the last 2 items are present
    False
    """

    def __init__(self, n: int, k: int, window: WindowSpec, seed: int = 0):
        super().__init__(window)
        self.k = int(k)
        self.counters = np.zeros(n, dtype=np.int32)
        self.deriver = IndexDeriver(n=n, k=k, seed=seed)
        self.seed = seed
        self._window_events: deque = deque()  # (time, index-row)

    @classmethod
    def from_memory(cls, memory, window: WindowSpec, k: "int | None" = None,
                    seed: int = 0) -> "IdealSlidingBloom":
        """Build the ideal filter for a budget of ``n`` 1-bit cells."""
        bits = parse_memory(memory)
        n = max(1, bits)  # one bit per cell
        if k is None:
            # Optimal k for the true load (no error window: s -> infinity
            # limit of the §5.1 formula is simply n ln2 / T).
            k = optimal_k_membership(n, window.length, s=30)
        return cls(n=n, k=k, window=window, seed=seed)

    @property
    def n(self) -> int:
        """Number of (bit) cells."""
        return len(self.counters)

    def _expire(self, now: float) -> None:
        events = self._window_events
        length = self.window.length
        while events and not (now - events[0][0] < length):
            _t, row = events.popleft()
            self.counters[row] -= 1

    def insert(self, item, t=None) -> None:
        """Add the item; anything older than the window is removed."""
        now = self._insert_time(t)
        self._expire(now)
        row = np.asarray(self.deriver.indexes(item))
        self.counters[row] += 1
        self._window_events.append((now, row))

    def insert_many(self, keys, times=None) -> None:
        """Insert an array of integer keys (bulk-hashed)."""
        keys = np.asarray(keys)
        matrix = self.deriver.bulk(keys)
        if self.window.is_count_based:
            time_iter = (None for _ in range(len(keys)))
        else:
            time_iter = iter(np.asarray(times, dtype=float))
        for row in matrix:
            now = self._insert_time(next(time_iter))
            self._expire(now)
            self.counters[row] += 1
            self._window_events.append((now, row))

    def contains(self, item, t=None) -> bool:
        """Membership against exactly the in-window items."""
        now = self._query_time(t)
        self._expire(now)
        return bool(np.all(self.counters[self.deriver.indexes(item)] > 0))

    def contains_many(self, keys, t=None) -> np.ndarray:
        """Vectorised :meth:`contains` over an integer key array."""
        now = self._query_time(t)
        self._expire(now)
        matrix = self.deriver.bulk(np.asarray(keys))
        return np.all(self.counters[matrix] > 0, axis=1)

    def memory_bits(self) -> int:
        """Accounted footprint: the plain n-bit Bloom filter."""
        return self.n

    def __repr__(self) -> str:
        return f"IdealSlidingBloom(n={self.n}, k={self.k}, window={self.window})"
