"""The naive clock-free time-span baseline (paper §6.4).

Each of the ``n`` cells holds two 64-bit timestamps: ``t_l``, the last
time the cell was visited, and ``t_sr``, the recorded start of the
batch occupying it. Insertion refreshes ``t_l`` and resets ``t_sr``
when the cell looks expired (gap above ``T``); querying picks the
earliest ``t_l`` among the ``k`` hashed cells (call it ``t_f``) —
active batches must satisfy ``t_cur - t_f < T`` — and returns the
latest ``t_sr`` among the cells achieving ``t_f``.

Like BF-ts+clock, the naive scheme answers exactly or overestimates the
span; it simply pays 64 bits of "clock" per cell where the Clock-sketch
pays ``s``, which is the whole comparison of Figure 10b.
"""

from __future__ import annotations

import numpy as np

from ..core.base import ClockSketchBase
from ..core.params import cells_for_memory
from ..core.timespan import TimeSpanBatchResult, TimeSpanResult
from ..errors import ConfigurationError
from ..hashing import IndexDeriver
from ..timebase import WindowSpec
from ..units import parse_memory

__all__ = ["NaiveTimeSpanSketch"]

#: Two 64-bit timestamps per cell.
CELL_BITS = 128


class NaiveTimeSpanSketch(ClockSketchBase):
    """The §6.4 naive time-span baseline (timestamps instead of clocks).

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> ts = NaiveTimeSpanSketch(n=256, k=2, window=count_window(64))
    >>> for _ in range(10):
    ...     ts.insert("job")
    >>> ts.query("job").span
    9.0
    """

    def __init__(self, n: int, k: int, window: WindowSpec, seed: int = 0):
        super().__init__(window)
        self.k = int(k)
        self.last_visit = np.full(n, -np.inf, dtype=np.float64)
        self.batch_start = np.zeros(n, dtype=np.float64)
        self.deriver = IndexDeriver(n=n, k=k, seed=seed)
        self.seed = seed

    @classmethod
    def from_memory(cls, memory, window: WindowSpec, k: int = 2,
                    seed: int = 0) -> "NaiveTimeSpanSketch":
        """Build a sketch fitting a budget of 128-bit cells."""
        bits = parse_memory(memory)
        n = cells_for_memory(bits, CELL_BITS)
        return cls(n=n, k=k, window=window, seed=seed)

    @property
    def n(self) -> int:
        """Number of (t_l, t_sr) cell pairs."""
        return len(self.last_visit)

    def insert(self, item, t=None) -> None:
        """Refresh the item's cells; restart stale ones."""
        now = self._insert_time(t)
        idx = np.asarray(self.deriver.indexes(item))
        stale = now - self.last_visit[idx] >= self.window.length
        self.batch_start[idx[stale]] = now
        self.last_visit[idx] = now

    def insert_many(self, keys, times=None) -> None:
        """Insert an array of integer keys (bulk-hashed)."""
        keys = np.asarray(keys)
        matrix = self.deriver.bulk(keys)
        if self.window.is_count_based:
            time_iter = (None for _ in range(len(keys)))
        else:
            if times is None:
                raise ConfigurationError("time-based insert_many requires times")
            time_iter = iter(np.asarray(times, dtype=float))
        length = self.window.length
        for row in matrix:
            now = self._insert_time(next(time_iter))
            stale = now - self.last_visit[row] >= length
            self.batch_start[row[stale]] = now
            self.last_visit[row] = now

    def query(self, item, t=None) -> TimeSpanResult:
        """Time span of the item's batch (exact or overestimated)."""
        now = self._query_time(t)
        idx = np.asarray(self.deriver.indexes(item))
        visits = self.last_visit[idx]
        t_f = float(np.min(visits))
        if not now - t_f < self.window.length:
            return TimeSpanResult(active=False)
        achieving = idx[visits == t_f]
        begin = float(np.max(self.batch_start[achieving]))
        return TimeSpanResult(active=True, span=now - begin, begin=begin)

    def query_many(self, items, t=None) -> TimeSpanBatchResult:
        """Vectorised :meth:`query` over a batch of items.

        Item ``i`` gets exactly the scalar answer: ``t_f`` is the
        earliest last-visit among its ``k`` cells, the batch is active
        iff ``t_cur - t_f < T``, and ``begin`` is the latest recorded
        start among the cells achieving ``t_f``; inactive items hold
        NaN in both float arrays.
        """
        now = self._query_time(t)
        matrix = self.deriver.bulk_items(items)
        visits = self.last_visit[matrix]
        t_f = np.min(visits, axis=1)
        active = now - t_f < self.window.length
        starts = np.where(visits == t_f[:, None], self.batch_start[matrix],
                          -np.inf)
        begin = np.max(starts, axis=1)
        span = now - begin
        begin[~active] = np.nan
        span[~active] = np.nan
        return TimeSpanBatchResult(active=active, span=span, begin=begin)

    def memory_bits(self) -> int:
        """Accounted footprint: ``n`` cells of 128 bits."""
        return self.n * CELL_BITS

    def __repr__(self) -> str:
        return f"NaiveTimeSpanSketch(n={self.n}, k={self.k}, window={self.window})"
