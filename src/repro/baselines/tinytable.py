"""A counting fingerprint table — the TinyTable role in SWAMP.

SWAMP (Assaf et al., INFOCOM 2018) pairs its cyclic fingerprint queue
with TinyTable (Einziger & Friedman, 2015), a bit-packed counting hash
table, to answer "how many of the last w items carry fingerprint p?".
Per DESIGN.md §4, we implement a counting fingerprint multiset with the
same query semantics — membership, per-fingerprint counts, and the
number of distinct fingerprints — and account memory analytically.
Collision behaviour (what determines accuracy) is identical: it is a
property of the fingerprint space, not of the table layout.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["CountingTable"]


class CountingTable:
    """A multiset of fingerprints with O(1) add/remove/query.

    Examples
    --------
    >>> t = CountingTable()
    >>> t.add(5); t.add(5); t.add(9)
    >>> t.count(5), t.distinct(), len(t)
    (2, 2, 3)
    >>> t.remove(5)
    >>> t.count(5)
    1
    """

    def __init__(self):
        self._counts: Counter = Counter()
        self._total = 0

    def add(self, fingerprint: int) -> None:
        """Add one occurrence of a fingerprint."""
        self._counts[fingerprint] += 1
        self._total += 1

    def remove(self, fingerprint: int) -> None:
        """Remove one occurrence; raises ``KeyError`` if absent."""
        current = self._counts.get(fingerprint, 0)
        if current <= 0:
            raise KeyError(f"fingerprint {fingerprint} not present")
        if current == 1:
            del self._counts[fingerprint]
        else:
            self._counts[fingerprint] = current - 1
        self._total -= 1

    def contains(self, fingerprint: int) -> bool:
        """Is the fingerprint present at least once?"""
        return fingerprint in self._counts

    def count(self, fingerprint: int) -> int:
        """Multiplicity of the fingerprint."""
        return self._counts.get(fingerprint, 0)

    def distinct(self) -> int:
        """Number of distinct fingerprints present."""
        return len(self._counts)

    def __len__(self) -> int:
        return self._total

    def __repr__(self) -> str:
        return f"CountingTable(total={self._total}, distinct={self.distinct()})"
