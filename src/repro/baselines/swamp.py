"""SWAMP (Assaf et al., INFOCOM 2018) — paper §2.1.1.

A cyclic queue of the fingerprints of the last ``w`` items plus a
counting table of those fingerprints. ISMEMBER reports an item active
if its fingerprint occurs anywhere in the window; DISTINCTMLE estimates
the number of distinct items from the number of distinct fingerprints
via maximum likelihood over the ``2^f`` fingerprint space.

SWAMP's window is inherently count-based (a fixed-length queue). For
time-based experiments the paper's constant-rate equivalence applies:
construct with ``w`` equal to the expected number of items per window.

Memory: the queue holds ``w`` fingerprints of ``f`` bits and TinyTable
adds a small constant factor; ``from_memory`` solves for the largest
``f`` that fits, which is how SWAMP's accuracy degrades at small
budgets (fewer fingerprint bits, more collisions).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import MemoryBudgetError
from ..hashing import Fingerprinter
from ..units import parse_memory

__all__ = ["Swamp", "distinct_mle"]

#: TinyTable overhead factor over the raw fingerprint queue (the SWAMP
#: paper's α ≈ 0.2 slack plus table metadata).
TABLE_OVERHEAD = 1.2


def distinct_mle(distinct_fingerprints: int, fingerprint_bits: int) -> float:
    """Maximum-likelihood distinct-item count from distinct fingerprints.

    With a fingerprint space of ``F = 2^f``, observing ``z`` distinct
    fingerprints among the window's items has likelihood maximised at
    ``d = ln(1 - z/F) / ln(1 - 1/F)`` (the coupon-collector inversion).
    Saturates to the fingerprint-space size when ``z == F``.
    """
    space = 1 << fingerprint_bits
    z = min(distinct_fingerprints, space)
    if z <= 0:
        return 0.0
    if z >= space:
        return float(space * math.log(space))  # effectively saturated
    return math.log1p(-z / space) / math.log1p(-1.0 / space)


class Swamp:
    """SWAMP: sliding-window membership and distinct counting.

    Parameters
    ----------
    window_items:
        Queue length ``w`` (the count-based window).
    fingerprint_bits:
        Width ``f`` of each fingerprint.

    Examples
    --------
    >>> s = Swamp(window_items=4, fingerprint_bits=16)
    >>> for key in ["a", "b", "c", "d", "e", "f"]:
    ...     s.insert(key)
    >>> s.ismember("a")  # "a" slid out of the last-4 window
    False
    >>> s.ismember("d")
    True
    """

    def __init__(self, window_items: int, fingerprint_bits: int, seed: int = 0):
        if window_items < 1:
            raise MemoryBudgetError(f"window must hold >= 1 item, got {window_items}")
        self.window_items = int(window_items)
        self.fingerprint_bits = int(fingerprint_bits)
        self._fingerprinter = Fingerprinter(fingerprint_bits, seed=seed)
        self._queue = np.zeros(self.window_items, dtype=np.uint64)
        self._occupied = np.zeros(self.window_items, dtype=bool)
        self._head = 0
        self._table = None
        # Late import to avoid a cycle in __init__ ordering.
        from .tinytable import CountingTable
        self._table = CountingTable()
        self.seed = seed

    @classmethod
    def from_memory(cls, memory, window_items: int, seed: int = 0) -> "Swamp":
        """Build a SWAMP fitting a budget; solves for fingerprint bits.

        Raises :class:`~repro.errors.MemoryBudgetError` when the budget
        cannot afford even 1-bit fingerprints for the window — SWAMP
        fundamentally needs Ω(w) bits.
        """
        bits = parse_memory(memory)
        f = int(bits / (window_items * TABLE_OVERHEAD))
        if f < 1:
            raise MemoryBudgetError(
                f"{bits} bits cannot hold {window_items} fingerprints"
            )
        return cls(window_items=window_items, fingerprint_bits=min(f, 64), seed=seed)

    def insert(self, item) -> None:
        """Push the item's fingerprint, evicting the oldest one."""
        fp = self._fingerprinter.fingerprint(item)
        if self._occupied[self._head]:
            self._table.remove(int(self._queue[self._head]))
        self._queue[self._head] = fp
        self._occupied[self._head] = True
        self._table.add(fp)
        self._head = (self._head + 1) % self.window_items

    def insert_many(self, keys) -> None:
        """Insert an array of integer keys (bulk-fingerprinted)."""
        for fp in self._fingerprinter.bulk(np.asarray(keys)):
            if self._occupied[self._head]:
                self._table.remove(int(self._queue[self._head]))
            self._queue[self._head] = fp
            self._occupied[self._head] = True
            self._table.add(int(fp))
            self._head = (self._head + 1) % self.window_items

    def ismember(self, item) -> bool:
        """SWAMP's ISMEMBER: is the item in the last ``w`` items?"""
        return self._table.contains(self._fingerprinter.fingerprint(item))

    def ismember_many(self, keys) -> np.ndarray:
        """Vectorised ISMEMBER over an integer key array."""
        fps = self._fingerprinter.bulk(np.asarray(keys))
        table = self._table
        return np.fromiter(
            (table.contains(int(fp)) for fp in fps), dtype=bool, count=len(fps)
        )

    def distinct_estimate(self) -> float:
        """SWAMP's DISTINCTMLE over the current window."""
        return distinct_mle(self._table.distinct(), self.fingerprint_bits)

    def frequency(self, item) -> int:
        """Fingerprint multiplicity of the item in the window (COUNT)."""
        return self._table.count(self._fingerprinter.fingerprint(item))

    def memory_bits(self) -> int:
        """Accounted footprint: queue plus TinyTable overhead."""
        return int(self.window_items * self.fingerprint_bits * TABLE_OVERHEAD)

    def __repr__(self) -> str:
        return (
            f"Swamp(w={self.window_items}, f={self.fingerprint_bits})"
        )
