"""State-of-the-art baselines the paper compares against (§2.1, §6).

Activeness/membership:

- :class:`~repro.baselines.tobf.TimeOutBloomFilter` (TOBF) — 64-bit
  timestamp cells.
- :class:`~repro.baselines.tbf.TimingBloomFilter` (TBF) — wraparound
  time counters with a background cleaning scan.
- :class:`~repro.baselines.swamp.Swamp` (SWAMP) — cyclic fingerprint
  queue over a TinyTable, ISMEMBER + DISTINCTMLE estimators.
- :class:`~repro.baselines.ideal.IdealSlidingBloom` — the "Ideal"
  curve: a Bloom filter with perfect (oracle) expiry.

Cardinality:

- :class:`~repro.baselines.cvs.CounterVectorSketch` (CVS) — max-set
  counters with random decrements.
- :class:`~repro.baselines.tsv.TimestampVector` (TSV) — linear counting
  over timestamp cells.

Naive clock-free designs (§6.4, §6.5):

- :class:`~repro.baselines.naive_timespan.NaiveTimeSpanSketch`
- :class:`~repro.baselines.naive_size.NaiveSizeSketch`
"""

from .tobf import TimeOutBloomFilter
from .tbf import TimingBloomFilter
from .tinytable import CountingTable
from .swamp import Swamp, distinct_mle
from .cvs import CounterVectorSketch
from .tsv import TimestampVector
from .ideal import IdealSlidingBloom
from .naive_timespan import NaiveTimeSpanSketch
from .naive_size import NaiveSizeSketch
from .snapshots import (
    snapshot_cvs_estimate,
    snapshot_ideal_membership,
    snapshot_swamp_distinct,
    snapshot_swamp_ismember,
    snapshot_timestamp_membership,
    snapshot_tsv_estimate,
)

__all__ = [
    "TimeOutBloomFilter",
    "TimingBloomFilter",
    "CountingTable",
    "Swamp",
    "distinct_mle",
    "CounterVectorSketch",
    "TimestampVector",
    "IdealSlidingBloom",
    "NaiveTimeSpanSketch",
    "NaiveSizeSketch",
    "snapshot_timestamp_membership",
    "snapshot_tsv_estimate",
    "snapshot_swamp_ismember",
    "snapshot_swamp_distinct",
    "snapshot_ideal_membership",
    "snapshot_cvs_estimate",
]
