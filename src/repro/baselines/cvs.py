"""Counter Vector Sketch (Shan et al., Neurocomputing 2016) — §2.1.2.

An array of ``n`` small counters. Insertion sets the hashed counter to
a maximum value ``c``; after every insertion a number of *randomly
chosen* counters are decremented, tuned so that an untouched counter
decays from ``c`` to zero in roughly one window. Cardinality is then
linear counting over the non-zero counters. The randomness of the
decay is CVS's weakness — the paper notes "CVS falls short in the error
induced by the randomness in picking counters to decrement" — and it
is visible in the reproduction as extra variance versus BM+clock.
"""

from __future__ import annotations

import numpy as np

from ..core.base import ClockSketchBase
from ..core.cardinality import CardinalityEstimate, linear_counting_estimate
from ..core.params import cells_for_memory
from ..hashing import IndexDeriver
from ..timebase import WindowSpec
from ..units import parse_memory

__all__ = ["CounterVectorSketch"]

#: §6.3: "the maximum value of counter as 10 for CVS"; 4-bit cells.
DEFAULT_MAX_COUNT = 10
DEFAULT_COUNTER_BITS = 4


class CounterVectorSketch(ClockSketchBase):
    """CVS: max-set counters with random decay.

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> cvs = CounterVectorSketch(n=4096, window=count_window(512), seed=3)
    >>> for key in range(100):
    ...     cvs.insert(key)
    >>> 60 < cvs.estimate().value < 160
    True
    """

    def __init__(self, n: int, window: WindowSpec,
                 max_count: int = DEFAULT_MAX_COUNT,
                 counter_bits: int = DEFAULT_COUNTER_BITS, seed: int = 0):
        super().__init__(window)
        if max_count >= (1 << counter_bits):
            raise ValueError(
                f"max_count {max_count} does not fit in {counter_bits} bits"
            )
        self.max_count = int(max_count)
        self.counter_bits = int(counter_bits)
        self.counters = np.zeros(n, dtype=np.uint8)
        self.deriver = IndexDeriver(n=n, k=1, seed=seed)
        self.seed = seed
        self._rng = np.random.default_rng(seed ^ 0xC5)
        # Decrement rate: a counter set to c must decay to 0 within one
        # window of n-cell random decrements => c*n/T decrements per
        # time unit, applied with a fractional accumulator.
        self._decs_per_unit = self.max_count * n / window.length
        self._dec_budget = 0.0

    @classmethod
    def from_memory(cls, memory, window: WindowSpec,
                    max_count: int = DEFAULT_MAX_COUNT,
                    counter_bits: int = DEFAULT_COUNTER_BITS,
                    seed: int = 0) -> "CounterVectorSketch":
        """Build a CVS fitting a budget of small counter cells."""
        bits = parse_memory(memory)
        n = cells_for_memory(bits, counter_bits)
        return cls(n=n, window=window, max_count=max_count,
                   counter_bits=counter_bits, seed=seed)

    @property
    def n(self) -> int:
        """Number of counters."""
        return len(self.counters)

    def _decay(self, elapsed: float) -> None:
        if elapsed <= 0:
            return
        self._dec_budget += elapsed * self._decs_per_unit
        count = int(self._dec_budget)
        if count <= 0:
            return
        self._dec_budget -= count
        victims = self._rng.integers(0, self.n, size=count)
        # Aggregate duplicate victims, then apply one clamped
        # subtraction per cell — exact even when a cell is drawn twice.
        unique, hits = np.unique(victims, return_counts=True)
        vals = self.counters[unique].astype(np.int64)
        self.counters[unique] = np.maximum(vals - hits, 0).astype(self.counters.dtype)

    def insert(self, item, t=None) -> None:
        """Set the item's counter to the maximum, then decay randomly."""
        prev = self._now
        now = self._insert_time(t)
        self._decay(now - prev)
        self.counters[self.deriver.indexes(item)[0]] = self.max_count

    def insert_many(self, keys, times=None) -> None:
        """Insert an array of integer keys (bulk-hashed)."""
        keys = np.asarray(keys)
        cells = self.deriver.bulk_single(keys)
        if self.window.is_count_based:
            time_iter = (None for _ in range(len(keys)))
        else:
            time_iter = iter(np.asarray(times, dtype=float))
        for cell in cells:
            prev = self._now
            now = self._insert_time(next(time_iter))
            self._decay(now - prev)
            self.counters[cell] = self.max_count

    def estimate(self, t=None, strict: bool = False) -> CardinalityEstimate:
        """Linear-counting estimate over non-zero counters."""
        prev = self._now
        now = self._query_time(t)
        self._decay(now - prev)
        zero = int(np.count_nonzero(self.counters == 0))
        return linear_counting_estimate(zero, self.n, strict)

    def memory_bits(self) -> int:
        """Accounted footprint: ``n`` cells of ``counter_bits`` bits."""
        return self.n * self.counter_bits

    def __repr__(self) -> str:
        return (
            f"CounterVectorSketch(n={self.n}, c={self.max_count}, "
            f"window={self.window})"
        )
