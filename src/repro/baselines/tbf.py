"""Timing Bloom Filter (Zhang & Guan, ICDCS 2008) — paper §2.1.1.

Instead of full timestamps, TBF stores arrival times in small
wraparound counters (the paper's comparison uses 18-bit counters and 8
hash functions) and relies on a background scan to invalidate expired
cells before their wrapped value could be mistaken for a fresh one.
Each insertion advances the scan over a slice of the array so the whole
array is scanned once per window.

The structure is faithful: cells really hold ``time mod 2^c`` with an
explicit empty sentinel, and correctness requires ``T`` to fit in half
the counter range, which the constructor checks.
"""

from __future__ import annotations

import numpy as np

from ..core.base import ClockSketchBase
from ..core.params import cells_for_memory
from ..errors import ConfigurationError
from ..hashing import IndexDeriver
from ..timebase import WindowSpec
from ..units import parse_memory

__all__ = ["TimingBloomFilter"]

#: Recommended parameters from the paper's §6.2 ("18 bits for each
#: counter and 8 hash functions").
DEFAULT_COUNTER_BITS = 18
DEFAULT_K = 8


class TimingBloomFilter(ClockSketchBase):
    """TBF: wraparound time counters plus a cleaning scan.

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> f = TimingBloomFilter(n=1024, k=4, window=count_window(64))
    >>> f.insert("x")
    >>> f.contains("x")
    True
    """

    def __init__(self, n: int, k: int, window: WindowSpec,
                 counter_bits: int = DEFAULT_COUNTER_BITS, seed: int = 0):
        super().__init__(window)
        if window.length * 2 > (1 << counter_bits):
            raise ConfigurationError(
                f"window {window.length} does not fit in half the range of "
                f"{counter_bits}-bit wraparound counters"
            )
        self.k = int(k)
        self.counter_bits = int(counter_bits)
        self._modulus = 1 << counter_bits
        # The sentinel marks empty cells; it is outside the counter
        # range, so it is stored in a wider dtype than the counter's
        # accounted width.
        self._empty = np.int64(-1)
        self.cells = np.full(n, self._empty, dtype=np.int64)
        # Wide shadow of the true write time, used only by the cleaning
        # scan to decide expiry without wraparound ambiguity (the real
        # structure infers this from scan phase; behaviour is identical
        # because the scan visits every cell once per window).
        self._true_time = np.full(n, -np.inf, dtype=np.float64)
        self.deriver = IndexDeriver(n=n, k=k, seed=seed)
        self.seed = seed
        self._scan_pos = 0
        self._scan_budget = 0.0

    @classmethod
    def from_memory(cls, memory, window: WindowSpec, k: int = DEFAULT_K,
                    counter_bits: int = DEFAULT_COUNTER_BITS,
                    seed: int = 0) -> "TimingBloomFilter":
        """Build a TBF fitting a budget of ``counter_bits``-bit cells."""
        bits = parse_memory(memory)
        n = cells_for_memory(bits, counter_bits)
        return cls(n=n, k=k, window=window, counter_bits=counter_bits, seed=seed)

    @property
    def n(self) -> int:
        """Number of counter cells."""
        return len(self.cells)

    def _scan(self, now: float, elapsed: float) -> None:
        """Advance the cleaning scan proportionally to elapsed time.

        The scan covers the whole array once per window, invalidating
        cells whose (true) age exceeds the window.
        """
        if elapsed <= 0:
            return
        self._scan_budget += elapsed * self.n / self.window.length
        steps = int(self._scan_budget)
        if steps <= 0:
            return
        self._scan_budget -= steps
        steps = min(steps, self.n)
        idx = (self._scan_pos + np.arange(steps)) % self.n
        expired = now - self._true_time[idx] >= self.window.length
        self.cells[idx[expired]] = self._empty
        self._scan_pos = (self._scan_pos + steps) % self.n

    def insert(self, item, t=None) -> None:
        """Stamp the item's cells with the wrapped current time."""
        prev = self._now
        now = self._insert_time(t)
        self._scan(now, now - prev)
        idx = self.deriver.indexes(item)
        self.cells[idx] = int(now) % self._modulus
        self._true_time[idx] = now

    def insert_many(self, keys, times=None) -> None:
        """Insert an array of integer keys (bulk-hashed, loop-inserted)."""
        keys = np.asarray(keys)
        matrix = self.deriver.bulk(keys)
        if self.window.is_count_based:
            time_iter = (None for _ in range(len(keys)))
        else:
            time_iter = iter(np.asarray(times, dtype=float))
        for row in matrix:
            prev = self._now
            now = self._insert_time(next(time_iter))
            self._scan(now, now - prev)
            self.cells[row] = int(now) % self._modulus
            self._true_time[row] = now

    def _active_cells(self, idx, now: float) -> np.ndarray:
        """Activeness of cells by wrapped-time comparison."""
        values = self.cells[idx]
        age = (int(now) - values) % self._modulus
        return (values != self._empty) & (age < self.window.length)

    def contains(self, item, t=None) -> bool:
        """Is the item's batch active? All k cells must be in-window."""
        prev = self._now
        now = self._query_time(t)
        self._scan(now, now - prev)
        return bool(np.all(self._active_cells(self.deriver.indexes(item), now)))

    def contains_many(self, keys, t=None) -> np.ndarray:
        """Vectorised :meth:`contains` over an integer key array."""
        prev = self._now
        now = self._query_time(t)
        self._scan(now, now - prev)
        matrix = self.deriver.bulk(np.asarray(keys))
        return np.all(self._active_cells(matrix, now), axis=1)

    def memory_bits(self) -> int:
        """Accounted footprint: ``n`` cells of ``counter_bits`` bits."""
        return self.n * self.counter_bits

    def __repr__(self) -> str:
        return (
            f"TimingBloomFilter(n={self.n}, k={self.k}, "
            f"c={self.counter_bits}, window={self.window})"
        )
