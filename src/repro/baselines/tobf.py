"""Time-Out Bloom Filter (Kong et al., ICOIN 2006) — paper §2.1.1.

An array of full 64-bit timestamps. Insertion writes the current time
into the ``k`` hashed cells; a query reports the batch active only if
*all* ``k`` cells hold a timestamp inside the window. The 64-bit cells
make TOBF memory-hungry: at equal budgets it affords 64x fewer cells
than a plain Bloom filter, which is why BF+clock dominates it.
"""

from __future__ import annotations

import numpy as np

from ..core.base import ClockSketchBase
from ..core.params import cells_for_memory
from ..hashing import IndexDeriver
from ..timebase import WindowSpec
from ..units import parse_memory

__all__ = ["TimeOutBloomFilter"]

#: The paper's §6.2 configuration uses full 64-bit timestamps.
TIMESTAMP_BITS = 64


class TimeOutBloomFilter(ClockSketchBase):
    """TOBF: a Bloom filter of raw timestamps.

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> f = TimeOutBloomFilter(n=256, k=4, window=count_window(16))
    >>> f.insert("x")
    >>> f.contains("x")
    True
    """

    def __init__(self, n: int, k: int, window: WindowSpec, seed: int = 0):
        super().__init__(window)
        self.k = int(k)
        # -inf marks "never written"; any real stream time is newer.
        self.cells = np.full(n, -np.inf, dtype=np.float64)
        self.deriver = IndexDeriver(n=n, k=k, seed=seed)
        self.seed = seed

    @classmethod
    def from_memory(cls, memory, window: WindowSpec, k: int = 4,
                    seed: int = 0) -> "TimeOutBloomFilter":
        """Build a TOBF fitting a budget of 64-bit timestamp cells."""
        bits = parse_memory(memory)
        n = cells_for_memory(bits, TIMESTAMP_BITS)
        return cls(n=n, k=k, window=window, seed=seed)

    @property
    def n(self) -> int:
        """Number of timestamp cells."""
        return len(self.cells)

    def insert(self, item, t=None) -> None:
        """Stamp the item's cells with the current time."""
        now = self._insert_time(t)
        self.cells[self.deriver.indexes(item)] = now

    def insert_many(self, keys, times=None) -> None:
        """Insert an array of integer keys (bulk-hashed).

        Order within the array is respected, so later occurrences of a
        cell win — matching per-item insertion exactly.
        """
        keys = np.asarray(keys)
        matrix = self.deriver.bulk(keys)
        if self.window.is_count_based:
            start = self._items_inserted
            stamp = np.arange(start + 1, start + len(keys) + 1, dtype=np.float64)
            self._items_inserted += len(keys)
            self._now = float(self._items_inserted)
        else:
            stamp = np.asarray(times, dtype=np.float64)
            self._items_inserted += len(keys)
            self._now = float(stamp[-1]) if len(stamp) else self._now
        flat = matrix.ravel()
        np.maximum.at(self.cells, flat, np.repeat(stamp, self.k))

    def contains(self, item, t=None) -> bool:
        """Is the item's batch active? All k cells must be in-window."""
        now = self._query_time(t)
        stamps = self.cells[self.deriver.indexes(item)]
        return bool(np.all(now - stamps < self.window.length))

    def contains_many(self, keys, t=None) -> np.ndarray:
        """Vectorised :meth:`contains` over an integer key array."""
        now = self._query_time(t)
        matrix = self.deriver.bulk(np.asarray(keys))
        return np.all(now - self.cells[matrix] < self.window.length, axis=1)

    def memory_bits(self) -> int:
        """Accounted footprint: ``n`` cells of 64 bits."""
        return self.n * TIMESTAMP_BITS

    def __repr__(self) -> str:
        return f"TimeOutBloomFilter(n={self.n}, k={self.k}, window={self.window})"
