"""Timestamp-Vector (Kim & O'Hallaron, GLOBECOM 2003) — paper §2.1.2.

An array of ``n`` 64-bit timestamps with a single hash function.
Insertion stamps one cell with the current time; the number of *stale*
cells ``z`` (never written, or written more than ``T`` ago) plays the
role of the zero count in linear counting, giving the estimate
``n * ln(n / z)`` for the number of distinct items in the window.
"""

from __future__ import annotations

import numpy as np

from ..core.base import ClockSketchBase
from ..core.cardinality import CardinalityEstimate, linear_counting_estimate
from ..core.params import cells_for_memory
from ..hashing import IndexDeriver
from ..timebase import WindowSpec
from ..units import parse_memory

__all__ = ["TimestampVector"]

#: §6.3: "we use 64-bit timestamp for TSV".
TIMESTAMP_BITS = 64


class TimestampVector(ClockSketchBase):
    """TSV: linear counting over a timestamp array.

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> tsv = TimestampVector(n=4096, window=count_window(512))
    >>> for key in range(100):
    ...     tsv.insert(key)
    >>> 80 < tsv.estimate().value < 125
    True
    """

    def __init__(self, n: int, window: WindowSpec, seed: int = 0):
        super().__init__(window)
        self.cells = np.full(n, -np.inf, dtype=np.float64)
        self.deriver = IndexDeriver(n=n, k=1, seed=seed)
        self.seed = seed

    @classmethod
    def from_memory(cls, memory, window: WindowSpec,
                    seed: int = 0) -> "TimestampVector":
        """Build a TSV fitting a budget of 64-bit timestamp cells."""
        bits = parse_memory(memory)
        n = cells_for_memory(bits, TIMESTAMP_BITS)
        return cls(n=n, window=window, seed=seed)

    @property
    def n(self) -> int:
        """Number of timestamp cells."""
        return len(self.cells)

    def insert(self, item, t=None) -> None:
        """Stamp the item's cell with the current time."""
        now = self._insert_time(t)
        self.cells[self.deriver.indexes(item)[0]] = now

    def insert_many(self, keys, times=None) -> None:
        """Insert an array of integer keys (bulk-hashed)."""
        keys = np.asarray(keys)
        cells = self.deriver.bulk_single(keys)
        if self.window.is_count_based:
            start = self._items_inserted
            stamp = np.arange(start + 1, start + len(keys) + 1, dtype=np.float64)
            self._items_inserted += len(keys)
            self._now = float(self._items_inserted)
        else:
            stamp = np.asarray(times, dtype=np.float64)
            self._items_inserted += len(keys)
            self._now = float(stamp[-1]) if len(stamp) else self._now
        np.maximum.at(self.cells, cells, stamp)

    def estimate(self, t=None, strict: bool = False) -> CardinalityEstimate:
        """Linear-counting estimate of active distinct items at ``t``."""
        now = self._query_time(t)
        stale = int(np.count_nonzero(now - self.cells >= self.window.length))
        return linear_counting_estimate(stale, self.n, strict)

    def memory_bits(self) -> int:
        """Accounted footprint: ``n`` cells of 64 bits."""
        return self.n * TIMESTAMP_BITS

    def __repr__(self) -> str:
        return f"TimestampVector(n={self.n}, window={self.window})"
