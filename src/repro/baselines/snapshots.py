"""Vectorised whole-stream evaluation of the baselines.

The accuracy experiments replay streams of 10^5-10^6 items into each
algorithm and read one answer at the end. Driving the incremental
structures item-by-item in Python is needlessly slow for algorithms
whose final state has a closed form; this module computes those final
states directly with numpy:

- timestamp filters (TOBF, TBF): a cell's content is the last time it
  was written — ``np.maximum.at`` over the index matrix;
- TSV: same, with linear counting over stale cells;
- SWAMP: a fingerprint is in the queue iff it occurred among the last
  ``w`` items;
- the Ideal filter: a plain Bloom filter over exactly the active keys;
- CVS: each cell holds ``max(c - D, 0)`` where ``D`` is the number of
  random decrements since the cell's last set; the decrements hitting a
  given cell are Binomial(total, 1/n), sampled per cell (statistically
  identical to replay because decrement targets are i.i.d. uniform).

Property/statistical tests in ``tests/`` pin each snapshot to its
incremental twin.
"""

from __future__ import annotations

import numpy as np

from ..core.cardinality import CardinalityEstimate, linear_counting_estimate
from ..hashing import Fingerprinter, IndexDeriver
from ..timebase import WindowSpec
from .swamp import distinct_mle

__all__ = [
    "snapshot_timestamp_membership",
    "snapshot_tsv_estimate",
    "snapshot_swamp_ismember",
    "snapshot_swamp_distinct",
    "snapshot_ideal_membership",
    "snapshot_cvs_estimate",
]


def _resolve_times(keys, times) -> np.ndarray:
    if times is None:
        return np.arange(1, len(keys) + 1, dtype=np.float64)
    return np.asarray(times, dtype=np.float64)


def _last_write_per_cell(index_matrix: np.ndarray, stamps: np.ndarray,
                         n: int, k: int) -> np.ndarray:
    last = np.full(n, -np.inf, dtype=np.float64)
    np.maximum.at(last, index_matrix.ravel(), np.repeat(stamps, k))
    return last


def snapshot_timestamp_membership(
    keys: np.ndarray,
    times: "np.ndarray | None",
    query_keys: np.ndarray,
    t_query: float,
    n: int,
    k: int,
    window: WindowSpec,
    seed: int = 0,
) -> np.ndarray:
    """Final-state membership of a timestamp filter (TOBF or TBF).

    Active iff all ``k`` hashed cells were written within the window
    before ``t_query`` — exactly the answer the incremental structures
    give (TBF's cleaning scan only removes cells this predicate already
    rejects).
    """
    keys = np.asarray(keys)
    deriver = IndexDeriver(n=n, k=k, seed=seed)
    stamps = _resolve_times(keys, times)
    last = _last_write_per_cell(deriver.bulk(keys), stamps, n, k)
    query_matrix = deriver.bulk(np.asarray(query_keys))
    return np.all(t_query - last[query_matrix] < window.length, axis=1)


def snapshot_tsv_estimate(
    keys: np.ndarray,
    times: "np.ndarray | None",
    t_query: float,
    n: int,
    window: WindowSpec,
    seed: int = 0,
) -> CardinalityEstimate:
    """Final-state TSV cardinality estimate."""
    keys = np.asarray(keys)
    deriver = IndexDeriver(n=n, k=1, seed=seed)
    stamps = _resolve_times(keys, times)
    last = np.full(n, -np.inf, dtype=np.float64)
    np.maximum.at(last, deriver.bulk_single(keys), stamps)
    stale = int(np.count_nonzero(t_query - last >= window.length))
    return linear_counting_estimate(stale, n)


def _window_fingerprints(keys: np.ndarray, window_items: int,
                         fingerprint_bits: int, seed: int) -> np.ndarray:
    fp = Fingerprinter(fingerprint_bits, seed=seed)
    tail = np.asarray(keys)[-window_items:]
    return fp.bulk(tail)


def snapshot_swamp_ismember(
    keys: np.ndarray,
    query_keys: np.ndarray,
    window_items: int,
    fingerprint_bits: int,
    seed: int = 0,
) -> np.ndarray:
    """Final-state SWAMP ISMEMBER over the last ``w`` items."""
    in_window = np.unique(
        _window_fingerprints(keys, window_items, fingerprint_bits, seed)
    )
    fp = Fingerprinter(fingerprint_bits, seed=seed)
    query_fps = fp.bulk(np.asarray(query_keys))
    return np.isin(query_fps, in_window)


def snapshot_swamp_distinct(
    keys: np.ndarray,
    window_items: int,
    fingerprint_bits: int,
    seed: int = 0,
) -> float:
    """Final-state SWAMP DISTINCTMLE over the last ``w`` items."""
    distinct = int(np.unique(
        _window_fingerprints(keys, window_items, fingerprint_bits, seed)
    ).size)
    return distinct_mle(distinct, fingerprint_bits)


def snapshot_ideal_membership(
    active_keys: np.ndarray,
    query_keys: np.ndarray,
    n: int,
    k: int,
    seed: int = 0,
) -> np.ndarray:
    """Membership in a plain Bloom filter over exactly the active keys."""
    deriver = IndexDeriver(n=n, k=k, seed=seed)
    bits = np.zeros(n, dtype=bool)
    active_keys = np.asarray(active_keys)
    if active_keys.size:
        bits[deriver.bulk(active_keys).ravel()] = True
    query_matrix = deriver.bulk(np.asarray(query_keys))
    return np.all(bits[query_matrix], axis=1)


def snapshot_cvs_estimate(
    keys: np.ndarray,
    times: "np.ndarray | None",
    t_query: float,
    n: int,
    window: WindowSpec,
    max_count: int = 10,
    seed: int = 0,
) -> CardinalityEstimate:
    """Final-state CVS estimate with per-cell binomial decrement sampling."""
    keys = np.asarray(keys)
    deriver = IndexDeriver(n=n, k=1, seed=seed)
    stamps = _resolve_times(keys, times)
    last = np.full(n, -np.inf, dtype=np.float64)
    np.maximum.at(last, deriver.bulk_single(keys), stamps)

    rng = np.random.default_rng(seed ^ 0xC5)
    decs_per_unit = max_count * n / window.length
    touched = np.isfinite(last)
    elapsed = np.clip(t_query - last[touched], 0.0, None)
    totals = np.floor(elapsed * decs_per_unit).astype(np.int64)
    decrements = rng.binomial(totals, 1.0 / n)
    values = np.maximum(max_count - decrements, 0)
    nonzero = int(np.count_nonzero(values))
    return linear_counting_estimate(n - nonzero, n)
