"""Count-based vs time-based window abstraction.

The paper defines the batch threshold ``T`` either count-based (``T``
items) or time-based (``T`` time units) and notes the two coincide for
constant-rate streams. :class:`WindowSpec` carries the window length
and its kind; every sketch, baseline, and ground-truth tracker in the
library takes one, so all experiments run in both modes.
"""

from .window import WindowKind, WindowSpec, count_window, time_window

__all__ = ["WindowKind", "WindowSpec", "count_window", "time_window"]
