"""The :class:`WindowSpec` value object.

A window is defined by its length ``T`` and a *kind*:

- ``COUNT``: "now" is the number of items processed so far; an item is
  active if it re-appeared within the last ``T`` insertions.
- ``TIME``: "now" is a stream timestamp; an item is active if it
  re-appeared within the last ``T`` time units.

The library treats both uniformly: structures track a monotone ``now``
value and windows only enter the maths as the length ``T``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError


class WindowKind(enum.Enum):
    """Whether window positions are item counts or timestamps."""

    COUNT = "count"
    TIME = "time"


@dataclass(frozen=True)
class WindowSpec:
    """A sliding window of length ``T`` over a data stream.

    Attributes
    ----------
    length:
        The window length ``T``. For count-based windows this is a
        number of items; for time-based windows, a duration in stream
        time units.
    kind:
        :class:`WindowKind`, defaults to count-based (the paper's
        primary evaluation mode).
    """

    length: float
    kind: WindowKind = WindowKind.COUNT

    def __post_init__(self):
        if self.length <= 0:
            raise ConfigurationError(f"window length must be positive, got {self.length}")
        if self.kind is WindowKind.COUNT and self.length != int(self.length):
            raise ConfigurationError(
                f"count-based window length must be an integer, got {self.length}"
            )

    @property
    def is_count_based(self) -> bool:
        """True when the window counts items rather than time units."""
        return self.kind is WindowKind.COUNT

    def contains(self, event_time: float, now: float) -> bool:
        """Is an event at ``event_time`` inside the window ending at ``now``?

        The library convention is half-open: the window covers
        ``(now - T, now]``, so an event exactly ``T`` units old has just
        expired. This matches the clock guarantee, where a cell written
        at ``t`` survives every sweep strictly before ``t + T``.
        """
        return now - event_time < self.length

    def __str__(self) -> str:
        unit = "items" if self.is_count_based else "time units"
        return f"T={self.length:g} {unit}"


def count_window(length: int) -> WindowSpec:
    """Shorthand for a count-based window of ``length`` items."""
    return WindowSpec(length=length, kind=WindowKind.COUNT)


def time_window(length: float) -> WindowSpec:
    """Shorthand for a time-based window of ``length`` time units."""
    return WindowSpec(length=length, kind=WindowKind.TIME)
