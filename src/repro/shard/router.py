"""The sharded-sketch facade: key-partitioned parallel ingestion.

:class:`ShardedSketch` splits one logical sketch into ``P`` independent
replicas — same configuration, same hash seeds — and routes every item
to exactly one replica by a *dedicated* shard hash (seeded independently
of the index hashes, so routing never correlates with cell placement;
see :mod:`repro.hashing.sharding`). Queries are answered from a merged
global view built by element-wise clock union (paper §7's mergeability):

- **activeness / cardinality** (clock cells only): with every replica's
  cleaning pointer synchronised to the query time, the element-wise max
  of the per-shard clock values is *exactly* the cell image the plain
  unsharded sketch would hold — so a sharded Bloom filter or bitmap is
  bit-identical to its plain twin at any shard count.
- **size**: per-key counters add across shards but each key lives in
  one shard, so summed counters over-count only through per-shard
  collisions — the merged estimate stays within the plain sketch's
  one-sided error band (truth ≤ sharded ≤ plain-worst-case).
- **time span**: first-writer-wins — timestamps merge by *min* over
  live shards, the only direction that preserves the never-underestimate
  span contract (an element-wise max could shrink a span when two
  shards' keys collide in one cell; see ``docs/sharding.md``).

Two routers execute the fan-out: :class:`SerialShardRouter` applies
sub-batches inline (zero concurrency, useful as the differential-test
oracle), and :class:`~repro.shard.workers.ProcessShardRouter` drains
them through one worker process per shard over shared memory.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

import numpy as np

from ..core.base import ClockSketchBase
from ..core import ClockBitmap, ClockBloomFilter, ClockCountMin, ClockTimeSpanSketch
from ..errors import ConfigurationError
from ..hashing import ShardSelector
from ..obs import names as _names
from ..obs import runtime as _obs
from ..obs import trace as _trace
from ..serialize import dumps_sketch, loads_sketch
from .workers import DEFAULT_QUEUE_CAPACITY, DEFAULT_TIMEOUT, ProcessShardRouter

__all__ = ["SerialShardRouter", "ShardedSketch"]

_SHARDABLE = (ClockBloomFilter, ClockBitmap, ClockCountMin, ClockTimeSpanSketch)

#: Immutable replica configuration the facade forwards verbatim.
#: Mutable state (clock, counters, timestamps, engine) is deliberately
#: absent: with a process router it lives in shared memory that workers
#: may still be writing.
_FORWARDED_CONFIG = frozenset({
    "window", "n", "k", "s", "seed", "width", "depth", "conservative",
    "counter_bits", "counter_max", "max_value",
})


class SerialShardRouter:
    """In-process router: applies each shard's sub-batch inline.

    The zero-concurrency reference implementation of the router
    protocol (``ingest`` / ``barrier`` / ``queue_depth`` / ``close``):
    sub-batches execute immediately on the caller's thread, so a
    serial-routed :class:`ShardedSketch` is deterministic and serves as
    the oracle the process-backed router is differentially tested
    against.
    """

    kind = "serial"

    def __init__(self, replicas: "list[Any]") -> None:
        self.replicas = list(replicas)
        for replica in self.replicas:
            replica._accepts_global_times = True

    def ingest(self, shard: int, items: Any, times: np.ndarray,
               ctx: Any = None) -> None:
        # ``ctx`` (a propagated span context) is part of the router
        # protocol but unused here: inline execution means the replica's
        # engine spans already parent naturally under the caller's span.
        self.replicas[shard].insert_many(items, times)

    def barrier(self, now: float, ctx: Any = None) -> None:
        """Synchronise every replica's cleaner to the query time.

        With more than one shard the deferred sweep backlogs are also
        flushed — merge validity requires all cleaning pointers at the
        same position. A single shard skips the flush so that ``P=1``
        stays bit-identical to a plain sketch even in deferred modes.
        """
        flush = len(self.replicas) > 1
        for replica in self.replicas:
            clock = replica.clock
            if now > clock.now:
                clock.advance(now)
            if flush and clock.is_deferred:
                clock.flush()
            if now > replica._now:
                replica._now = float(now)

    def queue_depth(self, shard: int) -> int:
        return 0

    def close(self) -> None:
        pass


class ShardedSketch(ClockSketchBase):
    """Key-partitioned facade over ``P`` replicas of one clock sketch.

    Parameters
    ----------
    prototype:
        A *pristine* sketch instance (no inserts, cleaner at step 0) —
        or a zero-argument factory returning one — defining the
        per-shard configuration. Each shard gets an exact clone.
    shards:
        Number of partitions ``P`` (>= 1).
    router:
        ``"serial"`` (inline, deterministic) or ``"process"`` (one
        worker process per shard over shared memory).
    mp_context, queue_capacity, timeout, time_source:
        Forwarded to :class:`~repro.shard.workers.ProcessShardRouter`
        (ignored by the serial router).

    The facade exposes the full sketch API — ``insert`` /
    ``insert_many`` route by shard hash; ``query`` / ``query_many`` /
    ``contains`` / ``contains_many`` / ``estimate`` are answered from a
    cached merged view (rebuilt after the next insert or at a new query
    time). Use as a context manager to release worker processes.
    """

    def __init__(self, prototype: Any, shards: int = 2, *,
                 router: str = "serial", mp_context: Any = None,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 timeout: float = DEFAULT_TIMEOUT, time_source: Any = None,
                 _replicas: "list[Any] | None" = None) -> None:
        if _replicas is not None:
            replicas = list(_replicas)
            if len(replicas) != shards:
                raise ConfigurationError(
                    f"expected {shards} replicas, got {len(replicas)}"
                )
            prototype = replicas[0]
        else:
            if callable(prototype) and not isinstance(prototype, _SHARDABLE):
                prototype = prototype()
        if not isinstance(prototype, _SHARDABLE):
            raise ConfigurationError(
                "prototype must be one of the four clock sketches, got "
                f"{type(prototype).__name__}"
            )
        shards = int(shards)
        if shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {shards}")
        if _replicas is None:
            if prototype.items_inserted or prototype.clock.steps_done \
                    or prototype.now:
                raise ConfigurationError(
                    "prototype must be pristine (no inserts, cleaner at "
                    "step 0); pass a factory or a freshly built sketch"
                )
            payload = dumps_sketch(prototype)
            replicas = [loads_sketch(payload) for _ in range(shards)]
        super().__init__(prototype.window)
        self.shards = shards
        self.seed = prototype.seed
        self.selector = ShardSelector(shards, seed=self.seed)
        #: The facade-side kernel backend driving the scatter fan-out —
        #: the prototype's resolved backend, so one spec configures both
        #: the replicas' sweeps and the router's batch splitting.
        self.kernels = prototype.clock.kernels
        if router == "serial":
            self.router = SerialShardRouter(replicas)
        elif router == "process":
            self.router = ProcessShardRouter(
                replicas, mp_context=mp_context,
                queue_capacity=queue_capacity, timeout=timeout,
                time_source=time_source,
            )
        else:
            raise ConfigurationError(
                f"unknown router {router!r}; use 'serial' or 'process'"
            )
        self._dirty = False
        self._cache: Any = None

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def insert(self, item: Any, t: "float | None" = None) -> None:
        """Insert one item, routed to its shard at the resolved time."""
        now = self._insert_time(t)
        shard = self.selector.shard_of(item)
        self.router.ingest(shard, [item], np.asarray([now], dtype=np.float64))
        if _obs.ENABLED:
            _obs.record_shard_route(shard, 1, self.router.queue_depth(shard))
        self._dirty = True

    def insert_many(self, items: Any, times: Any = None) -> None:
        """Insert a batch: resolve times once, scatter by shard hash.

        Each shard's sub-batch preserves stream order and carries the
        items' *global* arrival times, so every replica cleans on the
        plain sketch's exact schedule.
        """
        if not hasattr(items, "__len__"):
            items = list(items)
        count = len(items)
        times_arr = self._insert_times_many(count, times)
        if not count:
            return
        with _trace.span(_names.SPAN_SHARD_SCATTER) as sp:
            if sp.recording:
                sp.set("items", count)
                sp.set("shards", self.shards)
            shard_ids = self.selector.shards_of(items)
            for shard, sub_items, sub_times in self.kernels.scatter_by_shard(
                    items, times_arr, shard_ids):
                self.router.ingest(shard, sub_items, sub_times, ctx=sp.ctx)
                if _obs.ENABLED:
                    _obs.record_shard_route(shard, int(sub_times.shape[0]),
                                            self.router.queue_depth(shard))
        self._items_inserted += count
        self._now = float(times_arr[-1])
        self._dirty = True
        if _obs.ENABLED:
            _obs.record_insert(type(self).__name__, count)

    # ------------------------------------------------------------------
    # Merged global view
    # ------------------------------------------------------------------

    def merged(self, t: "float | None" = None) -> Any:
        """The global sketch at time ``t``: barrier, snapshot, union.

        Synchronises every shard to the query time (for the process
        router this is the flush-and-ack barrier), snapshots shard 0
        and merges the rest in. The view is cached until the next
        insert or a later query time; it is a plain sketch — every
        query method on it works as usual.
        """
        now = self._query_time(t)
        cache = self._cache
        if cache is not None and not self._dirty and cache.now == now:
            return cache
        started = perf_counter()
        with _trace.span(_names.SPAN_SHARD_MERGE) as sp:
            if sp.recording:
                sp.set("shards", self.shards)
            self.router.barrier(now, ctx=sp.ctx)
            replicas = self.router.replicas
            view = replicas[0].snapshot()
            for other in replicas[1:]:
                view.merge(other)
            if sp.recording:
                sp.set("kind", type(view).__name__)
        view._now = float(now)
        view._items_inserted = self._items_inserted
        if _obs.ENABLED:
            _obs.record_shard_merge(type(view).__name__, self.shards,
                                    perf_counter() - started)
        self._cache = view
        self._dirty = False
        return view

    def snapshot(self, t: "float | None" = None) -> Any:
        """A detached copy of the merged global sketch at time ``t``."""
        return self.merged(t).snapshot()

    # ------------------------------------------------------------------
    # Queries (delegate to the merged view)
    # ------------------------------------------------------------------

    def query(self, item: Any, t: "float | None" = None) -> Any:
        """Query the merged global view for one item."""
        return self.merged(t).query(item)

    def query_many(self, items: Any, t: "float | None" = None) -> Any:
        """Query the merged global view for a batch of items."""
        return self.merged(t).query_many(items)

    def contains(self, item: Any, t: "float | None" = None) -> bool:
        """Membership query on the merged view (Bloom-filter kinds)."""
        return self.merged(t).contains(item)

    def contains_many(self, items: Any,
                      t: "float | None" = None) -> np.ndarray:
        """Batch membership query on the merged view."""
        return self.merged(t).contains_many(items)

    def estimate(self, t: "float | None" = None,
                 strict: bool = False) -> float:
        """Cardinality estimate from the merged view (bitmap kind)."""
        return self.merged(t).estimate(strict=strict)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    @property
    def replicas(self) -> "list[Any]":
        """The per-shard replica sketches (read-only use)."""
        return self.router.replicas

    @property
    def clock(self) -> Any:
        """The merged view's clock (plain sketches expose ``.clock``)."""
        return self.merged().clock

    def memory_bits(self) -> int:
        """Total accounted footprint across all shards, in bits."""
        return sum(r.memory_bits() for r in self.router.replicas)

    def shard_memory_bits(self) -> int:
        """One shard's footprint — the *accuracy-relevant* size.

        The merged view's error behaviour equals a single shard-sized
        sketch (every shard holds the full cell space), so analytic
        predictions must use this, not :meth:`memory_bits`.
        """
        return self.router.replicas[0].memory_bits()

    def metrics(self) -> "dict[str, Any]":
        """Structural metrics for the facade and each shard."""
        replicas = self.router.replicas
        return {
            "sketch": type(self).__name__,
            "kind": type(replicas[0]).__name__,
            "shards": self.shards,
            "router": self.router.kind,
            "memory_bits": self.memory_bits(),
            "shard_memory_bits": self.shard_memory_bits(),
            "items_inserted": self._items_inserted,
            "queue_depths": [self.router.queue_depth(p)
                             for p in range(self.shards)],
        }

    def __getattr__(self, name: str) -> Any:
        # Configuration attributes (n, k, s, width, ...) delegate to the
        # shard-0 replica so callers can introspect a ShardedSketch like
        # a plain sketch. Only the closed _FORWARDED_CONFIG set is
        # forwarded: with a process router the replica is backed by
        # shared memory that worker processes may still be writing, so
        # mutable state (clock, counters, engine) must go through the
        # barrier-synchronised query path, never raw delegation.
        if name not in _FORWARDED_CONFIG:
            raise AttributeError(name)
        router = self.__dict__.get("router")
        if router is None or not router.replicas:
            raise AttributeError(name)
        return getattr(router.replicas[0], name)

    def close(self) -> None:
        """Release router resources (worker processes, shared memory).

        Idempotent; the facade remains queryable afterwards — the
        process router hands each replica a private copy of its final
        state on shutdown.
        """
        self.router.close()

    def __enter__(self) -> "ShardedSketch":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        kind = type(self.router.replicas[0]).__name__
        return (f"ShardedSketch(kind={kind}, shards={self.shards}, "
                f"router={self.router.kind!r}, "
                f"items={self._items_inserted})")
