"""Multiprocessing worker pool for sharded ingestion.

Each shard's replica lives in a dedicated worker process that owns the
shard's cells: the replica's :class:`~repro.core.clockarray.ClockArray`
buffer (and its side arrays — timestamps, counters) are numpy views
over a ``multiprocessing.shared_memory`` block, so the parent process
can *read* the shard's state for merged queries without copying, while
the worker is the sole *writer*. Workers drain ``insert_many`` chunks
from a bounded command queue (back-pressure raises
:class:`~repro.errors.ShardBackpressureError` instead of buffering
unboundedly) and acknowledge every command on a shared ack queue; a
barrier simply waits until every dispatched command is acknowledged,
then adopts each worker's cleaner position from a small shared control
record. A worker that raises (or dies) surfaces as a
:class:`~repro.errors.ShardWorkerError` carrying the partial-result
picture — never a hang.

Time is injectable (``time_source``) exactly as in
:class:`repro.concurrent.BackgroundCleaner`, so the deadline logic is
deterministically testable.
"""

from __future__ import annotations

import queue as queue_mod
import time
from contextlib import nullcontext
from multiprocessing import get_context
from multiprocessing import shared_memory
from typing import Any, NamedTuple

import numpy as np

from ..errors import ShardBackpressureError, ShardWorkerError
from ..obs import names
from ..obs import runtime as _obs
from ..obs import trace as _trace
from ..serialize import dumps_sketch, loads_sketch

__all__ = ["ProcessShardRouter", "shared_layout"]

#: Bytes reserved at the front of each shard's block for the control
#: record: int64 steps_done, int64 items_inserted, float64 now.
_CONTROL_BYTES = 24

#: Default bound on each worker's command queue (commands, not items).
DEFAULT_QUEUE_CAPACITY = 16

#: Default seconds a dispatch/barrier may wait before declaring
#: back-pressure or a dead worker.
DEFAULT_TIMEOUT = 30.0

#: Real-time seconds per blocking poll step; the *deadline* arithmetic
#: runs on the injectable time source, this only bounds each syscall.
_POLL_INTERVAL = 0.05


class SharedLayout(NamedTuple):
    """Byte layout of one shard's shared-memory block (picklable)."""

    total: int
    #: ``(attribute, dtype string, length, byte offset)`` per array;
    #: the clock buffer uses the pseudo-attribute ``"clock_values"``.
    arrays: "tuple[tuple[str, str, int, int], ...]"


def shared_layout(sketch: Any) -> SharedLayout:
    """Compute the shared block layout for one replica's mutable arrays."""
    arrays: "list[tuple[str, str, int, int]]" = []
    offset = _CONTROL_BYTES

    def add(name: str, arr: np.ndarray) -> None:
        nonlocal offset
        offset = -(-offset // 8) * 8  # 8-byte-align every array
        arrays.append((name, arr.dtype.str, int(arr.shape[0]), offset))
        offset += arr.nbytes

    add("clock_values", sketch.clock.values)
    timestamps = getattr(sketch, "timestamps", None)
    if timestamps is not None:
        add("timestamps", timestamps)
    counters = getattr(sketch, "counters", None)
    if counters is not None:
        add("counters", counters)
    return SharedLayout(total=offset, arrays=tuple(arrays))


def _bind_shared(sketch: Any, buf: Any, layout: SharedLayout) -> None:
    """Point a replica's mutable arrays into a shared-memory block.

    The current contents are copied into the block first (binding is
    state-preserving), the clock buffer through the validating
    :meth:`~repro.core.clockarray.ClockArray.bind_buffer`.
    """
    for attr, dtype, length, offset in layout.arrays:
        view = np.ndarray((length,), dtype=np.dtype(dtype), buffer=buf,
                          offset=offset)
        if attr == "clock_values":
            sketch.clock.bind_buffer(view)
        else:
            view[:] = getattr(sketch, attr)
            setattr(sketch, attr, view)


def _unbind_shared(sketch: Any, layout: SharedLayout) -> None:
    """Detach a replica from shared memory, keeping a private copy."""
    for attr, dtype, length, _offset in layout.arrays:
        if attr == "clock_values":
            private = np.zeros(length, dtype=np.dtype(dtype))
            sketch.clock.bind_buffer(private)
        else:
            setattr(sketch, attr, np.array(getattr(sketch, attr)))


def _close_shm(shm: shared_memory.SharedMemory) -> None:
    """Close a shared block, tolerating exported buffer views.

    A ``BufferError`` here means a numpy view over the block is still
    alive; the mapping is reclaimed when the process exits, so on this
    shutdown path tolerating it is safe (and the only option).
    """
    try:
        shm.close()
    except BufferError:
        pass


def _control_views(buf: Any) -> "tuple[np.ndarray, np.ndarray]":
    ints = np.ndarray((2,), dtype=np.int64, buffer=buf, offset=0)
    now = np.ndarray((1,), dtype=np.float64, buffer=buf, offset=16)
    return ints, now


def _write_control(buf: Any, sketch: Any) -> None:
    ints, now = _control_views(buf)
    ints[0] = sketch.clock.steps_done
    ints[1] = sketch.items_inserted
    now[0] = sketch.clock.now


def _read_control(buf: Any) -> "tuple[int, int, float]":
    ints, now = _control_views(buf)
    return int(ints[0]), int(ints[1]), float(now[0])


def _command_ctx(op: str, command: "tuple[Any, ...]") -> Any:
    """The propagated span context riding on a command, if any.

    Only ingest/advance carry one (as their last element); older-style
    short tuples and the test-only fault hooks yield None.
    """
    if op == "ingest" and len(command) > 4:
        return command[4]
    if op == "advance" and len(command) > 4:
        return command[4]
    return None


def _shard_worker(shard: int, payload: bytes, shm_name: str,
                  layout: SharedLayout, commands: Any, acks: Any) -> None:
    """One shard's worker loop: rebuild the replica, drain commands.

    Command protocol (tuples): ``("ingest", seq, items, times, ctx)``,
    ``("advance", seq, now, flush, ctx)``, ``("stop", seq)``, plus the
    test-only fault hooks ``("stall", seq, seconds)`` and
    ``("crash", seq)``. Every command is acknowledged as
    ``(shard, seq, status, detail, spans)``; an exception acknowledges
    with ``status="error"`` and ends the worker.

    ``ctx`` is an optional propagated span context ``(trace_id,
    span_id)`` from the parent's scatter/merge span. When present, the
    command's handling runs under :func:`repro.obs.trace.capture`, so
    the worker's ingest/advance spans — recorded regardless of this
    process's switchboard — ride back in the ack's ``spans`` payload
    and get stitched into the parent's trace.
    """
    # Attaching re-registers the segment with the (shared, inherited)
    # resource tracker; that is a set-add no-op, and the parent — the
    # sole owner — unregisters it once at unlink(). No child-side
    # unregister, or the tracker sees a double-remove.
    shm = shared_memory.SharedMemory(name=shm_name)
    sketch = loads_sketch(payload)
    sketch._accepts_global_times = True
    # Resolve the kernel backend *in this process*: under spawn the
    # worker re-reads REPRO_KERNEL (and re-checks numba availability)
    # rather than inheriting whatever the parent pickled; every backend
    # writes cells through views, so shared-memory binding works under
    # numpy and numba alike.
    from ..kernels import resolve_backend

    sketch.clock.kernels = resolve_backend()
    _bind_shared(sketch, shm.buf, layout)
    _write_control(shm.buf, sketch)
    running = True
    while running:
        command = commands.get()
        op, seq = command[0], command[1]
        status, detail = "ok", ""
        spans: "list[dict[str, Any]]" = []
        ctx = _command_ctx(op, command)
        capture = (_trace.capture(ctx, spans) if ctx is not None
                   else nullcontext(spans))
        try:
            with capture:
                if op == "ingest":
                    with _trace.span(names.SPAN_SHARD_INGEST,
                                     shard=str(shard)) as sp:
                        sketch.insert_many(command[2], command[3])
                        if sp.recording:
                            sp.set("items", len(command[2]))
                elif op == "advance":
                    with _trace.span(names.SPAN_SHARD_ADVANCE,
                                     shard=str(shard)):
                        now, flush = float(command[2]), bool(command[3])
                        clock = sketch.clock
                        if now > clock.now:
                            clock.advance(now)
                        if flush and clock.is_deferred:
                            clock.flush()
                        if now > sketch._now:
                            sketch._now = now
                elif op == "stall":
                    time.sleep(float(command[2]))
                elif op == "crash":
                    raise RuntimeError("injected worker crash")
                elif op == "stop":
                    running = False
                else:
                    raise ValueError(f"unknown shard command {op!r}")
        except BaseException as exc:  # surface, acknowledge, stop
            status = "error"
            detail = f"{type(exc).__name__}: {exc}"
            running = False
        _write_control(shm.buf, sketch)
        acks.put((shard, seq, status, detail, spans))
    del sketch  # drop the replica's views over the shared block first
    _close_shm(shm)


class ProcessShardRouter:
    """Routes shard sub-batches to a pool of worker processes.

    Parameters
    ----------
    replicas:
        The parent-side replica sketches (read-only views once bound).
    mp_context:
        A :func:`multiprocessing.get_context` context or name
        (``"fork"``/``"spawn"``); defaults to the platform default.
    queue_capacity:
        Bound on each worker's command queue; a full queue past
        ``timeout`` raises :class:`~repro.errors.ShardBackpressureError`.
    timeout:
        Seconds a dispatch or barrier waits before declaring failure.
    time_source:
        Clock used for deadlines (default ``time.monotonic``);
        injectable for deterministic tests.
    """

    kind = "process"

    def __init__(self, replicas: "list[Any]", *, mp_context: Any = None,
                 queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
                 timeout: float = DEFAULT_TIMEOUT,
                 time_source: Any = None) -> None:
        if isinstance(mp_context, str) or mp_context is None:
            ctx = get_context(mp_context)
        else:
            ctx = mp_context
        self.replicas = list(replicas)
        self.timeout = float(timeout)
        self._time = time_source if time_source is not None else time.monotonic
        self._acks = ctx.Queue()
        self._commands: "list[Any]" = []
        self._shms: "list[shared_memory.SharedMemory]" = []
        self._layouts: "list[SharedLayout]" = []
        self._procs: "list[Any]" = []
        self._pending: "list[list[int]]" = [[] for _ in self.replicas]
        self._failed: "dict[int, str]" = {}
        self._seq = 0
        self._closed = False
        try:
            for shard, replica in enumerate(self.replicas):
                replica._accepts_global_times = True
                payload = dumps_sketch(replica)
                layout = shared_layout(replica)
                shm = shared_memory.SharedMemory(create=True,
                                                 size=layout.total)
                self._shms.append(shm)
                self._layouts.append(layout)
                _bind_shared(replica, shm.buf, layout)
                commands = ctx.Queue(maxsize=int(queue_capacity))
                self._commands.append(commands)
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(shard, payload, shm.name, layout, commands,
                          self._acks),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _raise_failed(self) -> None:
        pending = {i: len(p) for i, p in enumerate(self._pending) if p}
        shards = ", ".join(f"{i} ({reason})"
                           for i, reason in sorted(self._failed.items()))
        raise ShardWorkerError(
            f"shard worker(s) failed: {shards}; "
            f"{sum(pending.values())} command(s) unacknowledged",
            failed=self._failed, pending=pending,
        )

    def _absorb_acks(self, block: bool = False) -> bool:
        """Pull available acks; returns True if any arrived."""
        got = False
        while True:
            try:
                if block and not got:
                    ack = self._acks.get(timeout=_POLL_INTERVAL)
                else:
                    ack = self._acks.get_nowait()
            except queue_mod.Empty:
                return got
            got = True
            shard, seq, status, detail, spans = ack
            if spans and _obs.ENABLED:
                _trace.record_spans(spans)
            try:
                self._pending[shard].remove(seq)
            except ValueError:
                # An ack for a command we never recorded as pending means
                # the seq bookkeeping diverged between parent and worker —
                # mark the shard failed so the next dispatch/barrier
                # surfaces it instead of silently dropping the ack.
                self._failed[shard] = (
                    f"protocol error: unexpected ack for command {seq}")
            if status != "ok":
                self._failed[shard] = detail

    def _dispatch(self, shard: int, command: "tuple[Any, ...]") -> None:
        if self._closed:
            raise ShardWorkerError("shard router is closed")
        if self._failed:
            self._raise_failed()
        self._seq += 1
        seq = self._seq
        full = (command[0], seq) + command[1:]
        deadline = self._time() + self.timeout
        commands = self._commands[shard]
        while True:
            try:
                commands.put(full, timeout=_POLL_INTERVAL)
                break
            except queue_mod.Full:
                self._absorb_acks()
                if self._failed:
                    self._raise_failed()
                if not self._procs[shard].is_alive():
                    self._failed[shard] = "worker process died"
                    self._raise_failed()
                if self._time() >= deadline:
                    raise ShardBackpressureError(
                        f"shard {shard} queue full for {self.timeout}s "
                        f"({len(self._pending[shard])} commands pending); "
                        "the stream is outrunning this worker"
                    )
        self._pending[shard].append(seq)
        self._absorb_acks()

    def ingest(self, shard: int, items: Any, times: np.ndarray,
               ctx: Any = None) -> None:
        """Queue one sub-batch for a shard's worker.

        ``ctx`` is an optional span context to propagate; the worker's
        ingest span comes back on the ack and joins the parent's trace.
        """
        self._dispatch(shard, ("ingest", items,
                               np.asarray(times, dtype=np.float64), ctx))

    def inject(self, shard: int, op: str, *payload: Any) -> None:
        """Send a raw protocol command (test hooks: ``stall``/``crash``)."""
        self._dispatch(shard, (op,) + payload)

    # ------------------------------------------------------------------
    # Barrier and parent-side sync
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Block until every dispatched command is acknowledged."""
        deadline = self._time() + self.timeout
        while any(self._pending):
            if self._absorb_acks(block=True):
                if self._failed:
                    self._raise_failed()
                continue
            if self._failed:
                self._raise_failed()
            for shard, pend in enumerate(self._pending):
                if pend and not self._procs[shard].is_alive():
                    self._failed[shard] = "worker process died"
            if self._failed:
                self._raise_failed()
            if self._time() >= deadline:
                pending = {i: len(p) for i, p in enumerate(self._pending)
                           if p}
                raise ShardWorkerError(
                    f"barrier timed out after {self.timeout}s with "
                    f"{sum(pending.values())} command(s) unacknowledged",
                    pending=pending,
                )
        if self._failed:
            self._raise_failed()

    def barrier(self, now: float, ctx: Any = None) -> None:
        """Advance every shard to ``now``, wait, adopt worker positions."""
        flush = len(self.replicas) > 1
        for shard in range(len(self.replicas)):
            self._dispatch(shard, ("advance", float(now), flush, ctx))
        with _trace.span(names.SPAN_SHARD_ACK):
            self.drain()
        self._sync_replicas()

    def _sync_replicas(self) -> None:
        for replica, shm in zip(self.replicas, self._shms):
            steps, items, now = _read_control(shm.buf)
            clock = replica.clock
            if now > clock.now or steps > clock.steps_done:
                clock.sync_state(max(now, clock.now), steps)
            replica._items_inserted = items
            if now > replica._now:
                replica._now = now

    def queue_depth(self, shard: int) -> int:
        """Commands currently pending in a shard's queue (best effort)."""
        try:
            return int(self._commands[shard].qsize())
        except (NotImplementedError, OSError):
            return len(self._pending[shard])

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------

    def close(self, timeout: float = 5.0) -> None:
        """Stop workers, detach replicas, release shared memory.

        Idempotent; replicas keep a private copy of their final state,
        so a closed sharded sketch remains queryable.
        """
        if self._closed:
            return
        self._closed = True
        for shard, commands in enumerate(self._commands):
            proc = self._procs[shard] if shard < len(self._procs) else None
            if proc is not None and proc.is_alive():
                self._seq += 1
                try:
                    commands.put(("stop", self._seq), timeout=_POLL_INTERVAL)
                except queue_mod.Full:
                    pass
        for proc in self._procs:
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=timeout)
        self._sync_replicas()
        for replica, layout in zip(self.replicas, self._layouts):
            _unbind_shared(replica, layout)
        for commands in self._commands:
            commands.cancel_join_thread()
            commands.close()
        self._acks.cancel_join_thread()
        self._acks.close()
        for shm in self._shms:
            _close_shm(shm)
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._shms = []

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass
