"""Sharded multi-worker ingestion with mergeable clock sketches.

One logical sketch, ``P`` key-partitioned replicas: items route by a
dedicated shard hash, each replica ingests its sub-stream through the
ordinary batch engine (inline, or in its own worker process over shared
memory), and queries are answered from a merged global view built by
element-wise clock union. See ``docs/sharding.md`` for the exactness
guarantees per sketch kind.
"""

from .router import SerialShardRouter, ShardedSketch
from .workers import ProcessShardRouter

__all__ = ["ProcessShardRouter", "SerialShardRouter", "ShardedSketch"]
