"""Clock-Sketch: measuring item batches in data streams.

A production-quality Python reproduction of "Out of Many We are One:
Measuring Item Batch with Clock-Sketch" (SIGMOD 2021). An *item batch*
is a run of identical items whose inter-arrival gaps stay below a
window ``T``; the library measures batch activeness, cardinality, time
span, and size with the paper's clock-augmented sketches, and ships the
state-of-the-art baselines, dataset synthesizers, exact ground truth,
and the full experiment harness reproducing every figure and table of
the paper's evaluation.

Quickstart
----------
>>> from repro import ClockBloomFilter, count_window
>>> bf = ClockBloomFilter.from_memory("8KB", count_window(1024))
>>> bf.insert("flow-a")
>>> bf.contains("flow-a")
True
"""

from .core import (
    ClockArray,
    ClockBloomFilter,
    ClockBitmap,
    ClockCountMin,
    ClockTimeSpanSketch,
    CardinalityEstimate,
    TimeSpanResult,
    TimeSpanBatchResult,
)
from .engine import BatchEngine
from .monitor import BatchReport, ItemBatchMonitor
from .serialize import dump_sketch, dumps_sketch, load_sketch, loads_sketch
from .shard import ShardedSketch
from .streams import BatchTracker, Batch, Stream, segment_batches
from .timebase import WindowKind, WindowSpec, count_window, time_window
from .units import format_bits, parse_memory
from .errors import (
    ConfigurationError,
    DatasetError,
    EstimatorSaturatedError,
    MemoryBudgetError,
    ReproError,
    TimeError,
)

__version__ = "1.0.0"

__all__ = [
    "ClockArray",
    "ClockBloomFilter",
    "ClockBitmap",
    "ClockCountMin",
    "ClockTimeSpanSketch",
    "CardinalityEstimate",
    "TimeSpanResult",
    "TimeSpanBatchResult",
    "BatchEngine",
    "ItemBatchMonitor",
    "BatchReport",
    "dump_sketch",
    "dumps_sketch",
    "load_sketch",
    "loads_sketch",
    "ShardedSketch",
    "BatchTracker",
    "Batch",
    "Stream",
    "segment_batches",
    "WindowKind",
    "WindowSpec",
    "count_window",
    "time_window",
    "format_bits",
    "parse_memory",
    "ReproError",
    "ConfigurationError",
    "MemoryBudgetError",
    "TimeError",
    "EstimatorSaturatedError",
    "DatasetError",
    "__version__",
]
