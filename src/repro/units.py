"""Memory-size helpers.

The paper sweeps memory budgets expressed in kilobytes (e.g. "16 KB to
512 KB"). Internally every structure accounts for its footprint in
*bits*, because clock cells are 2-8 bits wide and Bloom-filter cells are
single bits. This module centralises the conversions and a forgiving
parser for human-readable sizes, so experiment configs can say
``"64KB"`` and mean the same thing everywhere.
"""

from __future__ import annotations

import re

from .errors import ConfigurationError

BITS_PER_BYTE = 8
BYTES_PER_KB = 1024
BYTES_PER_MB = 1024 * 1024

_SIZE_RE = re.compile(
    r"^\s*(?P<num>\d+(?:\.\d+)?)\s*(?P<unit>bits?|b|kb|kib|mb|mib|)\s*$",
    re.IGNORECASE,
)

_UNIT_BITS = {
    "bit": 1,
    "bits": 1,
    "": BITS_PER_BYTE,  # bare number means bytes
    "b": BITS_PER_BYTE,
    "kb": BYTES_PER_KB * BITS_PER_BYTE,
    "kib": BYTES_PER_KB * BITS_PER_BYTE,
    "mb": BYTES_PER_MB * BITS_PER_BYTE,
    "mib": BYTES_PER_MB * BITS_PER_BYTE,
}


def kb_to_bits(kilobytes: float) -> int:
    """Convert kilobytes to bits, rounding down to a whole bit."""
    if kilobytes <= 0:
        raise ConfigurationError(f"memory must be positive, got {kilobytes} KB")
    return int(kilobytes * BYTES_PER_KB * BITS_PER_BYTE)


def bytes_to_bits(n_bytes: float) -> int:
    """Convert bytes to bits, rounding down to a whole bit."""
    if n_bytes <= 0:
        raise ConfigurationError(f"memory must be positive, got {n_bytes} bytes")
    return int(n_bytes * BITS_PER_BYTE)


def bits_to_kb(bits: int) -> float:
    """Convert bits to (fractional) kilobytes."""
    return bits / (BYTES_PER_KB * BITS_PER_BYTE)


def parse_memory(size: "int | float | str") -> int:
    """Parse a memory budget into bits.

    Accepts an ``int``/``float`` (interpreted as **bytes**, matching how
    the paper quotes budgets) or a string such as ``"64KB"``, ``"8 kb"``,
    ``"1.5MB"``, ``"4096"`` (bytes) or ``"2048 bits"``.

    >>> parse_memory("1KB")
    8192
    >>> parse_memory(16)
    128
    """
    if isinstance(size, (int, float)):
        return bytes_to_bits(size)
    match = _SIZE_RE.match(size)
    if match is None:
        raise ConfigurationError(f"cannot parse memory size {size!r}")
    number = float(match.group("num"))
    unit = match.group("unit").lower()
    bits = int(number * _UNIT_BITS[unit])
    if bits <= 0:
        raise ConfigurationError(f"memory must be positive, got {size!r}")
    return bits


def format_bits(bits: int) -> str:
    """Render a bit count as the most natural human unit.

    >>> format_bits(8192)
    '1.0KB'
    """
    n_bytes = bits / BITS_PER_BYTE
    if n_bytes >= BYTES_PER_MB:
        return f"{n_bytes / BYTES_PER_MB:.1f}MB"
    if n_bytes >= BYTES_PER_KB:
        return f"{n_bytes / BYTES_PER_KB:.1f}KB"
    if bits % BITS_PER_BYTE == 0:
        return f"{int(n_bytes)}B"
    return f"{bits}bits"
