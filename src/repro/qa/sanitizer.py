"""Clock-invariant sanitizer: runtime checks for sketch state.

SALSA and SF-sketch both demonstrate the failure class this module
exists to rule out: silently-corrupted counter state that keeps
producing *plausible* estimates. The sanitizer wraps
:class:`~repro.core.clockarray.ClockArray` and the four Clock-sketch
structures with invariant checks that turn silent corruption into an
immediate :class:`SanitizerError`:

- **cell range** — every clock cell stays in ``[0, 2^s - 1]``;
- **sweep-pointer monotonicity** — the cleaner's total step count
  never moves backwards (its position is that count mod ``m``);
- **cleaning cadence** — the cleaner never lags its
  ``T / (2^s - 2)``-per-circle schedule: exact sweep modes must be
  fully caught up after every operation, deferred modes may lag by at
  most one circle (their documented relaxation);
- **no false expiry (spot check)** — an item inserted within the
  window guarantee is never reported dead by a query;
- **serialize round-trip stability** — a sketch periodically survives
  ``dumps -> loads`` bit-identically.

Three ways to enable it:

- per sketch: ``ClockBloomFilter(..., sanitize=True)`` or
  :func:`sanitize_sketch`;
- per process: :func:`install` / :func:`uninstall` (re-entrant, pairs
  may nest) or the :func:`sanitized` context manager;
- per test run: ``REPRO_SANITIZE=1 python -m pytest`` — the conftest
  plugin installs the sanitizer for the whole tier-1 suite.

The checks are read-only: a sanitized sketch produces bit-identical
results to an unsanitized one, it just refuses to keep running on
corrupted state.
"""

from __future__ import annotations

import functools
import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Tuple

import numpy as np

from ..errors import ReproError, _notify_flight

__all__ = [
    "SanitizerError",
    "check_clock",
    "check_roundtrip",
    "check_sketch",
    "enabled",
    "install",
    "sanitize_sketch",
    "sanitized",
    "uninstall",
]


class SanitizerError(ReproError, AssertionError):
    """A sketch invariant was violated at runtime."""

    def __init__(self, *args: object) -> None:
        super().__init__(*args)
        _notify_flight("sanitizer", self)


#: Environment variable gating the pytest-wide sanitizer.
ENV_FLAG = "REPRO_SANITIZE"

#: Per-sketch cap on remembered recent inserts (spot-check memory bound).
RECENT_CAP = 4096

#: Items sampled from each batch operation for spot checks.
SAMPLE = 64

#: A serialize round-trip is verified every this many mutations.
ROUNDTRIP_EVERY = 512

_SERIALIZABLE = {"ClockBloomFilter", "ClockBitmap", "ClockCountMin",
                 "ClockTimeSpanSketch"}


def enabled() -> bool:
    """Is the environment-variable sanitizer switch on?"""
    value = os.environ.get(ENV_FLAG, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


# ----------------------------------------------------------------------
# Invariant checks
# ----------------------------------------------------------------------

def check_clock(clock: Any) -> None:
    """Assert the core clock-array invariants on one ``ClockArray``.

    Raises :class:`SanitizerError` on a cell outside ``[0, 2^s - 1]``,
    a sweep-step count that moved backwards, or a cleaner lagging (or
    ahead of) its sweep-cadence schedule.
    """
    values = clock.values
    max_value = clock.max_value
    if values.size:
        top = int(values.max())
        if top > max_value:
            raise SanitizerError(
                f"clock cell out of range: found value {top} with "
                f"s={clock.s} (max {max_value}); cell state is corrupted"
            )
    steps = int(clock.steps_done)
    seen = int(getattr(clock, "_qa_steps_seen", 0))
    if steps < seen:
        raise SanitizerError(
            f"sweep pointer moved backwards: {steps} total steps after "
            f"{seen}; the cleaning pointer must be monotone mod m"
        )
    clock._qa_steps_seen = steps
    lag = int(clock.total_steps_at(clock.now)) - steps
    if lag < 0:
        raise SanitizerError(
            f"cleaner ran {-lag} sweep steps ahead of its schedule; "
            "cells are expiring early"
        )
    limit = clock.n - 1 if clock.is_deferred else 0
    if lag > limit:
        raise SanitizerError(
            f"cleaning cadence violated: cleaner is {lag} sweep steps "
            f"behind schedule (allowed {limit} in {clock.sweep_mode!r} "
            f"mode); the T/(2^s-2) error window no longer holds"
        )


def check_roundtrip(sketch: Any) -> None:
    """Assert a sketch serialises and restores bit-identically."""
    if type(sketch).__name__ not in _SERIALIZABLE:
        return
    from .. import serialize
    clone = serialize.loads_sketch(serialize.dumps_sketch(sketch))
    checks: List[Tuple[str, bool]] = [
        ("clock.values", bool(np.array_equal(clone.clock.values,
                                             sketch.clock.values))),
        ("clock.steps_done", clone.clock.steps_done == sketch.clock.steps_done),
        ("now", float(clone.now) == float(sketch.now)),
        ("items_inserted", clone.items_inserted == sketch.items_inserted),
    ]
    for side in ("counters", "timestamps"):
        if hasattr(sketch, side):
            checks.append((side, bool(np.array_equal(getattr(clone, side),
                                                     getattr(sketch, side)))))
    for field, ok in checks:
        if not ok:
            raise SanitizerError(
                f"serialize round-trip diverged at {field}: a restored "
                "sketch would not continue bit-for-bit"
            )


def check_sketch(sketch: Any) -> None:
    """Run every applicable invariant check on one sketch, immediately."""
    check_clock(sketch.clock)
    check_roundtrip(sketch)


def _guarantee_age(sketch: Any) -> float:
    """Age below which an inserted item must still be reported alive.

    The paper guarantees liveness throughout the window ``T`` for the
    exact sweep modes and ``T - T/(2^s - 2)`` for the deferred modes;
    the sanitizer keeps one extra cleaning circle of slack in both
    cases so boundary rounding can never false-alarm.
    """
    window = float(sketch.window.length)
    circles = int(sketch.clock.circles_per_window)
    slack = window / circles
    if sketch.clock.is_deferred:
        return max(0.0, window - 2.0 * slack)
    return max(0.0, window - slack)


def _key(item: Any) -> Any:
    if isinstance(item, np.generic):
        return item.item()
    return item


def _recent(sketch: Any) -> "OrderedDict[Any, float]":
    table = getattr(sketch, "_qa_recent", None)
    if table is None:
        table = OrderedDict()
        sketch._qa_recent = table
    return table


def _record_insert(sketch: Any, item: Any, t: float) -> None:
    try:
        key = _key(item)
        table = _recent(sketch)
        table[key] = float(t)
        table.move_to_end(key)
        while len(table) > RECENT_CAP:
            table.popitem(last=False)
    except TypeError:
        pass  # unhashable item; skip the spot check for it


def _check_alive(sketch: Any, item: Any, now: float) -> None:
    try:
        key = _key(item)
        inserted = _recent(sketch).get(key)
    except TypeError:
        return
    if inserted is None:
        return
    age = float(now) - inserted
    bound = _guarantee_age(sketch)
    if 0.0 <= age < bound:
        raise SanitizerError(
            f"no-false-expiry violated: item {item!r} inserted {age:g} "
            f"time units ago (guarantee horizon {bound:g}, window "
            f"{sketch.window.length:g}) was reported dead"
        )


def _after_mutation(sketch: Any) -> None:
    ops = int(getattr(sketch, "_qa_ops", 0)) + 1
    sketch._qa_ops = ops
    check_clock(sketch.clock)
    if ops == 1 or ops % ROUNDTRIP_EVERY == 0:
        check_roundtrip(sketch)


# ----------------------------------------------------------------------
# Method wrappers
# ----------------------------------------------------------------------

def _wrap_clock(name: str, orig: Callable[..., Any]) -> Callable[..., Any]:
    @functools.wraps(orig)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        result = orig(self, *args, **kwargs)
        if name == "reset":
            self._qa_steps_seen = 0
        check_clock(self)
        return result
    return wrapper


def _wrap_insert(orig: Callable[..., Any]) -> Callable[..., Any]:
    @functools.wraps(orig)
    def wrapper(self: Any, item: Any, t: Any = None) -> Any:
        result = orig(self, item, t)
        _record_insert(self, item, float(self.now))
        _after_mutation(self)
        return result
    return wrapper


def _batch_sample(count: int) -> List[int]:
    if count <= SAMPLE:
        return list(range(count))
    half = SAMPLE // 2
    return list(range(half)) + list(range(count - half, count))


def _wrap_insert_many(orig: Callable[..., Any]) -> Callable[..., Any]:
    @functools.wraps(orig)
    def wrapper(self: Any, items: Any, times: Any = None) -> Any:
        pre_count = int(self.items_inserted)
        result = orig(self, items, times)
        count = len(items)
        if count:
            count_based = self.window.is_count_based
            times_arr = None if times is None else np.asarray(times)
            for i in _batch_sample(count):
                if count_based or times_arr is None:
                    t = float(pre_count + 1 + i)
                else:
                    t = float(times_arr[i])
                _record_insert(self, items[i], t)
        _after_mutation(self)
        return result
    return wrapper


def _wrap_scalar_reader(orig: Callable[..., Any],
                        dead: Callable[[Any], bool]) -> Callable[..., Any]:
    @functools.wraps(orig)
    def wrapper(self: Any, item: Any, t: Any = None) -> Any:
        result = orig(self, item, t)
        if dead(result):
            _check_alive(self, item, float(self.now))
        check_clock(self.clock)
        return result
    return wrapper


def _wrap_batch_reader(orig: Callable[..., Any],
                       dead: Callable[[Any], Any]) -> Callable[..., Any]:
    @functools.wraps(orig)
    def wrapper(self: Any, items: Any, t: Any = None) -> Any:
        result = orig(self, items, t)
        mask = np.asarray(dead(result), dtype=bool)
        now = float(self.now)
        for i in np.flatnonzero(mask)[:SAMPLE]:
            _check_alive(self, items[int(i)], now)
        check_clock(self.clock)
        return result
    return wrapper


def _wrap_aggregate_reader(orig: Callable[..., Any]) -> Callable[..., Any]:
    @functools.wraps(orig)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        result = orig(self, *args, **kwargs)
        check_clock(self.clock)
        return result
    return wrapper


def _not_active(result: Any) -> bool:
    return not bool(result)


def _zero_count(result: Any) -> bool:
    return int(result) == 0


_SCALAR_DEAD: Dict[Tuple[str, str], Callable[[Any], bool]] = {
    ("ClockBloomFilter", "contains"): _not_active,
    ("ClockBloomFilter", "query"): _not_active,
    ("ClockBitmap", "query"): _not_active,
    ("ClockCountMin", "query"): _zero_count,
    ("ClockTimeSpanSketch", "query"): lambda r: not r.active,
}

_BATCH_DEAD: Dict[Tuple[str, str], Callable[[Any], Any]] = {
    ("ClockBloomFilter", "contains_many"): lambda r: ~np.asarray(r, dtype=bool),
    ("ClockBloomFilter", "query_many"): lambda r: ~np.asarray(r, dtype=bool),
    ("ClockBitmap", "query_many"): lambda r: ~np.asarray(r, dtype=bool),
    ("ClockCountMin", "query_many"): lambda r: np.asarray(r) == 0,
    ("ClockTimeSpanSketch", "query_many"):
        lambda r: ~np.asarray(r.active, dtype=bool),
}

_CLOCK_METHODS = ("advance", "sync_state", "flush", "touch", "load_values",
                  "merge_max", "reset")

_AGGREGATE_READERS: Dict[str, Tuple[str, ...]] = {
    "ClockBitmap": ("estimate",),
}


def _sketch_classes() -> List[type]:
    from ..core import (ClockBitmap, ClockBloomFilter, ClockCountMin,
                        ClockTimeSpanSketch)
    return [ClockBloomFilter, ClockBitmap, ClockCountMin, ClockTimeSpanSketch]


def _clock_class() -> type:
    from ..core.clockarray import ClockArray
    return ClockArray


def _build_patches() -> List[Tuple[type, str, Callable[..., Any]]]:
    """(class, method name, wrapper) for every method the sanitizer hooks."""
    patches: List[Tuple[type, str, Callable[..., Any]]] = []
    clock_cls = _clock_class()
    for name in _CLOCK_METHODS:
        orig = clock_cls.__dict__.get(name)
        if orig is not None:
            patches.append((clock_cls, name, _wrap_clock(name, orig)))
    for cls in _sketch_classes():
        cls_name = cls.__name__
        for name in ("insert", "insert_many"):
            orig = cls.__dict__.get(name)
            if orig is not None:
                wrap = _wrap_insert if name == "insert" else _wrap_insert_many
                patches.append((cls, name, wrap(orig)))
        for (owner, name), dead in _SCALAR_DEAD.items():
            if owner == cls_name and name in cls.__dict__:
                patches.append((cls, name,
                                _wrap_scalar_reader(cls.__dict__[name], dead)))
        for (owner, name), dead in _BATCH_DEAD.items():
            if owner == cls_name and name in cls.__dict__:
                patches.append((cls, name,
                                _wrap_batch_reader(cls.__dict__[name], dead)))
        for name in _AGGREGATE_READERS.get(cls_name, ()):
            if name in cls.__dict__:
                patches.append((cls, name,
                                _wrap_aggregate_reader(cls.__dict__[name])))
    return patches


# ----------------------------------------------------------------------
# Global install / per-instance wrapping
# ----------------------------------------------------------------------

_install_refs = 0
_saved: List[Tuple[type, str, Callable[..., Any]]] = []


def install() -> None:
    """Patch ClockArray and the four sketches process-wide (re-entrant).

    Nested ``install()`` calls stack; the patches are removed when
    :func:`uninstall` has been called as many times as :func:`install`.
    """
    global _install_refs
    _install_refs += 1
    if _install_refs > 1:
        return
    for cls, name, wrapper in _build_patches():
        _saved.append((cls, name, cls.__dict__[name]))
        setattr(cls, name, wrapper)


def uninstall() -> None:
    """Undo one :func:`install`; restores originals at refcount zero."""
    global _install_refs
    if _install_refs == 0:
        return
    _install_refs -= 1
    if _install_refs:
        return
    while _saved:
        cls, name, orig = _saved.pop()
        setattr(cls, name, orig)


@contextmanager
def sanitized() -> Iterator[None]:
    """Context manager: sanitizer installed inside the ``with`` block."""
    install()
    try:
        yield
    finally:
        uninstall()


def sanitize_sketch(sketch: Any) -> Any:
    """Wrap one sketch instance (and its clock) with invariant checks.

    Unlike :func:`install`, only this instance is affected; other
    sketches in the process run unchecked. Returns the sketch.
    """
    import types

    clock = sketch.clock
    clock_cls = type(clock)
    for name in _CLOCK_METHODS:
        orig = getattr(clock_cls, name, None)
        if orig is not None and name not in clock.__dict__:
            clock.__dict__[name] = types.MethodType(_wrap_clock(name, orig),
                                                    clock)
    cls = type(sketch)
    cls_name = cls.__name__

    def bind(name: str, wrapper: Callable[..., Any]) -> None:
        if name not in sketch.__dict__:
            sketch.__dict__[name] = types.MethodType(wrapper, sketch)

    for name in ("insert", "insert_many"):
        orig = getattr(cls, name, None)
        if orig is not None:
            wrap = _wrap_insert if name == "insert" else _wrap_insert_many
            bind(name, wrap(orig))
    for (owner, name), dead in _SCALAR_DEAD.items():
        if owner == cls_name and hasattr(cls, name):
            bind(name, _wrap_scalar_reader(getattr(cls, name), dead))
    for (owner, name), dead in _BATCH_DEAD.items():
        if owner == cls_name and hasattr(cls, name):
            bind(name, _wrap_batch_reader(getattr(cls, name), dead))
    for name in _AGGREGATE_READERS.get(cls_name, ()):
        if hasattr(cls, name):
            bind(name, _wrap_aggregate_reader(getattr(cls, name)))
    sketch._qa_opt_in = True
    return sketch
