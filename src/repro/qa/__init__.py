"""Correctness tooling for the Clock-sketch reproduction.

Three legs, all repo-specific, unified behind
``python -m repro.qa {lint,flow,sanitize}``:

- **sketch-lint** (:mod:`repro.qa.lint` / :mod:`repro.qa.rules`): an
  AST-based static-analysis pass enforcing the disciplines the hot
  path depends on — no scalar loops over streams, explicit numpy
  dtypes, clock-cell mutation only through :class:`ClockArray`,
  matched scalar/batch API pairs. Run it with
  ``python -m repro.qa lint src tests``; add ``--stale-suppressions``
  to audit the suppression comments themselves.

- **sketch-flow** (:mod:`repro.qa.flow`): an inter-procedural dataflow
  analyzer — per-function CFGs, a cross-module call graph, and four
  whole-program rules: SK108 lock dominance (absorbing the old lint
  rule SK104), SK109 fault-path completeness, SK110 kernel purity,
  SK111 ``_obs.ENABLED`` gating. Run it with
  ``python -m repro.qa flow src tests``.

- **sanitizer** (:mod:`repro.qa.sanitizer`): a dynamic invariant
  checker that wraps :class:`~repro.core.clockarray.ClockArray` and
  the four sketches with runtime assertions — cell range, sweep-pointer
  monotonicity, cleaning-cadence bound, no-false-expiry spot checks,
  and serialize round-trip stability. Enable it per sketch with
  ``sanitize=True``, globally with :func:`repro.qa.sanitizer.install`,
  or for a whole pytest run with ``REPRO_SANITIZE=1``;
  ``python -m repro.qa sanitize`` runs a standalone smoke pass.

See ``docs/qa.md`` for the full rule catalogue and workflows.
"""

from __future__ import annotations

import importlib
from typing import Any

# PEP 562 lazy re-exports: ``python -m repro.qa.lint`` imports this
# package before runpy executes the submodule as __main__, so an eager
# ``from .lint import ...`` here would trigger the double-import
# RuntimeWarning on every lint run.
_EXPORTS = {
    "lint_file": ("lint", "lint_file"),
    "lint_paths": ("lint", "lint_paths"),
    "lint_source": ("lint", "lint_source"),
    "lint_main": ("lint", "main"),
    "find_stale_suppressions": ("lint", "find_stale_suppressions"),
    "analyze_paths": ("flow", "analyze_paths"),
    "analyze_source": ("flow", "analyze_source"),
    "flow_main": ("flow", "main"),
    "FLOW_RULE_IDS": ("flow", "FLOW_RULE_IDS"),
    "Finding": ("rules", "Finding"),
    "RULE_IDS": ("rules", "RULE_IDS"),
    "SUPPRESSION_TOKENS": ("rules", "SUPPRESSION_TOKENS"),
    "SanitizerError": ("sanitizer", "SanitizerError"),
    "check_clock": ("sanitizer", "check_clock"),
    "check_roundtrip": ("sanitizer", "check_roundtrip"),
    "check_sketch": ("sanitizer", "check_sketch"),
    "enabled": ("sanitizer", "enabled"),
    "install": ("sanitizer", "install"),
    "sanitize_sketch": ("sanitizer", "sanitize_sketch"),
    "sanitized": ("sanitizer", "sanitized"),
    "uninstall": ("sanitizer", "uninstall"),
}


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, attr)


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "FLOW_RULE_IDS",
    "Finding",
    "RULE_IDS",
    "SUPPRESSION_TOKENS",
    "SanitizerError",
    "analyze_paths",
    "analyze_source",
    "check_clock",
    "check_roundtrip",
    "check_sketch",
    "enabled",
    "find_stale_suppressions",
    "flow_main",
    "install",
    "lint_file",
    "lint_main",
    "lint_paths",
    "lint_source",
    "sanitize_sketch",
    "sanitized",
    "uninstall",
]
