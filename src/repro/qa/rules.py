"""AST rule implementations for the sketch-lint static-analysis pass.

Each rule is a pure function from a parsed module (plus its repo path)
to a list of :class:`Finding`\\ s. Rules are *repo-specific*: they encode
the correctness disciplines the Clock-sketch hot path depends on — the
disciplines a generic linter cannot know about:

SK101
    No per-item Python loops over stream items inside the hot-path
    modules (``core/``, ``engine/``, ``hashing/``). The batch engine
    exists so whole streams move through numpy; a stray scalar loop
    silently reverts a hot path to pre-vectorised throughput.
    Deliberate scalar reference paths carry ``# sketchlint: scalar-ok``.
SK102
    Every numpy array construction in ``core/``/``engine/`` passes an
    explicit ``dtype``. Clock cells, step counts and timestamps each
    have one correct width; platform-dependent default dtypes are how
    bit-identity breaks between machines.
SK103
    No raw clock arithmetic outside ``clockarray.py``: neither
    ``1 << s`` cell-width constants nor direct writes to a clock
    array's ``values`` buffer. All cell mutation goes through the
    :class:`~repro.core.clockarray.ClockArray` API so invariants stay
    enforceable in one place.
SK105
    Every sketch subclass of :class:`~repro.core.base.ClockSketchBase`
    defines *matched* scalar/batch API pairs: ``insert``/``insert_many``,
    ``query``/``query_many``, ``contains``/``contains_many``. Half a
    pair means some callers silently fall off the vectorised path (or
    have no scalar reference to property-test against).
SK106
    Metric registration sites (``counter`` / ``gauge`` / ``histogram``
    registrars and ``timed`` instrumentation) must name their series
    through the registered constants in :mod:`repro.obs.names`, never
    inline string literals. An inline name drifts from the catalogue
    silently — dashboards point at a series nobody emits any more.
    Test modules (any path with a ``tests`` segment) are exempt, as
    are intentional literals marked ``# sketchlint: metric-name-ok``.
SK107
    Hot-path numpy kernel math lives only under ``repro/kernels/``.
    Defining one of the primitive kernels (``sweep_hits``,
    ``snapshot_values``, ``decay_all``, ``decrement_range``,
    ``fuse_*``) — or calling one as a bare function instead of
    dispatching through a backend (``clock.kernels.fuse_touch(...)``)
    — inside ``core/``/``engine/``/``shard/``/``hashing/`` forks the
    kernel seam: the copy stops being swappable for the compiled
    backend and silently drifts from the reference. Deliberate
    exceptions carry ``# sketchlint: kernel-ok``.

The historical SK104 (ThreadSafeSketch lock discipline) was absorbed
into the flow analyzer's SK108 (:mod:`repro.qa.flow.rules`), which
checks the same discipline with real control-flow dominance — plus
shard-replica quiescence — instead of a per-statement pattern. The
``lockfree-ok`` token (and the literal ``SK104``) remain accepted and
now suppress SK108.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import PurePosixPath
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["Finding", "ModuleScope", "RULE_IDS", "SUPPRESSION_TOKENS",
           "run_rules", "scope_for_path"]

RULE_IDS = ("SK101", "SK102", "SK103", "SK105", "SK106", "SK107")

#: Suppression comment tokens (``# sketchlint: <token>``) per rule.
#: Shared with the flow analyzer (SK108-SK111); ``lockfree-ok`` and the
#: literal ``SK104`` are kept as aliases of SK108, which replaced SK104.
SUPPRESSION_TOKENS: Dict[str, str] = {
    "scalar-ok": "SK101",
    "dtype-ok": "SK102",
    "raw-clock-ok": "SK103",
    "pair-ok": "SK105",
    "metric-name-ok": "SK106",
    "kernel-ok": "SK107",
    "lock-ok": "SK108",
    "lockfree-ok": "SK108",
    "SK104": "SK108",
    "fault-ok": "SK109",
    "impure-ok": "SK110",
    "obs-gate-ok": "SK111",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class ModuleScope:
    """Which rule families apply to a module, derived from its path."""

    hot_path: bool      # SK101: core/, engine/, hashing/, kernels/
    dtype_scope: bool   # SK102: core/, engine/, kernels/
    clock_scope: bool   # SK103: core/, engine/, shard/, serialize.py
                        #        — minus clockarray.py and kernels/
    metric_scope: bool  # SK106: everywhere except tests/
    kernel_scope: bool  # SK107: core/, engine/, shard/, hashing/
                        #        — minus kernels/ itself


def scope_for_path(path: str) -> ModuleScope:
    """Classify a module path into rule scopes.

    Paths are interpreted by their directory segments, so both real
    repository paths and the virtual paths used by the linter's own
    tests classify identically.
    """
    parts = PurePosixPath(str(path).replace("\\", "/")).parts
    segments = set(parts)
    basename = parts[-1] if parts else ""
    in_kernels = "kernels" in segments
    hot = bool(segments & {"core", "engine", "hashing", "kernels"})
    dtype_scope = bool(segments & {"core", "engine", "kernels"})
    # The kernel layer is, like clockarray.py, a legitimate home of
    # cell mutation — SK103 polices everyone else.
    clock_scope = (bool(segments & {"core", "engine"})
                   or "shard" in segments
                   or basename == "serialize.py") \
        and basename != "clockarray.py" and not in_kernels
    metric_scope = "tests" not in segments
    kernel_scope = bool(segments & {"core", "engine", "shard", "hashing"}) \
        and not in_kernels
    return ModuleScope(hot_path=hot, dtype_scope=dtype_scope,
                       clock_scope=clock_scope, metric_scope=metric_scope,
                       kernel_scope=kernel_scope)


# ----------------------------------------------------------------------
# SK101 — per-item Python loops over stream items in hot-path modules
# ----------------------------------------------------------------------

#: Identifiers that, by repo convention, name whole stream batches.
STREAM_NAMES: Set[str] = {"items", "keys", "times", "times_arr", "stream",
                          "stream_items", "batch_items"}

_ITER_WRAPPERS = {"enumerate", "zip", "reversed", "iter", "sorted", "list",
                  "tuple"}


def _is_stream_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in STREAM_NAMES
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        name = node.func.id
        if name in _ITER_WRAPPERS:
            return any(_is_stream_expr(arg) for arg in node.args)
        if name == "range":
            return any(_is_stream_len(arg) for arg in node.args)
    return False


def _is_stream_len(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and any(_is_stream_expr(arg) for arg in node.args))


def _rule_sk101(tree: ast.Module, path: str, scope: ModuleScope) -> List[Finding]:
    if not scope.hot_path:
        return []
    findings: List[Finding] = []

    def flag(line: int) -> None:
        findings.append(Finding(
            "SK101", path, line,
            "per-item Python loop over stream items in a hot-path module; "
            "route the batch through the engine, or mark a deliberate "
            "reference path with `# sketchlint: scalar-ok`",
        ))

    for node in ast.walk(tree):
        if isinstance(node, ast.For) and _is_stream_expr(node.iter):
            flag(node.iter.lineno)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for comp in node.generators:
                if _is_stream_expr(comp.iter):
                    flag(comp.iter.lineno)
    return findings


# ----------------------------------------------------------------------
# SK102 — numpy array constructions must pass an explicit dtype
# ----------------------------------------------------------------------

#: Constructor name -> positional index at which ``dtype`` may be passed.
_NP_CONSTRUCTORS: Dict[str, Optional[int]] = {
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "zeros": 1,
    "ones": 1,
    "empty": 1,
    "full": 2,
    "arange": 3,
    "fromiter": 1,
    "frombuffer": 1,
}

_NUMPY_ALIASES = {"np", "numpy"}


def _rule_sk102(tree: ast.Module, path: str, scope: ModuleScope) -> List[Finding]:
    if not scope.dtype_scope:
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES
                and func.attr in _NP_CONSTRUCTORS):
            continue
        if any(kw.arg == "dtype" for kw in node.keywords):
            continue
        pos = _NP_CONSTRUCTORS[func.attr]
        if pos is not None and len(node.args) > pos:
            continue
        findings.append(Finding(
            "SK102", path, node.lineno,
            f"np.{func.attr}(...) without an explicit dtype in a hot-path "
            "module; default dtypes are platform-dependent and break "
            "bit-identity",
        ))
    return findings


# ----------------------------------------------------------------------
# SK103 — raw clock arithmetic / direct clock-cell writes
# ----------------------------------------------------------------------

def _attr_chain(node: ast.expr) -> List[str]:
    """Dotted name chain of an attribute expression (outermost last)."""
    names: List[str] = []
    while isinstance(node, ast.Attribute):
        names.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        names.append(node.id)
    names.reverse()
    return names


def _is_clock_values_chain(node: ast.expr) -> bool:
    """True for expressions like ``clock.values`` / ``self.clock.values``."""
    if not isinstance(node, ast.Attribute) or node.attr != "values":
        return False
    return "clock" in _attr_chain(node.value)


def _clock_value_aliases(func: ast.AST) -> Set[str]:
    """Local names bound directly to a clock's ``values`` buffer.

    Catches ``values = clock.values`` (and any other simple-name
    binding of the buffer) anywhere inside the function, including in
    nested closures, so later subscript writes through the alias are
    attributable.
    """
    aliases: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and _is_clock_values_chain(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
    return aliases


def _rule_sk103(tree: ast.Module, path: str, scope: ModuleScope) -> List[Finding]:
    if not scope.clock_scope:
        return []
    findings: List[Finding] = []

    # (a) `1 << s` cell-width constants outside ClockArray.
    for node in ast.walk(tree):
        if (isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift)
                and isinstance(node.left, ast.Constant)
                and node.left.value == 1):
            right = node.right
            names = _attr_chain(right) if isinstance(right, (ast.Attribute, ast.Name)) else []
            if names and names[-1] == "s":
                findings.append(Finding(
                    "SK103", path, node.lineno,
                    "raw clock-width arithmetic (`1 << s`) outside "
                    "clockarray.py; use ClockArray's max_value / "
                    "circles_per_window helpers",
                ))

    # (b) Direct writes into a clock array's cell buffer.
    aliases = _clock_value_aliases(tree)

    def flag_write(line: int) -> None:
        findings.append(Finding(
            "SK103", path, line,
            "direct clock-cell write outside clockarray.py; go through "
            "ClockArray.touch / ClockArray.load_values so invariants stay "
            "enforceable",
        ))

    def _is_clock_buffer(node: ast.expr) -> bool:
        if _is_clock_values_chain(node):
            return True
        return isinstance(node, ast.Name) and node.id in aliases

    for node in ast.walk(tree):
        targets: Iterable[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AugAssign):
            targets = (node.target,)
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Subscript) and _is_clock_buffer(target.value):
                flag_write(target.value.lineno)
    return findings


# ----------------------------------------------------------------------
# SK105 — matched scalar/batch API pairs on temporal-base subclasses
# ----------------------------------------------------------------------

_API_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("insert", "insert_many"),
    ("query", "query_many"),
    ("contains", "contains_many"),
)

_TEMPORAL_BASE = "ClockSketchBase"


def _base_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in cls.bases:
        chain = _attr_chain(base)
        if chain:
            names.add(chain[-1])
    return names


def _rule_sk105(tree: ast.Module, path: str, scope: ModuleScope) -> List[Finding]:
    classes = [node for node in ast.walk(tree) if isinstance(node, ast.ClassDef)]
    # Resolve (single-module) transitive subclasses of the temporal base.
    sketchy: Set[str] = {_TEMPORAL_BASE}
    changed = True
    while changed:
        changed = False
        for cls in classes:
            if cls.name not in sketchy and _base_names(cls) & sketchy:
                sketchy.add(cls.name)
                changed = True

    findings: List[Finding] = []
    for cls in classes:
        if cls.name not in sketchy or cls.name == _TEMPORAL_BASE:
            continue
        defined = {
            stmt.name for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for scalar, batch in _API_PAIRS:
            has_scalar, has_batch = scalar in defined, batch in defined
            if has_scalar == has_batch:
                continue
            present, missing = (scalar, batch) if has_scalar else (batch, scalar)
            findings.append(Finding(
                "SK105", path, cls.lineno,
                f"sketch class {cls.name} defines `{present}` without its "
                f"twin `{missing}`; scalar and batch APIs must come in "
                "matched pairs",
            ))
    return findings


# ----------------------------------------------------------------------
# SK106 — metric names must be registered constants, not inline strings
# ----------------------------------------------------------------------

#: Registrar call names whose first argument names a metric series.
_METRIC_REGISTRARS: Set[str] = {"counter", "gauge", "histogram", "timed"}


def _metric_name_arg(node: ast.Call) -> "Optional[ast.expr]":
    for kw in node.keywords:
        if kw.arg == "name":
            return kw.value
    if node.args:
        return node.args[0]
    return None


def _rule_sk106(tree: ast.Module, path: str, scope: ModuleScope) -> List[Finding]:
    if not scope.metric_scope:
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            registrar = func.attr
        elif isinstance(func, ast.Name):
            registrar = func.id
        else:
            continue
        if registrar not in _METRIC_REGISTRARS:
            continue
        arg = _metric_name_arg(node)
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            findings.append(Finding(
                "SK106", path, node.lineno,
                f"inline metric-name literal in `{registrar}(...)`; metric "
                "names are registered constants — import them from "
                "repro.obs.names (mark an intentional literal with "
                "`# sketchlint: metric-name-ok`)",
            ))
    return findings


# ----------------------------------------------------------------------
# SK107 — kernel math may live only under repro/kernels/
# ----------------------------------------------------------------------

#: The primitive-kernel names owned by the kernel-backend layer
#: (:mod:`repro.kernels`). Defining or bare-calling one of these in a
#: hot-path module bypasses the backend seam.
_KERNEL_PRIMITIVES: Set[str] = {
    "sweep_hits", "snapshot_values", "decay_all", "decrement_range",
    "fuse_touch", "fuse_timespan", "fuse_countmin",
}


def _rule_sk107(tree: ast.Module, path: str, scope: ModuleScope) -> List[Finding]:
    if not scope.kernel_scope:
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in _KERNEL_PRIMITIVES):
            findings.append(Finding(
                "SK107", path, node.lineno,
                f"kernel primitive `{node.name}` defined outside "
                "repro/kernels/; hot-path kernel math lives in the "
                "kernel-backend layer so every backend stays swappable "
                "(mark a deliberate exception with "
                "`# sketchlint: kernel-ok`)",
            ))
        elif (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in _KERNEL_PRIMITIVES):
            findings.append(Finding(
                "SK107", path, node.func.lineno,
                f"bare call to kernel primitive `{node.func.id}`; dispatch "
                "through a backend (`clock.kernels." + node.func.id +
                "(...)` or `resolve_backend(...)`) so compiled backends "
                "apply (mark a deliberate exception with "
                "`# sketchlint: kernel-ok`)",
            ))
    return findings


_RULES: Tuple[Callable[[ast.Module, str, ModuleScope], List[Finding]], ...] = (
    _rule_sk101, _rule_sk102, _rule_sk103, _rule_sk105,
    _rule_sk106, _rule_sk107,
)


def run_rules(tree: ast.Module, path: str,
              scope: Optional[ModuleScope] = None) -> List[Finding]:
    """Run every SK rule over one parsed module."""
    if scope is None:
        scope = scope_for_path(path)
    findings: List[Finding] = []
    for rule in _RULES:
        findings.extend(rule(tree, path, scope))
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings
