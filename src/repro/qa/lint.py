"""sketch-lint: the repo-specific static-analysis pass (CLI).

Runs the SK1xx rules of :mod:`repro.qa.rules` over source trees::

    python -m repro.qa.lint src tests

Exit status is 0 when no violations are found, 1 otherwise (2 for
usage/parse errors). Suppressions are source comments::

    # sketchlint: scalar-ok            (SK101)
    # sketchlint: dtype-ok             (SK102)
    # sketchlint: raw-clock-ok         (SK103)
    # sketchlint: lockfree-ok          (SK104)
    # sketchlint: pair-ok              (SK105)
    # sketchlint: metric-name-ok       (SK106)

A suppression comment silences its rule on its own line and on the
line directly below (comment-above style). Placed on a ``def`` or
``class`` line it silences the rule for the whole statement body.

Directories named ``qa_fixtures`` are skipped by default: they hold
the linter's own deliberately-broken test snippets.
"""

from __future__ import annotations

import argparse
import ast
import io
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set

from .rules import Finding, SUPPRESSION_TOKENS, run_rules, scope_for_path

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files", "main"]

#: Directory names never descended into.
EXCLUDED_DIRS: Set[str] = {"__pycache__", ".git", ".venv", "qa_fixtures",
                           "node_modules", "build", "dist"}

_COMMENT_PREFIX = "sketchlint:"


def _suppressed_lines(source: str, tree: ast.Module) -> Dict[str, Set[int]]:
    """Map rule id -> set of source lines on which it is suppressed."""
    per_line: Dict[int, Set[str]] = {}
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(_COMMENT_PREFIX):
                continue
            body = text[len(_COMMENT_PREFIX):]
            rules: Set[str] = set()
            for token in body.replace(",", " ").split():
                rule = SUPPRESSION_TOKENS.get(token)
                if rule is not None:
                    rules.add(rule)
                elif token in SUPPRESSION_TOKENS.values():
                    rules.add(token)
            if rules:
                per_line.setdefault(tok.start[0], set()).update(rules)
    except tokenize.TokenError:
        pass

    suppressed: Dict[str, Set[int]] = {}

    def add(rule: str, lines: Iterable[int]) -> None:
        suppressed.setdefault(rule, set()).update(lines)

    # Statement-level spans for def/class suppressions.
    spans: Dict[int, range] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            spans[node.lineno] = range(node.lineno, end + 1)

    for line, rules in per_line.items():
        for rule in rules:
            if line in spans:
                add(rule, spans[line])
            else:
                add(rule, (line, line + 1))
    return suppressed


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one module's source, classified by ``path`` (may be virtual)."""
    tree = ast.parse(source, filename=path)
    findings = run_rules(tree, path, scope_for_path(path))
    if not findings:
        return findings
    suppressed = _suppressed_lines(source, tree)
    return [
        f for f in findings
        if f.line not in suppressed.get(f.rule, ())
    ]


def lint_file(path: "Path | str") -> List[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def iter_python_files(paths: Sequence["Path | str"]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                yield p
            continue
        for candidate in sorted(p.rglob("*.py")):
            if not EXCLUDED_DIRS & set(candidate.parts):
                yield candidate


def lint_paths(paths: Sequence["Path | str"]) -> List[Finding]:
    """Lint every Python file under the given paths."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return findings


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa.lint",
        description="Clock-sketch repo linter (rules SK101-SK105).",
    )
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-finding listing")
    args = parser.parse_args(argv)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"sketchlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        findings = lint_paths(args.paths)
    except SyntaxError as exc:
        print(f"sketchlint: parse error: {exc}", file=sys.stderr)
        return 2

    if not args.quiet:
        for finding in findings:
            print(finding.format())
    count = len(findings)
    files = len(set(iter_python_files(args.paths)))
    status = "clean" if not count else f"{count} finding(s)"
    print(f"sketchlint: {files} file(s) checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
