"""sketch-lint: the repo-specific static-analysis pass (CLI).

Runs the SK1xx rules of :mod:`repro.qa.rules` over source trees::

    python -m repro.qa lint src tests
    python -m repro.qa lint --stale-suppressions src tests

Exit status is 0 when no violations are found, 1 otherwise (2 for
usage/parse errors). Suppressions are source comments::

    # sketchlint: scalar-ok            (SK101)
    # sketchlint: dtype-ok             (SK102)
    # sketchlint: raw-clock-ok         (SK103)
    # sketchlint: pair-ok              (SK105)
    # sketchlint: metric-name-ok       (SK106)
    # sketchlint: kernel-ok            (SK107)
    # sketchlint: lock-ok              (SK108, flow)
    # sketchlint: fault-ok             (SK109, flow)
    # sketchlint: impure-ok            (SK110, flow)
    # sketchlint: obs-gate-ok          (SK111, flow)

A suppression comment silences its rule on its own line and on the
line directly below (comment-above style). Placed on a ``def`` or
``class`` line it silences the rule for the whole statement body. The
same comments are honoured by the flow analyzer
(:mod:`repro.qa.flow`) for the SK108-SK111 rules.

``--stale-suppressions`` audits the comments themselves: a token whose
rule would not fire anywhere in the comment's scope even with
suppressions ignored is dead weight and gets reported (exit 1), so
suppressions cannot outlive the violation they were excusing.

Directories named ``qa_fixtures`` are skipped by default: they hold
the linter's own deliberately-broken test snippets.
"""

from __future__ import annotations

import argparse
import ast
import io
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set

from .rules import Finding, SUPPRESSION_TOKENS, run_rules, scope_for_path

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files",
           "find_stale_suppressions", "main"]

#: Directory names never descended into.
EXCLUDED_DIRS: Set[str] = {"__pycache__", ".git", ".venv", "qa_fixtures",
                           "node_modules", "build", "dist"}

_COMMENT_PREFIX = "sketchlint:"


def _suppression_comments(source: str) -> "List[tuple]":
    """Every suppression token in ``source`` as ``(line, token, rule)``."""
    out: List[tuple] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    try:
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            text = tok.string.lstrip("#").strip()
            if not text.startswith(_COMMENT_PREFIX):
                continue
            body = text[len(_COMMENT_PREFIX):]
            for word in body.replace(",", " ").split():
                rule = SUPPRESSION_TOKENS.get(word)
                if rule is None and word in SUPPRESSION_TOKENS.values():
                    rule = word
                if rule is not None:
                    out.append((tok.start[0], word, rule))
    except tokenize.TokenError:
        pass
    return out


def _stmt_spans(tree: ast.Module) -> Dict[int, range]:
    """``def``/``class`` header line -> the statement's full line range."""
    spans: Dict[int, range] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            spans[node.lineno] = range(node.lineno, end + 1)
    return spans


def _suppressed_lines(source: str, tree: ast.Module) -> Dict[str, Set[int]]:
    """Map rule id -> set of source lines on which it is suppressed."""
    suppressed: Dict[str, Set[int]] = {}

    def add(rule: str, lines: Iterable[int]) -> None:
        suppressed.setdefault(rule, set()).update(lines)

    spans = _stmt_spans(tree)
    for line, _token, rule in _suppression_comments(source):
        if line in spans:
            add(rule, spans[line])
        else:
            add(rule, (line, line + 1))
    return suppressed


def lint_source(source: str, path: str) -> List[Finding]:
    """Lint one module's source, classified by ``path`` (may be virtual)."""
    tree = ast.parse(source, filename=path)
    findings = run_rules(tree, path, scope_for_path(path))
    if not findings:
        return findings
    suppressed = _suppressed_lines(source, tree)
    return [
        f for f in findings
        if f.line not in suppressed.get(f.rule, ())
    ]


def lint_file(path: "Path | str") -> List[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), str(p))


def iter_python_files(paths: Sequence["Path | str"]) -> Iterator[Path]:
    """Yield every ``.py`` file under the given files/directories."""
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                yield p
            continue
        for candidate in sorted(p.rglob("*.py")):
            if not EXCLUDED_DIRS & set(candidate.parts):
                yield candidate


def lint_paths(paths: Sequence["Path | str"]) -> List[Finding]:
    """Lint every Python file under the given paths."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
    return findings


def find_stale_suppressions(paths: Sequence["Path | str"],
                            ) -> "List[tuple]":
    """Suppression tokens whose rule would not fire in their scope.

    Runs *both* the lint rules and the flow rules with suppressions
    ignored, then checks every ``# sketchlint: <token>`` comment: if the
    token's rule produces no finding on any line the comment covers, the
    token is stale. Returns sorted ``(path, line, token, rule)`` tuples.
    """
    # Imported lazily: flow.driver imports this module for the shared
    # suppression machinery.
    from .flow.driver import load_project
    from .flow.rules import run_flow_rules

    project, parsed = load_project(paths)
    active: Dict[str, Dict[str, Set[int]]] = {}
    for finding in run_flow_rules(project):
        active.setdefault(finding.path, {}) \
            .setdefault(finding.rule, set()).add(finding.line)
    stale: List[tuple] = []
    for path, (source, tree) in parsed.items():
        per_rule = active.setdefault(path, {})
        for finding in run_rules(tree, path, scope_for_path(path)):
            per_rule.setdefault(finding.rule, set()).add(finding.line)
        spans = _stmt_spans(tree)
        for line, token, rule in _suppression_comments(source):
            covered = spans.get(line, range(line, line + 2))
            hits = per_rule.get(rule, set())
            if not hits.intersection(covered):
                stale.append((path, line, token, rule))
    return sorted(stale)


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa lint",
        description="Clock-sketch repo linter (rules SK101-SK107; "
                    "the flow rules SK108-SK111 live in "
                    "`python -m repro.qa flow`).",
    )
    parser.add_argument("paths", nargs="+",
                        help="files or directories to lint")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-finding listing")
    parser.add_argument("--stale-suppressions", action="store_true",
                        help="instead of linting, report suppression "
                             "comments whose rule no longer fires in "
                             "their scope")
    args = parser.parse_args(argv)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"sketchlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    if args.stale_suppressions:
        try:
            stale = find_stale_suppressions(args.paths)
        except SyntaxError as exc:
            print(f"sketchlint: parse error: {exc}", file=sys.stderr)
            return 2
        if not args.quiet:
            for path, line, token, rule in stale:
                print(f"{path}:{line}: stale suppression `{token}` — "
                      f"{rule} does not fire in its scope")
        status = "clean" if not stale else f"{len(stale)} stale token(s)"
        print(f"sketchlint: suppression audit, {status}")
        return 1 if stale else 0

    try:
        findings = lint_paths(args.paths)
    except SyntaxError as exc:
        print(f"sketchlint: parse error: {exc}", file=sys.stderr)
        return 2

    if not args.quiet:
        for finding in findings:
            print(finding.format())
    count = len(findings)
    files = len(set(iter_python_files(args.paths)))
    status = "clean" if not count else f"{count} finding(s)"
    print(f"sketchlint: {files} file(s) checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
