"""``python -m repro.qa`` — alias for the sketch-lint CLI."""

from __future__ import annotations

from .lint import main

if __name__ == "__main__":
    raise SystemExit(main())
