"""``python -m repro.qa`` — the unified QA driver.

Three subcommands::

    python -m repro.qa lint src tests        # AST rules SK101-SK107
    python -m repro.qa flow src tests        # flow rules SK108-SK111
    python -m repro.qa sanitize              # dynamic invariant smoke run

``lint`` and ``flow`` forward their remaining arguments to
:func:`repro.qa.lint.main` and :func:`repro.qa.flow.driver.main`
unchanged (including ``--stale-suppressions`` and ``--baseline``).
``sanitize`` runs every sketch family through a short sanitized
workload so the runtime invariant checks execute end to end.

With no subcommand the driver prints usage and exits 2; the historical
``python -m repro.qa src tests`` spelling (paths only) still runs the
linter for compatibility.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

_USAGE = (
    "usage: python -m repro.qa {lint,flow,sanitize} [options] [paths...]\n"
    "  lint      AST rules SK101-SK107 (see `lint --help`)\n"
    "  flow      inter-procedural flow rules SK108-SK111 "
    "(see `flow --help`)\n"
    "  sanitize  dynamic invariant smoke run over all sketch families\n"
)


def _sanitize_main(argv: Sequence[str]) -> int:
    """Run each sketch family under the sanitizer wrappers."""
    import numpy as np

    from ..core import (ClockBitmap, ClockBloomFilter, ClockCountMin,
                        ClockTimeSpanSketch)
    from ..timebase import time_window
    from .sanitizer import sanitize_sketch

    if argv and argv[0] in ("-h", "--help"):
        print("usage: python -m repro.qa sanitize\n\n"
              "Runs every sketch family through a short insert/query/"
              "advance workload with the dynamic sanitizer installed; "
              "any invariant breach raises SanitizerError (exit 1).")
        return 0

    window = time_window(64.0)
    builds = {
        "bloom": lambda: ClockBloomFilter(n=512, k=3, s=2, window=window),
        "bitmap": lambda: ClockBitmap(n=512, s=4, window=window),
        "countmin": lambda: ClockCountMin(width=256, depth=2, s=2,
                                          window=window),
        "timespan": lambda: ClockTimeSpanSketch(n=512, k=3, s=4,
                                                window=window),
    }
    keys = np.arange(200, dtype=np.int64)
    times = np.linspace(1.0, 32.0, keys.size)
    failures = 0
    for name, build in builds.items():
        try:
            sketch = sanitize_sketch(build())
            sketch.insert_many(keys, times)
            for key in keys[:16]:
                if hasattr(sketch, "contains"):
                    sketch.contains(key, t=33.0)
                elif hasattr(sketch, "query"):
                    sketch.query(key, t=33.0)
            if hasattr(sketch, "estimate"):
                sketch.estimate(t=33.0)
            sketch.clock.advance(96.0)  # expire everything, checked
        except Exception as exc:
            failures += 1
            print(f"qa sanitize: {name}: "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
        else:
            print(f"qa sanitize: {name}: ok")
    status = "clean" if not failures else f"{failures} failure(s)"
    print(f"qa sanitize: {len(builds)} sketch families exercised, "
          f"{status}")
    return 1 if failures else 0


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    args: List[str] = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print(_USAGE, end="", file=sys.stderr)
        return 2
    command, rest = args[0], args[1:]
    if command == "lint":
        from .lint import main as lint_main
        return lint_main(rest)
    if command == "flow":
        from .flow.driver import main as flow_main
        return flow_main(rest)
    if command == "sanitize":
        return _sanitize_main(rest)
    if command in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    # Compatibility: bare paths run the linter, as `python -m repro.qa`
    # did before the subcommands existed.
    from .lint import main as lint_main
    return lint_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
