"""``python -m repro.qa.flow`` — the flow analyzer CLI."""

from .driver import main

if __name__ == "__main__":
    raise SystemExit(main())
