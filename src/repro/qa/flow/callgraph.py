"""Whole-program model: modules, classes, functions, resolved calls.

:class:`Project` parses every analyzed file once and builds the index
the flow rules share — per-module import tables (with relative imports
resolved against the package layout), class registries with
cross-module MRO, module-level string-frozenset constants (allowlists),
and a *resolved-call* oracle good enough for the repo's idiom:

- ``f(...)`` — module-local function or ``from .mod import f``;
- ``alias.f(...)`` — ``alias`` names an imported module;
- ``self.m(...)`` — method lookup over the enclosing class's MRO;
- ``var.m(...)`` — ``var`` is a local assigned ``var = ClassName(...)``
  (or an alias of such a local / of a typed ``self`` attribute);
- ``self.X.m(...)`` — ``self.X`` was assigned a value of known class
  type in any method of the class;
- ``ClassName(...)`` — resolves to ``ClassName.__init__``.

Calls through duck-typed values (``clock.kernels.sweep_hits`` and
friends) are *not* resolvable and the rules treat them as opaque; that
is a documented precision limit, not an error.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from .cfg import CFG, build_cfg

__all__ = ["Project", "ModuleInfo", "ClassInfo", "FunctionInfo"]


def module_name_for(path: str) -> str:
    """Dotted module name for a repo-relative file path.

    ``src/repro/shard/workers.py`` -> ``repro.shard.workers``;
    ``__init__.py`` maps to its package. Files outside ``src/`` (tests,
    benchmarks, fixtures) get a name from their own path so they stay
    addressable without colliding with the library.
    """
    parts = list(Path(path).parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class FunctionInfo:
    """One function or method, with its lazily-built CFG."""

    def __init__(self, module: "ModuleInfo", qualname: str,
                 node: ast.AST, cls: Optional["ClassInfo"]) -> None:
        self.module = module
        self.qualname = qualname
        self.node = node
        self.cls = cls
        self._cfg: Optional[CFG] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def key(self) -> str:
        return f"{self.module.name}:{self.qualname}"

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FunctionInfo {self.key}>"


class ClassInfo:
    """One class: methods, base names, and inferred ``self.X`` types."""

    def __init__(self, module: "ModuleInfo", name: str,
                 node: ast.ClassDef) -> None:
        self.module = module
        self.name = name
        self.node = node
        self.methods: Dict[str, FunctionInfo] = {}
        #: base-class expressions as dotted strings (unresolved)
        self.bases: List[str] = []
        #: attr name -> class dotted name, from ``self.X = ClassName(..)``
        self.attr_types: Dict[str, str] = {}
        self._attrs_inferred = False
        #: string-constant class attributes (``kind = "serial"``)
        self.str_attrs: Dict[str, str] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ClassInfo {self.module.name}:{self.name}>"


class ModuleInfo:
    """One parsed module and its name-resolution tables."""

    def __init__(self, path: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.name = module_name_for(path)
        self.is_package = Path(path).name == "__init__.py"
        #: local name -> dotted target (module, or module.attr)
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module-level ``NAME = frozenset({"a", ...})`` constants
        self.frozensets: Dict[str, FrozenSet[str]] = {}

    @property
    def package(self) -> str:
        return self.name.rsplit(".", 1)[0] if "." in self.name else ""

    def resolve_relative(self, level: int, target: str) -> str:
        """Absolute dotted name of a ``from ...target import`` source."""
        if level == 0:
            return target
        base = self.name.split(".")
        # level 1 = current package; each extra level strips one more.
        # A package __init__ *is* its package, so strip one less.
        strip = level - 1 if self.is_package else level
        base = base[:len(base) - strip] if strip <= len(base) else []
        if target:
            base.append(target)
        return ".".join(base)


_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _const_frozenset(node: ast.expr) -> Optional[FrozenSet[str]]:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "frozenset" and len(node.args) == 1
            and not node.keywords):
        return None
    arg = node.args[0]
    elts: List[ast.expr]
    if isinstance(arg, (ast.Set, ast.Tuple, ast.List)):
        elts = list(arg.elts)
    else:
        return None
    out = []
    for elt in elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append(elt.value)
    return frozenset(out)


def _call_class_name(node: ast.expr) -> Optional[str]:
    """Dotted callee name if ``node`` is ``Name(...)``/``a.b.Name(...)``."""
    if not isinstance(node, ast.Call):
        return None
    parts: List[str] = []
    func: ast.expr = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    parts.append(func.id)
    return ".".join(reversed(parts))


class Project:
    """Index over every analyzed module, with call resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self._local_types: Dict[int, Dict[str, str]] = {}

    # -- construction --------------------------------------------------

    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        mod = ModuleInfo(path, tree)
        self._index_imports(mod)
        self._index_toplevel(mod)
        self.modules[mod.name] = mod
        self.by_path[path] = mod
        return mod

    def _index_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    mod.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                source = mod.resolve_relative(node.level, node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{source}.{alias.name}" \
                        if source else alias.name

    def _index_toplevel(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, _FUNC_TYPES):
                mod.functions[node.name] = FunctionInfo(
                    mod, node.name, node, None)
            elif isinstance(node, ast.ClassDef):
                mod.classes[node.name] = self._index_class(mod, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                fs = _const_frozenset(node.value)
                if fs is not None:
                    mod.frozensets[node.targets[0].id] = fs

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        cls = ClassInfo(mod, node.name, node)
        for base in node.bases:
            parts: List[str] = []
            cur: ast.expr = base
            while isinstance(cur, ast.Attribute):
                parts.append(cur.attr)
                cur = cur.value
            if isinstance(cur, ast.Name):
                parts.append(cur.id)
                cls.bases.append(".".join(reversed(parts)))
        for item in node.body:
            if isinstance(item, _FUNC_TYPES):
                cls.methods[item.name] = FunctionInfo(
                    mod, f"{node.name}.{item.name}", item, cls)
            elif isinstance(item, ast.Assign) and len(item.targets) == 1 \
                    and isinstance(item.targets[0], ast.Name) \
                    and isinstance(item.value, ast.Constant) \
                    and isinstance(item.value.value, str):
                cls.str_attrs[item.targets[0].id] = item.value.value
        return cls

    def attr_types(self, cls: ClassInfo) -> Dict[str, str]:
        """``self.X`` attr name -> class dotted name, inferred lazily.

        Deferred until first use so the whole project is indexed before
        any cross-module class names are resolved (eager inference at
        ``add_module`` time would miss classes added later).
        """
        if cls._attrs_inferred:
            return cls.attr_types
        cls._attrs_inferred = True
        for method in cls.methods.values():
            # Direct locals only (``v = ClassName(...)``) — resolving
            # aliases here would recurse back into this inference.
            direct: Dict[str, str] = {}
            for sub in ast.walk(method.node):
                if not (isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1):
                    continue
                target = sub.targets[0]
                name = _call_class_name(sub.value)
                if name is not None and self.resolve_class(
                        cls.module, name) is not None:
                    if isinstance(target, ast.Name):
                        direct[target.id] = name
                    elif isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        cls.attr_types.setdefault(target.attr, name)
            for sub in ast.walk(method.node):
                if not (isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1):
                    continue
                target = sub.targets[0]
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self" \
                        and isinstance(sub.value, ast.Name) \
                        and sub.value.id in direct:
                    cls.attr_types.setdefault(target.attr,
                                              direct[sub.value.id])
        return cls.attr_types

    # -- name resolution -----------------------------------------------

    def _resolve_qualified(self, full: str,
                           depth: int = 0) -> "Optional[object]":
        """Resolve ``pkg.mod.Thing`` to a ClassInfo or FunctionInfo.

        Follows re-export chains (``from .shadow import ShadowAuditor``
        in a package ``__init__``) a few levels deep.
        """
        if depth > 5:
            return None
        owner, _, name = full.rpartition(".")
        owner_mod = self.modules.get(owner)
        if owner_mod is None:
            return None
        if name in owner_mod.classes:
            return owner_mod.classes[name]
        if name in owner_mod.functions:
            return owner_mod.functions[name]
        reexport = owner_mod.imports.get(name)
        if reexport is not None and reexport != full:
            return self._resolve_qualified(reexport, depth + 1)
        return None

    def resolve_class(self, mod: ModuleInfo,
                      dotted: str) -> Optional[ClassInfo]:
        """Resolve a dotted class reference as seen from ``mod``."""
        head, _, rest = dotted.partition(".")
        if not rest and head in mod.classes:
            return mod.classes[head]
        target = mod.imports.get(head)
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        resolved = self._resolve_qualified(full)
        return resolved if isinstance(resolved, ClassInfo) else None

    def mro(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """Depth-first method resolution order (cycle-safe)."""
        seen = set()
        stack = [cls]
        while stack:
            cur = stack.pop(0)
            if id(cur) in seen:
                continue
            seen.add(id(cur))
            yield cur
            for base in cur.bases:
                resolved = self.resolve_class(cur.module, base)
                if resolved is not None:
                    stack.append(resolved)

    def lookup_method(self, cls: ClassInfo,
                      name: str) -> Optional[FunctionInfo]:
        for owner in self.mro(cls):
            if name in owner.methods:
                return owner.methods[name]
        return None

    def class_str_attr(self, cls: ClassInfo, name: str) -> Optional[str]:
        for owner in self.mro(cls):
            if name in owner.str_attrs:
                return owner.str_attrs[name]
        return None

    def frozenset_named(self, mod: ModuleInfo,
                        dotted: str) -> Optional[FrozenSet[str]]:
        """A module-level string frozenset visible from ``mod``."""
        if dotted in mod.frozensets:
            return mod.frozensets[dotted]
        target = mod.imports.get(dotted)
        if target is not None:
            owner, _, name = target.rpartition(".")
            owner_mod = self.modules.get(owner)
            if owner_mod is not None:
                return owner_mod.frozensets.get(name)
        return None

    # -- call resolution -----------------------------------------------

    def local_class_names(self, func: FunctionInfo) -> Dict[str, str]:
        """Local var -> dotted class name (``v = ClassName(...)``)."""
        cached = self._local_types.get(id(func.node))
        if cached is not None:
            return cached
        types: Dict[str, str] = {}
        aliases: List[Tuple[str, str]] = []
        for node in ast.walk(func.node):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            target = node.targets[0].id
            name = _call_class_name(node.value)
            if name is not None and self.resolve_class(
                    func.module, name) is not None:
                types[target] = name
                continue
            # ``v = self.X`` / ``v = other_local`` aliases.
            if isinstance(node.value, ast.Attribute) \
                    and isinstance(node.value.value, ast.Name) \
                    and node.value.value.id == "self" \
                    and func.cls is not None:
                attr_type = self.attr_types(func.cls).get(node.value.attr)
                if attr_type is not None:
                    types[target] = attr_type
            elif isinstance(node.value, ast.Name):
                aliases.append((target, node.value.id))
        for target, source in aliases:
            if source in types:
                types.setdefault(target, types[source])
        self._local_types[id(func.node)] = types
        return types

    def resolve_call(self, caller: FunctionInfo,
                     call: ast.Call) -> Optional[FunctionInfo]:
        """Best-effort static resolution of one call site."""
        func = call.func
        mod = caller.module

        if isinstance(func, ast.Name):
            name = func.id
            if name in mod.functions:
                return mod.functions[name]
            cls = self.resolve_class(mod, name)
            if cls is not None:
                return self.lookup_method(cls, "__init__")
            target = mod.imports.get(name)
            if target is not None:
                owner, _, fn = target.rpartition(".")
                owner_mod = self.modules.get(owner)
                if owner_mod is not None:
                    if fn in owner_mod.functions:
                        return owner_mod.functions[fn]
                    if fn in owner_mod.classes:
                        return self.lookup_method(
                            owner_mod.classes[fn], "__init__")
            return None

        if not isinstance(func, ast.Attribute):
            return None
        method = func.attr
        base = func.value

        if isinstance(base, ast.Name):
            if base.id == "self" and caller.cls is not None:
                return self.lookup_method(caller.cls, method)
            # Module alias: ``helpers.f(...)``.
            target = mod.imports.get(base.id)
            if target is not None:
                owner_mod = self.modules.get(target)
                if owner_mod is not None:
                    if method in owner_mod.functions:
                        return owner_mod.functions[method]
                    if method in owner_mod.classes:
                        return self.lookup_method(
                            owner_mod.classes[method], "__init__")
            # Typed local: ``v = ClassName(...); v.m(...)``.
            local = self.local_class_names(caller).get(base.id)
            if local is not None:
                cls = self.resolve_class(mod, local)
                if cls is not None:
                    return self.lookup_method(cls, method)
            return None

        # ``self.X.m(...)`` with a known attr type.
        if isinstance(base, ast.Attribute) \
                and isinstance(base.value, ast.Name) \
                and base.value.id == "self" and caller.cls is not None:
            attr_type = None
            for owner in self.mro(caller.cls):
                owner_attrs = self.attr_types(owner)
                if base.attr in owner_attrs:
                    attr_type = (owner.module, owner_attrs[base.attr])
                    break
            if attr_type is not None:
                cls = self.resolve_class(attr_type[0], attr_type[1])
                if cls is not None:
                    return self.lookup_method(cls, method)
        return None

    # -- iteration -----------------------------------------------------

    def functions(self) -> Iterator[FunctionInfo]:
        for mod in self.modules.values():
            yield from mod.functions.values()
            for cls in mod.classes.values():
                yield from cls.methods.values()

    def functions_in(self, mod: ModuleInfo) -> Iterator[FunctionInfo]:
        yield from mod.functions.values()
        for cls in mod.classes.values():
            yield from cls.methods.values()
