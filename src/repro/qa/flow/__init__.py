"""Inter-procedural dataflow analysis for the Clock-sketch repo.

The flow analyzer complements sketch-lint's per-statement rules with
whole-program passes: per-function control-flow graphs with guard
facts and dominators (:mod:`repro.qa.flow.cfg`), a cross-module call
graph (:mod:`repro.qa.flow.callgraph`), and four rules
(:mod:`repro.qa.flow.rules`):

- **SK108** lock dominance over wrapped-sketch and shard-replica state
  (deepens and replaces sketch-lint's SK104);
- **SK109** fault-path completeness in ``shard/``, ``engine/`` and
  ``serve/``;
- **SK110** kernel-backend purity (no obs/env/globals/I-O,
  interprocedurally);
- **SK111** ``_obs.ENABLED`` gating of hot-path instrumentation.

Run it as ``python -m repro.qa flow src tests`` (see
:mod:`repro.qa.flow.driver` for suppressions and baselines, and
``docs/qa.md`` for the rule catalog).
"""

from __future__ import annotations

from .callgraph import Project
from .cfg import CFG, build_cfg
from .driver import analyze_paths, analyze_source, load_project, main
from .rules import FLOW_RULE_IDS, run_flow_rules

__all__ = [
    "CFG",
    "FLOW_RULE_IDS",
    "Project",
    "analyze_paths",
    "analyze_source",
    "build_cfg",
    "load_project",
    "main",
    "run_flow_rules",
]
