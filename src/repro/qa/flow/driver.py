"""Flow-analyzer driver: project loading, suppressions, baseline, CLI.

::

    python -m repro.qa flow src tests
    python -m repro.qa flow --write-baseline flow-baseline.json src
    python -m repro.qa flow --baseline flow-baseline.json src tests

Exit status mirrors sketch-lint: 0 clean, 1 findings, 2 usage or parse
error. Suppression comments are shared with sketch-lint (same
``# sketchlint: <token>`` syntax, same placement rules); the flow
tokens are ``lock-ok`` (SK108 — also accepted under its historical
spellings ``lockfree-ok`` / ``SK104``), ``fault-ok`` (SK109),
``impure-ok`` (SK110), and ``obs-gate-ok`` (SK111).

A *baseline* file is a JSON list of ``"path:line:rule"`` strings;
findings matching an entry are reported as baselined (and do not fail
the run), which lets the analyzer land on a tree with known debt
without freezing the rules themselves.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple

from ..lint import _suppressed_lines, iter_python_files
from ..rules import Finding
from .callgraph import Project
from .rules import run_flow_rules

__all__ = ["analyze_paths", "analyze_source", "load_project", "main"]


def load_project(paths: Sequence["Path | str"],
                 ) -> Tuple[Project, Dict[str, Tuple[str, ast.Module]]]:
    """Parse every Python file under ``paths`` into one Project.

    Returns the project plus a map ``path -> (source, tree)`` for
    suppression filtering. Raises :class:`SyntaxError` on a file that
    does not parse (annotated with the offending filename).
    """
    project = Project()
    parsed: Dict[str, Tuple[str, ast.Module]] = {}
    for file in iter_python_files(paths):
        path = str(file)
        source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=path)
        project.add_module(path, tree)
        parsed[path] = (source, tree)
    return project, parsed


def _filter_suppressed(findings: List[Finding],
                       parsed: Dict[str, Tuple[str, ast.Module]],
                       ) -> List[Finding]:
    suppressed_by_path: Dict[str, Dict[str, Set[int]]] = {}
    out = []
    for finding in findings:
        entry = parsed.get(finding.path)
        if entry is None:
            out.append(finding)
            continue
        table = suppressed_by_path.get(finding.path)
        if table is None:
            table = _suppressed_lines(*entry)
            suppressed_by_path[finding.path] = table
        if finding.line not in table.get(finding.rule, ()):
            out.append(finding)
    return out


def analyze_paths(paths: Sequence["Path | str"], *,
                  respect_suppressions: bool = True) -> List[Finding]:
    """Run the flow rules over every Python file under ``paths``."""
    project, parsed = load_project(paths)
    findings = run_flow_rules(project)
    if respect_suppressions:
        findings = _filter_suppressed(findings, parsed)
    return findings


def analyze_source(source: str, path: str) -> List[Finding]:
    """Analyze one module's source under a (possibly virtual) path.

    The single-module variant used by the fixture tests — the whole
    "project" is this module, so interprocedural reasoning stays within
    it.
    """
    tree = ast.parse(source, filename=path)
    project = Project()
    project.add_module(path, tree)
    findings = [f for f in run_flow_rules(project) if f.path == path]
    table = _suppressed_lines(source, tree)
    return [f for f in findings
            if f.line not in table.get(f.rule, ())]


def _baseline_key(finding: Finding) -> str:
    return f"{finding.path}:{finding.line}:{finding.rule}"


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.qa flow",
        description="Clock-sketch inter-procedural flow analyzer "
                    "(rules SK108-SK111).",
    )
    parser.add_argument("paths", nargs="+",
                        help="files or directories to analyze")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the per-finding listing")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline of accepted findings "
                             '("path:line:rule" entries)')
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the current findings to FILE as a "
                             "baseline and exit 0")
    args = parser.parse_args(argv)

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(f"sketchflow: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    try:
        findings = analyze_paths(args.paths)
    except SyntaxError as exc:
        print(f"sketchflow: parse error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        payload = sorted(_baseline_key(f) for f in findings)
        Path(args.write_baseline).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"sketchflow: baseline of {len(payload)} finding(s) "
              f"written to {args.write_baseline}")
        return 0

    baseline: Set[str] = set()
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"sketchflow: no such baseline: {args.baseline}",
                  file=sys.stderr)
            return 2
        baseline = set(json.loads(
            baseline_path.read_text(encoding="utf-8")))

    fresh = [f for f in findings if _baseline_key(f) not in baseline]
    known = len(findings) - len(fresh)
    if not args.quiet:
        for finding in fresh:
            print(finding.format())
    files = len(set(iter_python_files(args.paths)))
    status = "clean" if not fresh else f"{len(fresh)} finding(s)"
    extra = f", {known} baselined" if known else ""
    print(f"sketchflow: {files} file(s) analyzed, {status}{extra}")
    return 1 if fresh else 0


if __name__ == "__main__":
    raise SystemExit(main())
