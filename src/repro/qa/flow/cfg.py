"""Per-function control-flow graphs with guard facts and dominators.

The flow analyzer's rules reason about *paths*, not statements: is this
attribute read dominated by a lock acquisition, is this recorder call
guarded by the ``_obs.ENABLED`` switchboard on every path that reaches
it, is this dynamic ``getattr`` protected by an allowlist membership
test. :func:`build_cfg` lowers one ``ast`` function into basic blocks
with three kinds of path information:

- **edges** carry *guard facts*: crossing the true edge of
  ``if _obs.ENABLED:`` establishes the fact ``obs-enabled``; crossing
  the false edge of ``if name not in _CONFIG:`` establishes the fact
  ``in:name:_CONFIG``. Facts are must-information — a block's incoming
  fact set is the intersection over its predecessor edges — so a fact
  holds at a statement only when it holds on *every* path from the
  function entry (``and``/``or`` conditions contribute the operand
  facts their short-circuit semantics actually guarantee).
- **with-contexts**: every block records the lexical ``with`` items it
  executes under (``with self._lock:`` and local aliases of it), which
  is how lock-dominance recognises a guarded region.
- **dominators** over blocks, refined to statement granularity by
  in-block ordering.

The builder is deliberately conservative where precision is not needed:
``try`` bodies may jump to their handlers from any statement, loop
bodies do not dominate loop exits, and facts are never killed (the
analyzed guards — the obs switchboard, frozen config allowlists — are
not reassigned inside the functions the rules inspect).
"""

from __future__ import annotations

import ast
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = ["CFG", "Block", "build_cfg", "expr_key"]

#: The guard fact established by a truthy observability switchboard test.
OBS_ENABLED_FACT = "obs-enabled"


def expr_key(node: ast.expr) -> Optional[str]:
    """Dotted key of a plain name/attribute chain (else None).

    ``self._lock`` -> ``"self._lock"``; used both as a with-context
    descriptor and to name membership-test collections in guard facts.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_enabled_expr(node: ast.expr) -> bool:
    """A truthy test of the obs switchboard: ``*.ENABLED`` / ``ENABLED``."""
    if isinstance(node, ast.Attribute):
        return node.attr == "ENABLED"
    if isinstance(node, ast.Name):
        return node.id == "ENABLED"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        return name == "enabled"
    return False


def _atom_facts(node: ast.expr) -> FrozenSet[str]:
    """Facts established when ``node`` (no boolean structure) is truthy."""
    facts: Set[str] = set()
    if _is_enabled_expr(node):
        facts.add(OBS_ENABLED_FACT)
    if isinstance(node, ast.Compare) and len(node.ops) == 1 \
            and isinstance(node.ops[0], ast.In) \
            and isinstance(node.left, ast.Name):
        coll = expr_key(node.comparators[0])
        if coll is not None:
            facts.add(f"in:{node.left.id}:{coll}")
    return frozenset(facts)


def facts_if_true(node: ast.expr) -> FrozenSet[str]:
    """Facts guaranteed on the true edge of a condition."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return facts_if_false(node.operand)
    if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
        out: Set[str] = set()
        for value in node.values:
            out |= facts_if_true(value)
        return frozenset(out)
    return _atom_facts(node)


def facts_if_false(node: ast.expr) -> FrozenSet[str]:
    """Facts guaranteed on the false edge of a condition.

    A falsy ``or`` means every operand was falsy, so each operand's
    false-facts hold; ``x not in S`` being falsy means ``x in S``.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
        return facts_if_true(node.operand)
    if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
        out: Set[str] = set()
        for value in node.values:
            out |= facts_if_false(value)
        return frozenset(out)
    if isinstance(node, ast.Compare) and len(node.ops) == 1 \
            and isinstance(node.ops[0], ast.NotIn) \
            and isinstance(node.left, ast.Name):
        coll = expr_key(node.comparators[0])
        if coll is not None:
            return frozenset({f"in:{node.left.id}:{coll}"})
    return frozenset()


class Block:
    """One basic block: stored statements plus labelled successor edges."""

    __slots__ = ("bid", "stmts", "succ", "ctx")

    def __init__(self, bid: int, ctx: Tuple[str, ...]) -> None:
        self.bid = bid
        self.stmts: List[ast.AST] = []
        #: ``(successor, facts established by taking this edge)``
        self.succ: List[Tuple["Block", FrozenSet[str]]] = []
        #: lexical ``with`` context keys active throughout the block
        self.ctx: FrozenSet[str] = frozenset(ctx)


_EMPTY: FrozenSet[str] = frozenset()


class CFG:
    """The control-flow graph of one function, with derived analyses."""

    def __init__(self, func: ast.AST, blocks: List[Block],
                 entry: Block) -> None:
        self.func = func
        self.blocks = blocks
        self.entry = entry
        #: id(ast node) -> (block index, statement index) for every
        #: stored statement and every expression inside one.
        self._where: Dict[int, Tuple[int, int]] = {}
        for block in blocks:
            for si, stmt in enumerate(block.stmts):
                for sub in ast.walk(stmt):
                    self._where.setdefault(id(sub), (block.bid, si))
        self._facts: Optional[List[Optional[FrozenSet[str]]]] = None
        self._dom: Optional[List[Set[int]]] = None

    # -- location ------------------------------------------------------

    def locate(self, node: ast.AST) -> Optional[Tuple[int, int]]:
        """(block, statement) position of a node, if it was stored."""
        return self._where.get(id(node))

    def context_of(self, node: ast.AST) -> FrozenSet[str]:
        """Lexical with-context keys active at a node's statement."""
        where = self.locate(node)
        if where is None:
            return _EMPTY
        return self.blocks[where[0]].ctx

    # -- guard facts ---------------------------------------------------

    def facts_at(self, node: ast.AST) -> FrozenSet[str]:
        """Guard facts that hold on every path reaching a node."""
        if self._facts is None:
            self._facts = self._compute_facts()
        where = self.locate(node)
        if where is None:
            return _EMPTY
        facts = self._facts[where[0]]
        return facts if facts is not None else _EMPTY

    def _compute_facts(self) -> List[Optional[FrozenSet[str]]]:
        # Forward must-analysis: IN[b] = intersection over predecessor
        # edges of (IN[pred] | edge facts); None is TOP (unreached).
        facts: List[Optional[FrozenSet[str]]] = [None] * len(self.blocks)
        facts[self.entry.bid] = _EMPTY
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                src = facts[block.bid]
                if src is None:
                    continue
                for succ, edge in block.succ:
                    incoming = src | edge
                    cur = facts[succ.bid]
                    new = incoming if cur is None else (cur & incoming)
                    if new != cur:
                        facts[succ.bid] = new
                        changed = True
        return facts

    # -- dominance -----------------------------------------------------

    def _dominators(self) -> List[Set[int]]:
        if self._dom is not None:
            return self._dom
        n = len(self.blocks)
        preds: List[List[int]] = [[] for _ in range(n)]
        for block in self.blocks:
            for succ, _ in block.succ:
                preds[succ.bid].append(block.bid)
        full = set(range(n))
        dom: List[Set[int]] = [set(full) for _ in range(n)]
        dom[self.entry.bid] = {self.entry.bid}
        changed = True
        while changed:
            changed = False
            for b in range(n):
                if b == self.entry.bid:
                    continue
                reached = [dom[p] for p in preds[b]]
                new = set.intersection(*reached) if reached else set(full)
                new = new | {b}
                if new != dom[b]:
                    dom[b] = new
                    changed = True
        self._dom = dom
        return dom

    def dominates(self, a: ast.AST, b: ast.AST) -> bool:
        """Does statement-of-``a`` dominate statement-of-``b``?

        Statement granularity: strict block dominance, or same block
        with ``a`` at an earlier (or equal) statement index.
        """
        wa, wb = self.locate(a), self.locate(b)
        if wa is None or wb is None:
            return False
        if wa[0] == wb[0]:
            return wa[1] <= wb[1]
        return wa[0] in self._dominators()[wb[0]]


class _LoopCtx:
    __slots__ = ("head", "exit")

    def __init__(self, head: Block, exit_: Block) -> None:
        self.head = head
        self.exit = exit_


class _Builder:
    def __init__(self, lock_aliases: FrozenSet[str]) -> None:
        self.blocks: List[Block] = []
        self.ctx: Tuple[str, ...] = ()
        #: local names aliasing ``self._lock`` (``lock = self._lock``);
        #: ``with lock:`` then counts as the canonical lock context.
        self.lock_aliases = lock_aliases

    def new_block(self) -> Block:
        block = Block(len(self.blocks), self.ctx)
        self.blocks.append(block)
        return block

    @staticmethod
    def edge(a: Block, b: Block, facts: FrozenSet[str] = _EMPTY) -> None:
        a.succ.append((b, facts))

    def seq(self, stmts: List[ast.stmt], cur: Optional[Block],
            loop: Optional[_LoopCtx]) -> Optional[Block]:
        for stmt in stmts:
            if cur is None:
                # Unreachable code after return/raise/break — still
                # lower it so its statements get located, but keep it
                # disconnected (no incoming edges: facts stay TOP).
                cur = self.new_block()
            cur = self.stmt(stmt, cur, loop)
        return cur

    def stmt(self, node: ast.stmt, cur: Block,
             loop: Optional[_LoopCtx]) -> Optional[Block]:
        if isinstance(node, ast.If):
            cur.stmts.append(node.test)
            true_b = self.new_block()
            false_b = self.new_block()
            self.edge(cur, true_b, facts_if_true(node.test))
            self.edge(cur, false_b, facts_if_false(node.test))
            t_end = self.seq(node.body, true_b, loop)
            f_end = self.seq(node.orelse, false_b, loop)
            if t_end is None and f_end is None:
                return None
            join = self.new_block()
            if t_end is not None:
                self.edge(t_end, join)
            if f_end is not None:
                self.edge(f_end, join)
            return join

        if isinstance(node, ast.While):
            head = self.new_block()
            self.edge(cur, head)
            head.stmts.append(node.test)
            body = self.new_block()
            exit_ = self.new_block()
            self.edge(head, body, facts_if_true(node.test))
            self.edge(head, exit_, facts_if_false(node.test))
            b_end = self.seq(node.body, body, _LoopCtx(head, exit_))
            if b_end is not None:
                self.edge(b_end, head)
            return self.seq(node.orelse, exit_, loop)

        if isinstance(node, (ast.For, ast.AsyncFor)):
            cur.stmts.append(node.iter)
            cur.stmts.append(node.target)
            head = self.new_block()
            self.edge(cur, head)
            body = self.new_block()
            exit_ = self.new_block()
            self.edge(head, body)
            self.edge(head, exit_)
            b_end = self.seq(node.body, body, _LoopCtx(head, exit_))
            if b_end is not None:
                self.edge(b_end, head)
            return self.seq(node.orelse, exit_, loop)

        if isinstance(node, (ast.With, ast.AsyncWith)):
            keys: List[str] = []
            for item in node.items:
                cur.stmts.append(item.context_expr)
                key = expr_key(item.context_expr)
                if key is not None:
                    if key in self.lock_aliases:
                        key = "self._lock"
                    keys.append(key)
            outer_ctx = self.ctx
            self.ctx = outer_ctx + tuple(keys)
            inner = self.new_block()
            self.edge(cur, inner)
            end = self.seq(node.body, inner, loop)
            self.ctx = outer_ctx
            if end is None:
                return None
            after = self.new_block()
            self.edge(end, after)
            return after

        if isinstance(node, ast.Try):
            body_start = self.new_block()
            self.edge(cur, body_start)
            first = len(self.blocks) - 1
            b_end = self.seq(node.body, body_start, loop)
            body_slice = self.blocks[first:]
            ends: List[Block] = []
            for handler in node.handlers:
                h_block = self.new_block()
                h_block.stmts.append(handler)
                # The exception may surface at any point of the body.
                for block in body_slice:
                    self.edge(block, h_block)
                h_end = self.seq(handler.body, h_block, loop)
                if h_end is not None:
                    ends.append(h_end)
            if b_end is not None:
                b_end = self.seq(node.orelse, b_end, loop)
            if b_end is not None:
                ends.append(b_end)
            if not ends and not node.finalbody:
                return None
            join = self.new_block()
            for end in ends:
                self.edge(end, join)
            return self.seq(node.finalbody, join, loop)

        if isinstance(node, (ast.Return, ast.Raise)):
            cur.stmts.append(node)
            return None
        if isinstance(node, ast.Break):
            if loop is not None:
                self.edge(cur, loop.exit)
            return None
        if isinstance(node, ast.Continue):
            if loop is not None:
                self.edge(cur, loop.head)
            return None

        # Leaf statements — including nested def/class statements, whose
        # bodies the rules treat lexically rather than via this CFG.
        cur.stmts.append(node)
        return cur


def _lock_aliases(func: ast.AST) -> FrozenSet[str]:
    aliases: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) \
                and isinstance(node.value, ast.Attribute) \
                and expr_key(node.value) == "self._lock":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.add(target.id)
    return frozenset(aliases)


def build_cfg(func: Any) -> CFG:
    """Build the CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    builder = _Builder(_lock_aliases(func))
    entry = builder.new_block()
    builder.seq(list(func.body), entry, None)
    return CFG(func, builder.blocks, entry)
