"""The four flow rules: SK108-SK111.

Each pass runs over a :class:`~repro.qa.flow.callgraph.Project` and
returns :class:`~repro.qa.rules.Finding` records (the same type
sketch-lint emits, so suppression and reporting machinery is shared).

``SK108`` **lock dominance** — accesses to a lock-wrapper's wrapped
sketch must be dominated by ``self._lock`` (directly, through
``_guarded``, or through a callable handed to ``_guarded``); reads of
shard replica state must follow a quiescence point (``drain`` /
``barrier`` / ``join``) or run in a single-owner context (``__init__``,
a ``kind = "serial"`` router, a worker-process function). Dynamic
``getattr`` forwards are only clean under a proven membership test
against a module-level frozen string allowlist. Replaces SK104, whose
suppression tokens now map here.

``SK109`` **fault-path completeness** — in ``shard/``, ``engine/``
and ``serve/``
no bare ``except``, no silently swallowed exceptions outside shutdown
paths, and no overbroad ``except Exception`` that neither re-raises nor
translates into the typed ``repro.errors`` family.

``SK110`` **kernel purity** — functions reachable from a
``repro/kernels/`` backend module may not touch ``repro.obs``,
``os.environ``, module globals, or perform I/O. Interprocedural over
resolved calls; the selection layer (``kernels/__init__.py``) is the
one sanctioned impure module and is excluded.

``SK111`` **obs gating** — enabled-mode instrumentation (``record_*``
/ ``publish_*`` / ``sample_clock`` on the obs-runtime alias) reachable
from a public hot-path function must sit behind the ``_obs.ENABLED``
switchboard on every path. Taint propagates through unguarded resolved
calls; ``repro.obs.runtime`` itself (internally no-op-safe when
disabled) is not a taint source.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..rules import Finding
from .callgraph import ClassInfo, FunctionInfo, ModuleInfo, Project
from .cfg import OBS_ENABLED_FACT, expr_key

__all__ = ["FLOW_RULE_IDS", "FlowScope", "flow_scope_for_path",
           "run_flow_rules"]

FLOW_RULE_IDS = ("SK108", "SK109", "SK110", "SK111")

_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Replica attributes/methods that read or write shared mutable state
#: (clock cells, side arrays, temporal counters) — anything else on a
#: replica counts as immutable configuration.
_MUTABLE_REPLICA_ATTRS = frozenset({
    "clock", "timestamps", "counters", "values",
    "insert", "insert_many", "snapshot", "merge",
    "advance", "flush", "sync_state", "load_values",
    "_now", "_items_inserted", "items_inserted", "now",
})

#: Calls that establish quiescence: after one of these returns, every
#: worker has acknowledged its commands (or been joined), so parent-side
#: replica reads are race-free until the next dispatch.
_QUIESCENCE_CALLS = frozenset({"drain", "barrier", "join"})

#: Hot-path instrumentation recorders on the obs-runtime alias.
_RECORDER_PREFIXES = ("record_", "publish_")


class FlowScope:
    """Which flow rules apply to one module path."""

    __slots__ = ("shard_scope", "fault_scope", "kernel_scope", "hot_scope")

    def __init__(self, shard_scope: bool, fault_scope: bool,
                 kernel_scope: bool, hot_scope: bool) -> None:
        self.shard_scope = shard_scope
        self.fault_scope = fault_scope
        self.kernel_scope = kernel_scope
        self.hot_scope = hot_scope


def flow_scope_for_path(path: str) -> FlowScope:
    """Classify a repo-relative path for the flow rules."""
    pure = PurePosixPath(str(path).replace("\\", "/"))
    parts = set(pure.parts)
    name = pure.name
    in_repro = "repro" in parts
    return FlowScope(
        shard_scope="shard" in parts,
        fault_scope=("shard" in parts or "engine" in parts
                     or "serve" in parts),
        kernel_scope="kernels" in parts and name != "__init__.py",
        hot_scope=in_repro and (
            bool(parts & {"core", "engine", "shard", "hashing"})
            or name in ("concurrent.py", "monitor.py")
        ),
    )


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _is_single_owner(func: FunctionInfo, project: Project) -> bool:
    """Single-owner contexts where replica access cannot race workers."""
    if func.name == "__init__":
        return True
    if func.cls is None:
        return "worker" in func.name
    kind = project.class_str_attr(func.cls, "kind")
    return kind == "serial"


def _membership_ok(project: Project, mod: ModuleInfo, func: FunctionInfo,
                   call: ast.Call) -> bool:
    """Is a dynamic ``getattr(x, name)`` guarded by a frozen allowlist?

    Requires the fact ``in:name:COLL`` on every path to the call, with
    ``COLL`` resolving to a module-level frozenset of attribute names.
    """
    if len(call.args) != 2 or not isinstance(call.args[1], ast.Name):
        return False
    key = call.args[1].id
    for fact in func.cfg.facts_at(call):
        if not fact.startswith(f"in:{key}:"):
            continue
        coll = fact.split(":", 2)[2]
        if project.frozenset_named(mod, coll) is not None:
            return True
    return False


# ----------------------------------------------------------------------
# SK108 — lock dominance
# ----------------------------------------------------------------------

def _lock_class_wrapped_attrs(cls: ClassInfo) -> FrozenSet[str]:
    """Wrapped-state attributes of a lock class (else empty).

    A *lock class* assigns ``self._lock`` in ``__init__``; its wrapped
    state is whatever ``__init__`` stores from its first positional
    parameter (``self.sketch = sketch``).
    """
    init = cls.methods.get("__init__")
    if init is None:
        return frozenset()
    node = init.node
    assert isinstance(node, _FUNC_TYPES)
    args = node.args.args
    if len(args) < 2:
        return frozenset()
    first_param = args[1].arg
    has_lock = False
    wrapped: Set[str] = set()
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Assign):
            continue
        for target in sub.targets:
            if not (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                continue
            if target.attr == "_lock":
                has_lock = True
            elif isinstance(sub.value, ast.Name) \
                    and sub.value.id == first_param:
                wrapped.add(target.attr)
    return frozenset(wrapped) if has_lock else frozenset()


def _guarded_node_ids(func_node: ast.AST) -> Set[int]:
    """ids of AST nodes protected by being handed to ``self._guarded``.

    Covers expressions appearing inside the arguments of a
    ``self._guarded(...)`` call (including inline lambdas) and the
    bodies of nested functions whose *name* is passed to ``_guarded``.
    """
    protected: Set[int] = set()
    passed_names: Set[str] = set()
    for sub in ast.walk(func_node):
        if not (isinstance(sub, ast.Call)
                and expr_key(sub.func) == "self._guarded"):
            continue
        for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
            if isinstance(arg, ast.Name):
                passed_names.add(arg.id)
            for node in ast.walk(arg):
                protected.add(id(node))
    for sub in ast.walk(func_node):
        if isinstance(sub, _FUNC_TYPES) and sub.name in passed_names:
            for node in ast.walk(sub):
                protected.add(id(node))
    return protected


def _rule_sk108_wrapper(project: Project, mod: ModuleInfo,
                        findings: List[Finding]) -> None:
    for cls in mod.classes.values():
        wrapped = _lock_class_wrapped_attrs(cls)
        if not wrapped:
            continue
        for method in cls.methods.values():
            if method.name == "__init__":
                continue
            guarded = _guarded_node_ids(method.node)
            handled: Set[int] = set()
            cfg = method.cfg
            for sub in ast.walk(method.node):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Name) \
                        and sub.func.id == "getattr" and sub.args:
                    base = sub.args[0]
                    if isinstance(base, ast.Attribute) \
                            and isinstance(base.value, ast.Name) \
                            and base.value.id == "self" \
                            and base.attr in wrapped:
                        handled.add(id(base))
                        if id(sub) in guarded \
                                or "self._lock" in cfg.context_of(sub) \
                                or _membership_ok(project, mod, method, sub):
                            continue
                        findings.append(Finding(
                            "SK108", mod.path, sub.lineno,
                            f"dynamic `getattr(self.{base.attr}, ...)` "
                            "forward without lock or a module-level "
                            "frozenset allowlist membership test; racing "
                            "threads can observe mutable state unlocked",
                        ))
            for sub in ast.walk(method.node):
                if not (isinstance(sub, ast.Attribute)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and sub.attr in wrapped):
                    continue
                if id(sub) in handled or id(sub) in guarded:
                    continue
                if "self._lock" in cfg.context_of(sub):
                    continue
                findings.append(Finding(
                    "SK108", mod.path, sub.lineno,
                    f"access to wrapped `self.{sub.attr}` outside "
                    "`with self._lock` / `self._guarded(...)`; this "
                    "races the cleaner thread",
                ))


def _replica_rooted(node: ast.expr) -> bool:
    key = expr_key(node)
    return key is not None and (key == "replicas"
                                or key.endswith(".replicas"))


def _replica_elem_names(func_node: ast.AST,
                        rooted_locals: Set[str]) -> Set[str]:
    """Names bound to replica elements by loops/zip/enumerate."""

    def is_source(expr: ast.expr) -> bool:
        if _replica_rooted(expr):
            return True
        if isinstance(expr, ast.Subscript):
            return is_source(expr.value)
        if isinstance(expr, ast.Name) and expr.id in rooted_locals:
            return True
        if isinstance(expr, ast.Call) \
                and _call_name(expr) in ("zip", "enumerate"):
            return any(is_source(a) for a in expr.args)
        return False

    def target_names(target: ast.expr) -> Iterable[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from target_names(elt)

    elems: Set[str] = set()
    for sub in ast.walk(func_node):
        if isinstance(sub, (ast.For, ast.AsyncFor)) and is_source(sub.iter):
            elems.update(target_names(sub.target))
        elif isinstance(sub, ast.comprehension) and is_source(sub.iter):
            elems.update(target_names(sub.target))
    return elems


def _quiescent_before(func_node: ast.AST, line: int) -> bool:
    for sub in ast.walk(func_node):
        if isinstance(sub, ast.Call) and sub.lineno < line \
                and _call_name(sub) in _QUIESCENCE_CALLS:
            return True
    return False


def _call_sites_of(project: Project,
                   target: FunctionInfo) -> List[Tuple[FunctionInfo,
                                                       ast.Call]]:
    sites = []
    for func in project.functions():
        for sub in ast.walk(func.node):
            if isinstance(sub, ast.Call) \
                    and _call_name(sub) == target.name \
                    and project.resolve_call(func, sub) is target:
                sites.append((func, sub))
    return sites


def _rule_sk108_replicas(project: Project, mod: ModuleInfo,
                         findings: List[Finding]) -> None:
    for func in project.functions_in(mod):
        if _is_single_owner(func, project):
            continue
        rooted_locals: Set[str] = set()
        for sub in ast.walk(func.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name) \
                    and _replica_rooted(sub.value):
                rooted_locals.add(sub.targets[0].id)
        elems = _replica_elem_names(func.node, rooted_locals)

        def is_replica_expr(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Subscript):
                return _replica_rooted(expr.value) or (
                    isinstance(expr.value, ast.Name)
                    and expr.value.id in rooted_locals)
            return isinstance(expr, ast.Name) and expr.id in elems

        accesses: List[Tuple[int, str]] = []
        for sub in ast.walk(func.node):
            if isinstance(sub, ast.Attribute) \
                    and sub.attr in _MUTABLE_REPLICA_ATTRS \
                    and is_replica_expr(sub.value):
                accesses.append((sub.lineno, sub.attr))
            elif isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Name) \
                    and sub.func.id == "getattr" and sub.args \
                    and is_replica_expr(sub.args[0]):
                if not _membership_ok(project, mod, func, sub):
                    accesses.append((sub.lineno, "getattr"))
        if not accesses:
            continue
        for line, attr in accesses:
            if _quiescent_before(func.node, line):
                continue
            if func.name.startswith("_") and self_heals(
                    project, func):
                continue
            detail = ("dynamic `getattr` over a replica without a "
                      "frozenset allowlist membership test"
                      if attr == "getattr" else
                      f"replica `.{attr}` read without a preceding "
                      "quiescence point (drain/barrier/join)")
            findings.append(Finding(
                "SK108", mod.path, line,
                f"{detail}; worker processes may still be writing "
                "this shared-memory state",
            ))


def self_heals(project: Project, func: FunctionInfo) -> bool:
    """Every call site of a private helper sits after quiescence."""
    sites = _call_sites_of(project, func)
    if not sites:
        return False
    for caller, call in sites:
        if _is_single_owner(caller, project):
            continue
        if not _quiescent_before(caller.node, call.lineno):
            return False
    return True


def _rule_sk108(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for mod in project.modules.values():
        scope = flow_scope_for_path(mod.path)
        if "repro" in PurePosixPath(mod.path).parts:
            _rule_sk108_wrapper(project, mod, findings)
        if scope.shard_scope:
            _rule_sk108_replicas(project, mod, findings)
    return findings


# ----------------------------------------------------------------------
# SK109 — fault-path completeness
# ----------------------------------------------------------------------

def _is_shutdown_name(name: str) -> bool:
    stripped = name.lstrip("_")
    return stripped.startswith(("close", "stop", "shutdown")) \
        or name in ("__del__", "__exit__")


def _handler_names(type_node: Optional[ast.expr]) -> List[str]:
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) \
        else [type_node]
    names = []
    for node in nodes:
        key = expr_key(node)
        if key is not None:
            names.append(key.rsplit(".", 1)[-1])
    return names


def _is_pass_only(body: List[ast.stmt]) -> bool:
    real = [s for s in body
            if not (isinstance(s, ast.Expr)
                    and isinstance(s.value, ast.Constant)
                    and isinstance(s.value.value, str))]
    return all(isinstance(s, ast.Pass) for s in real)


def _raises_typed(project: Project, func: FunctionInfo,
                  node: ast.AST, depth: int = 0,
                  seen: Optional[Set[str]] = None) -> bool:
    """Does this subtree raise, or call something that (transitively)
    raises, a constructed exception?"""
    if seen is None:
        seen = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Raise):
            return True
        if depth < 3 and isinstance(sub, ast.Call):
            callee = project.resolve_call(func, sub)
            if callee is not None and callee.key not in seen:
                seen.add(callee.key)
                if _raises_typed(project, callee, callee.node,
                                 depth + 1, seen):
                    return True
    return False


def _uses_bound_name(handler: ast.ExceptHandler) -> bool:
    if handler.name is None:
        return False
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and sub.id == handler.name:
                return True
    return False


def _rule_sk109(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for mod in project.modules.values():
        if not flow_scope_for_path(mod.path).fault_scope:
            continue
        for func in project.functions_in(mod):
            shutdown = _is_shutdown_name(func.name)
            for sub in ast.walk(func.node):
                if not isinstance(sub, ast.ExceptHandler):
                    continue
                if sub.type is None:
                    findings.append(Finding(
                        "SK109", mod.path, sub.lineno,
                        "bare `except:` swallows every failure "
                        "(including worker death); catch a typed "
                        "exception from the repro.errors family",
                    ))
                    continue
                names = _handler_names(sub.type)
                if _is_pass_only(sub.body):
                    if shutdown:
                        continue
                    findings.append(Finding(
                        "SK109", mod.path, sub.lineno,
                        f"`except {'/'.join(names) or '...'}: pass` "
                        "silently drops a failure outside a shutdown "
                        "path; propagate it or translate it into the "
                        "typed repro.errors family",
                    ))
                    continue
                if not any(n in ("Exception", "BaseException")
                           for n in names):
                    continue
                if shutdown or func.name == "__del__":
                    continue
                if _uses_bound_name(sub):
                    continue
                body_mod = ast.Module(body=sub.body, type_ignores=[])
                if _raises_typed(project, func, body_mod):
                    continue
                findings.append(Finding(
                    "SK109", mod.path, sub.lineno,
                    f"overbroad `except {'/'.join(names)}` neither "
                    "re-raises nor translates into the typed "
                    "repro.errors family",
                ))
    return findings


# ----------------------------------------------------------------------
# SK110 — kernel purity
# ----------------------------------------------------------------------

def _obs_aliases(mod: ModuleInfo) -> Set[str]:
    aliases = set()
    for local, target in mod.imports.items():
        if target == "repro.obs" or target.endswith(".obs") \
                or target.endswith("obs.runtime") \
                or target.endswith("obs.trace") \
                or target.endswith("obs.perf") \
                or target.endswith("obs.perf.telemetry"):
            aliases.add(local)
    return aliases


def _purity_sink(func: FunctionInfo) -> Optional[Tuple[int, str]]:
    """First impurity in a function body, as ``(line, description)``."""
    aliases = _obs_aliases(func.module)
    for sub in ast.walk(func.node):
        if isinstance(sub, ast.Global):
            return sub.lineno, "`global` statement (module-state write)"
        if isinstance(sub, ast.Name) and sub.id in aliases:
            return sub.lineno, f"touches repro.obs (via `{sub.id}`)"
        if isinstance(sub, ast.Attribute):
            key = expr_key(sub)
            if key is None:
                continue
            if key == "os.environ" or key.startswith("os.environ."):
                return sub.lineno, "reads `os.environ`"
            if key.startswith(("sys.stdout", "sys.stderr")):
                return sub.lineno, f"touches `{key}`"
            if key.startswith("warnings."):
                return sub.lineno, f"calls `{key}`"
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                and sub.func.id in ("print", "open", "input"):
            return sub.lineno, f"performs I/O (`{sub.func.id}`)"
    return None


def _rule_sk110(project: Project) -> List[Finding]:
    sink_memo: Dict[str, Optional[Tuple[int, str]]] = {}

    def sink_of(func: FunctionInfo) -> Optional[Tuple[int, str]]:
        if func.key not in sink_memo:
            sink_memo[func.key] = _purity_sink(func)
        return sink_memo[func.key]

    findings: List[Finding] = []
    reported: Set[Tuple[str, int]] = set()
    for mod in project.modules.values():
        if not flow_scope_for_path(mod.path).kernel_scope:
            continue
        for root in project.functions_in(mod):
            # BFS from the kernel root through resolved calls.
            queue = [root]
            visited = {root.key}
            while queue:
                func = queue.pop(0)
                sink = sink_of(func)
                if sink is not None:
                    line, desc = sink
                    where = (func.module.path, line)
                    if where not in reported:
                        reported.add(where)
                        via = "" if func is root else \
                            f" (reached from `{root.qualname}`)"
                        findings.append(Finding(
                            "SK110", func.module.path, line,
                            f"kernel-impure: `{func.qualname}` {desc}"
                            f"{via}; kernel backends must stay free of "
                            "obs, environment, globals, and I/O",
                        ))
                    continue
                for sub in ast.walk(func.node):
                    if not isinstance(sub, ast.Call):
                        continue
                    callee = project.resolve_call(func, sub)
                    if callee is not None and callee.key not in visited:
                        visited.add(callee.key)
                        queue.append(callee)
    return findings


# ----------------------------------------------------------------------
# SK111 — obs gating
# ----------------------------------------------------------------------

def _is_recorder_call(mod: ModuleInfo, call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)):
        return False
    if func.value.id not in _obs_aliases(mod):
        return False
    return func.attr.startswith(_RECORDER_PREFIXES) \
        or func.attr == "sample_clock"


def _rule_sk111(project: Project) -> List[Finding]:
    # Step 1: direct sinks — unguarded recorder calls per function.
    sinks: Dict[str, Tuple[str, int, str]] = {}
    calls: Dict[str, List[Tuple[str, bool]]] = {}
    by_key: Dict[str, FunctionInfo] = {}
    for func in project.functions():
        by_key[func.key] = func
        mod = func.module
        if mod.name == "repro.obs.runtime":
            continue
        out_calls: List[Tuple[str, bool]] = []
        for sub in ast.walk(func.node):
            if not isinstance(sub, ast.Call):
                continue
            if _is_recorder_call(mod, sub):
                if func.key not in sinks \
                        and OBS_ENABLED_FACT not in func.cfg.facts_at(sub):
                    name = sub.func.attr \
                        if isinstance(sub.func, ast.Attribute) else "?"
                    sinks[func.key] = (mod.path, sub.lineno, name)
                continue
            callee = project.resolve_call(func, sub)
            if callee is not None:
                guarded = OBS_ENABLED_FACT in func.cfg.facts_at(sub)
                out_calls.append((callee.key, guarded))
        if out_calls:
            calls[func.key] = out_calls

    # Step 2: taint fixpoint through unguarded resolved calls.
    tainted: Dict[str, Tuple[str, int, str]] = dict(sinks)
    changed = True
    while changed:
        changed = False
        for key, out_calls in calls.items():
            if key in tainted:
                continue
            for callee_key, guarded in out_calls:
                if not guarded and callee_key in tainted:
                    tainted[key] = tainted[callee_key]
                    changed = True
                    break

    # Step 3: report the sink behind each tainted public hot-path root.
    findings: List[Finding] = []
    reported: Set[Tuple[str, int]] = set()
    for func in project.functions():
        if func.name.startswith("_"):
            continue
        if not flow_scope_for_path(func.module.path).hot_scope:
            continue
        taint = tainted.get(func.key)
        if taint is None:
            continue
        path, line, recorder = taint
        if (path, line) in reported:
            continue
        reported.add((path, line))
        via = "" if func.key in sinks else \
            f", reachable from hot path `{func.qualname}`"
        findings.append(Finding(
            "SK111", path, line,
            f"recorder `{recorder}` runs without an `_obs.ENABLED` "
            f"guard on some path{via}; enabled-mode instrumentation "
            "must stay behind the switchboard",
        ))
    return findings


# ----------------------------------------------------------------------
# Driver entry
# ----------------------------------------------------------------------

def run_flow_rules(project: Project) -> List[Finding]:
    """Run SK108-SK111 over a project; findings sorted by location."""
    findings: List[Finding] = []
    findings.extend(_rule_sk108(project))
    findings.extend(_rule_sk109(project))
    findings.extend(_rule_sk110(project))
    findings.extend(_rule_sk111(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
