"""The numba-JIT kernel backend (optional dependency, import-gated).

When numba is importable, :class:`NumbaKernelBackend` compiles the loop
kernels of :mod:`repro.kernels.loops` with ``numba.njit`` (nopython
mode, ``nogil=True`` — the kernels run over raw int64/float64 arrays
and release the GIL while sweeping). The kernels themselves are shared
with the pure-Python loop backend, so the JIT adds speed, never
semantics; compilation is lazy (first call per dtype signature), which
keeps import cheap.

When numba is absent, :data:`NUMBA_AVAILABLE` is False and the backend
selector in :mod:`repro.kernels` falls back to the numpy reference
backend — importing this module never raises.
"""

from __future__ import annotations

try:
    import numba  # type: ignore[import-not-found]

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised via the fallback test
    numba = None
    NUMBA_AVAILABLE = False

from .loops import LoopKernelBackend

__all__ = ["NUMBA_AVAILABLE", "NumbaKernelBackend"]


class NumbaKernelBackend(LoopKernelBackend):
    """Loop kernels compiled to machine code with ``numba.njit``.

    Raises :class:`ImportError` if numba is not installed — callers go
    through :func:`repro.kernels.resolve_backend`, which degrades to
    the numpy backend (with a single warning) instead.
    """

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        if not NUMBA_AVAILABLE:
            raise ImportError(
                "numba is not installed; use the 'numpy' kernel backend "
                "or `pip install numba`"
            )
        super().__init__(jit=numba.njit(cache=False, nogil=True))
