"""Pluggable kernel backends for the numeric hot path.

Everything per-cell and per-batch that the sketches compute — closed
form sweep-hit counting, snapshot-value reconstruction, the vector
sweep and decrement-range passes, the fused touch/timespan/countmin
batch finishers, and the shard scatter fan-out — lives behind the
:class:`KernelBackend` seam defined here. Three backends implement it:

``numpy``
    The reference backend: the library's original vectorised numpy
    code, moved verbatim into :mod:`repro.kernels.numpy_backend`.
``numba``
    The same kernels as explicit loops, compiled to machine code with
    ``numba.njit`` (:mod:`repro.kernels.numba_backend`). Only
    available when numba is installed; selecting it without numba
    falls back to ``numpy`` with a single warning.
``python``
    The numba kernels *un*-jitted (:mod:`repro.kernels.loops`) — slow,
    dependency-free, and algorithmically identical to ``numba``; used
    for differential testing on hosts without numba.

Selection
---------
The process-wide default backend is resolved on first use from the
``REPRO_KERNEL`` environment variable (``auto`` | ``numpy`` |
``numba``; also accepts ``python``). ``auto`` — the default — picks
``numba`` when importable, else ``numpy``, silently. Code can override
per call site (``ClockArray(..., kernel_backend="numpy")``), per
process (:func:`set_default_backend`), or per block
(:func:`use_backend`). Every backend produces bit-identical sketch
state — enforced by ``tests/test_kernel_backends.py`` — so selection
is purely a speed choice.

The active backend is published to the observability registry as the
``repro_kernel_info`` gauge (labels ``backend`` / ``compiled``) when
instrumentation is enabled. See ``docs/kernels.md`` for the protocol
contract and how to add a backend.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Any, Iterator, Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigurationError
from .loops import LoopKernelBackend, build_kernels
from .numba_backend import NUMBA_AVAILABLE, NumbaKernelBackend
from .numpy_backend import NumpyKernelBackend

__all__ = [
    "KERNEL_CHOICES",
    "KernelBackend",
    "LoopKernelBackend",
    "NUMBA_AVAILABLE",
    "NumbaKernelBackend",
    "NumpyKernelBackend",
    "build_kernels",
    "get_default_backend",
    "kernel_info",
    "numba_available",
    "publish_info",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]

#: Values accepted by ``REPRO_KERNEL`` and every ``--kernel`` flag.
#: ``python`` is deliberately undocumented in the CLI help: it is the
#: un-jitted differential twin of ``numba``, interpreter-slow.
KERNEL_CHOICES = ("auto", "numpy", "numba", "python")

_ENV_VAR = "REPRO_KERNEL"


@runtime_checkable
class KernelBackend(Protocol):
    """The primitive-kernel seam every backend implements.

    All methods must be bit-identical to the numpy reference backend
    (:class:`NumpyKernelBackend`) on the same inputs — backends differ
    only in speed. ``clock`` parameters are duck-typed
    :class:`~repro.core.clockarray.ClockArray` instances; kernels read
    their configuration (``n``, ``max_value``, ``steps_done``,
    ``values``) and commit cell images through the validating
    ``clock.load_values`` — never by writing the buffer directly.
    """

    #: Short identifier (``numpy`` / ``numba`` / ``python``).
    name: str
    #: True when the kernels run as compiled machine code.
    compiled: bool

    def sweep_hits(self, total_steps: int | np.ndarray,
                   cells: int | np.ndarray, n: int) -> np.ndarray:
        """Closed-form decrement count per cell over ``[1, total_steps]``."""
        ...

    def snapshot_values(self, set_steps: np.ndarray, cells: np.ndarray,
                        n: int, max_value: int,
                        query_steps: int) -> np.ndarray:
        """Closed-form clock value of each cell at query time."""
        ...

    def decay_all(self, values: np.ndarray, rounds: int) -> np.ndarray:
        """Full-circle sweep: every cell loses ``rounds``; returns expiries."""
        ...

    def decrement_range(self, values: np.ndarray, a: int, b: int,
                        ) -> np.ndarray:
        """One sweep pass over ``a..b-1``; returns absolute expiries."""
        ...

    def fuse_touch(self, clock: Any, cells: np.ndarray, steps: np.ndarray,
                   end_steps: int, count_cleaned: bool = False) -> int:
        """Fused batch of plain clock touches; returns cells cleaned.

        ``count_cleaned`` asks for the (slightly more expensive)
        cleaned-cell count; with it off the method returns 0. Kernels
        never consult observability state themselves — the engine
        passes ``count_cleaned=_obs.ENABLED`` so backends stay pure.
        """
        ...

    def fuse_timespan(self, clock: Any, timestamps: np.ndarray,
                      cells: np.ndarray, steps: np.ndarray,
                      stamps: np.ndarray, end_steps: int,
                      count_cleaned: bool = False) -> int:
        """Fused batch of touches plus first-writer timestamps."""
        ...

    def fuse_countmin(self, clock: Any, counters: np.ndarray,
                      counter_max: int, cells: np.ndarray,
                      steps: np.ndarray, end_steps: int,
                      count_cleaned: bool = False) -> int:
        """Fused batch of saturating counter bumps plus touches."""
        ...

    def take_subset(self, items: Any, mask: np.ndarray) -> Any:
        """Masked, order-preserving subset of a stream batch."""
        ...

    def scatter_by_shard(self, items: Any, times_arr: np.ndarray,
                         shard_ids: np.ndarray,
                         ) -> list[tuple[int, Any, np.ndarray]]:
        """Split one batch into per-shard ``(shard, items, times)``."""
        ...


# ----------------------------------------------------------------------
# Backend construction and selection
# ----------------------------------------------------------------------

#: Backend singletons, built on demand (numba compilation state is
#: per-function-signature inside the backend, so sharing one instance
#: process-wide maximises warm-up reuse).
_INSTANCES: dict[str, KernelBackend] = {}

#: The resolved process default; None until first resolution.
_DEFAULT: "KernelBackend | None" = None

#: What the default resolution was asked for (the env value), for
#: kernel_info() reporting.
_REQUESTED: str = "auto"

_WARNED_FALLBACK = False


def numba_available() -> bool:
    """Is the numba JIT importable in this process?"""
    return NUMBA_AVAILABLE


def _instance(name: str) -> KernelBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        if name == "numpy":
            backend = NumpyKernelBackend()
        elif name == "python":
            backend = LoopKernelBackend()
        else:
            backend = NumbaKernelBackend()
        _INSTANCES[name] = backend
    return backend


def _make(name: str) -> KernelBackend:
    """Build (or reuse) the backend a spec names, applying fallbacks."""
    global _WARNED_FALLBACK
    if name == "auto":
        return _instance("numba" if NUMBA_AVAILABLE else "numpy")
    if name == "numba" and not NUMBA_AVAILABLE:
        if not _WARNED_FALLBACK:
            _WARNED_FALLBACK = True
            warnings.warn(
                "REPRO_KERNEL=numba requested but numba is not "
                "installed; falling back to the numpy kernel backend",
                RuntimeWarning,
                stacklevel=3,
            )
        return _instance("numpy")
    if name in ("numpy", "numba", "python"):
        return _instance(name)
    raise ConfigurationError(
        f"unknown kernel backend {name!r}; use one of {KERNEL_CHOICES}"
    )


def resolve_backend(spec: str | KernelBackend | None = None) -> KernelBackend:
    """Resolve a backend spec to a live backend object.

    ``spec`` may be None (the process default, itself resolved from
    ``REPRO_KERNEL`` on first use), a name from
    :data:`KERNEL_CHOICES`, or an already-constructed backend object
    (returned as-is). This is what ``ClockArray`` calls on
    construction.
    """
    if spec is None:
        return get_default_backend()
    if isinstance(spec, str):
        return _make(spec)
    if isinstance(spec, KernelBackend):
        return spec
    raise ConfigurationError(
        f"kernel backend spec must be a name or a KernelBackend, "
        f"got {type(spec).__name__}"
    )


def get_default_backend() -> KernelBackend:
    """The process-default backend, resolving ``REPRO_KERNEL`` once."""
    global _DEFAULT, _REQUESTED
    if _DEFAULT is None:
        _REQUESTED = os.environ.get(_ENV_VAR, "auto").strip() or "auto"
        _DEFAULT = _make(_REQUESTED)
        _publish_if_enabled()
    return _DEFAULT


def set_default_backend(spec: str | KernelBackend) -> KernelBackend:
    """Set the process-default backend; returns the backend installed.

    Affects every subsequently constructed ``ClockArray`` (and the
    scatter fan-out); existing arrays keep the backend they resolved.
    """
    global _DEFAULT, _REQUESTED
    backend = resolve_backend(spec)
    _DEFAULT = backend
    if isinstance(spec, str):
        _REQUESTED = spec
    _publish_if_enabled()
    return backend


@contextmanager
def use_backend(spec: str | KernelBackend) -> Iterator[KernelBackend]:
    """``with use_backend("numpy"):`` — scoped default-backend override.

    Process-global (not thread-local): intended for benchmarks, tests,
    and pinning one batch's backend, not for concurrent mixing.
    """
    global _DEFAULT
    previous = _DEFAULT
    backend = set_default_backend(spec)
    try:
        yield backend
    finally:
        _DEFAULT = previous
        _publish_if_enabled()


def kernel_info() -> dict[str, Any]:
    """The active default backend, as a JSON-friendly dict.

    Recorded in benchmark payloads so BENCH trajectories name the
    backend that produced them.
    """
    backend = get_default_backend()
    return {
        "backend": backend.name,
        "compiled": bool(backend.compiled),
        "requested": _REQUESTED,
        "numba_available": NUMBA_AVAILABLE,
    }


def publish_info() -> None:
    """Publish the active backend to the obs registry.

    Runs automatically on every default-backend resolution or change
    while instrumentation is enabled; call it explicitly after
    ``obs.runtime.enable()`` to stamp a fresh registry with the
    ``repro_kernel_info`` gauge without changing the backend.
    """
    from ..obs import runtime as _obs

    backend = get_default_backend()
    _obs.publish_kernel_info(backend.name, bool(backend.compiled))


def _publish_if_enabled() -> None:
    from ..obs import runtime as _obs

    if _obs.ENABLED and _DEFAULT is not None:
        _obs.publish_kernel_info(_DEFAULT.name, bool(_DEFAULT.compiled))
