"""Loop-form kernels: the numba-compilable twin of the numpy backend.

:func:`build_kernels` constructs the primitive kernels as plain Python
functions written in the restricted style ``numba.njit`` accepts in
nopython mode — scalar loops over pre-allocated int64/float64 arrays,
no object-mode escapes, no allocation inside the kernels. Passing a
``jit`` decorator compiles every kernel (and the scalar ``hits`` helper
they share); passing ``None`` returns the same functions un-jitted,
which gives a slow but dependency-free *pure-Python* backend — the
differential twin used to test the kernel algorithms on hosts without
numba.

:class:`LoopKernelBackend` wraps the kernels behind the
:class:`~repro.kernels.KernelBackend` seam. The closed-form query
arithmetic (``sweep_hits`` / ``snapshot_values``) and the shard scatter
fan-out are inherited from :class:`NumpyKernelBackend` unchanged —
those are already single numpy expressions with nothing to compile; the
loop kernels replace the *mutation-heavy* primitives where the batch
time actually goes (vector sweep, decrement range, the three fused
finishers).

Bit-identity with the numpy backend is enforced by
``tests/test_kernel_backends.py``; the per-event recurrences below are
the sequential form of the segment reconstruction in
:mod:`repro.kernels.numpy_backend` (see the comments on each kernel).
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from .numpy_backend import NumpyKernelBackend

__all__ = ["LoopKernelBackend", "build_kernels"]

#: One loop kernel (possibly jitted) — raw arrays and scalars in, a
#: scalar count out; signatures live on the functions themselves.
_Kernel = Callable[..., Any]


def build_kernels(jit: "_Kernel | None" = None) -> dict[str, _Kernel]:
    """Build the loop kernels, optionally through a ``jit`` decorator.

    Returns a dict of kernels keyed ``decay`` / ``decrange`` /
    ``touch`` / ``timespan`` / ``countmin``. All array arguments are
    int64 except ``timestamps``/``stamps`` (float64); callers allocate
    every array (kernels never allocate, so nopython mode has nothing
    to box).
    """
    deco = jit if jit is not None else (lambda f: f)

    @deco
    def hits(m: int, c: int, n: int) -> int:
        # Scalar form of sweep_hits: steps in [1, m] that hit cell c.
        if m >= c + 1:
            return (m - 1 - c) // n + 1
        return 0

    @deco
    def decay(work: np.ndarray, rounds: int, expired: np.ndarray) -> int:
        # Every cell loses `rounds` (clamped at zero); record expiries.
        count = 0
        for c in range(work.shape[0]):
            v = work[c]
            if v > 0:
                v2 = v - rounds
                if v2 < 0:
                    v2 = 0
                work[c] = v2
                if v2 == 0:
                    expired[count] = c
                    count += 1
        return count

    @deco
    def decrange(work: np.ndarray, a: int, b: int,
                 expired: np.ndarray) -> int:
        # One sweep pass over cells a..b-1; record absolute expiries.
        count = 0
        for c in range(a, b):
            v = work[c]
            if v > 0:
                work[c] = v - 1
                if v == 1:
                    expired[count] = c
                    count += 1
        return count

    @deco
    def touch(old: np.ndarray, cells: np.ndarray, steps: np.ndarray,
              last: np.ndarray, final: np.ndarray, start_steps: int,
              end_steps: int, max_value: int, n: int) -> int:
        # Pass 1: per-cell last touch step (`last` arrives filled -1).
        for i in range(cells.shape[0]):
            c = cells[i]
            if steps[i] > last[c]:
                last[c] = steps[i]
        # Pass 2: closed-form final value per cell — touched cells decay
        # from max_value at their last touch, untouched cells from their
        # pre-batch value; `cleaned` counts live-before/zero-after,
        # which equals nonzero(before) - nonzero(after) + born.
        cleaned = 0
        for c in range(n):
            if last[c] >= 0:
                v = max_value - (hits(end_steps, c, n) - hits(last[c], c, n))
            else:
                v = old[c] - (hits(end_steps, c, n) - hits(start_steps, c, n))
            if v < 0:
                v = 0
            final[c] = v
            if old[c] > 0 and v == 0:
                cleaned += 1
        return cleaned

    @deco
    def timespan(old: np.ndarray, timestamps: np.ndarray,
                 cells: np.ndarray, steps: np.ndarray, stamps: np.ndarray,
                 last: np.ndarray, ts_new: np.ndarray, final: np.ndarray,
                 start_steps: int, end_steps: int, max_value: int,
                 n: int) -> int:
        # Sequential form of the segment reconstruction: walk the
        # touches in arrival order; a touch finds its cell empty iff
        # the decrements since the previous touch (or since the batch
        # started) cover the value held then — exactly then it resets
        # the first-writer timestamp to its own stamp.
        for i in range(cells.shape[0]):
            c = cells[i]
            s = steps[i]
            prev = last[c]
            if prev < 0:
                decs = hits(s, c, n) - hits(start_steps, c, n)
                if decs >= old[c]:
                    ts_new[c] = stamps[i]
                else:
                    ts_new[c] = timestamps[c]
            else:
                decs = hits(s, c, n) - hits(prev, c, n)
                if decs >= max_value:
                    ts_new[c] = stamps[i]
            last[c] = s
        cleaned = 0
        for c in range(n):
            if last[c] >= 0:
                v = max_value - (hits(end_steps, c, n) - hits(last[c], c, n))
                if v < 0:
                    v = 0
                if v == 0:
                    timestamps[c] = 0.0
                else:
                    timestamps[c] = ts_new[c]
            else:
                v = old[c] - (hits(end_steps, c, n) - hits(start_steps, c, n))
                if v < 0:
                    v = 0
                if v == 0:
                    timestamps[c] = 0.0
            final[c] = v
            if old[c] > 0 and v == 0:
                cleaned += 1
        return cleaned

    @deco
    def countmin(old: np.ndarray, ctr: np.ndarray, cells: np.ndarray,
                 steps: np.ndarray, last: np.ndarray, final: np.ndarray,
                 start_steps: int, end_steps: int, max_value: int,
                 counter_max: int, n: int) -> int:
        # Same empty-at-touch recurrence as `timespan`; a reset restarts
        # the count at 1 (this touch), otherwise the touch increments.
        # Per-touch clamping at counter_max equals the numpy backend's
        # end-clamp because the count only grows within a batch.
        for i in range(cells.shape[0]):
            c = cells[i]
            s = steps[i]
            prev = last[c]
            if prev < 0:
                decs = hits(s, c, n) - hits(start_steps, c, n)
                held = old[c]
            else:
                decs = hits(s, c, n) - hits(prev, c, n)
                held = max_value
            if decs >= held:
                ctr[c] = 1
            else:
                ctr[c] = ctr[c] + 1
            if ctr[c] > counter_max:
                ctr[c] = counter_max
            last[c] = s
        cleaned = 0
        for c in range(n):
            if last[c] >= 0:
                v = max_value - (hits(end_steps, c, n) - hits(last[c], c, n))
            else:
                v = old[c] - (hits(end_steps, c, n) - hits(start_steps, c, n))
            if v < 0:
                v = 0
            if v == 0:
                ctr[c] = 0
            final[c] = v
            if old[c] > 0 and v == 0:
                cleaned += 1
        return cleaned

    return {
        "hits": hits,
        "decay": decay,
        "decrange": decrange,
        "touch": touch,
        "timespan": timespan,
        "countmin": countmin,
    }


class LoopKernelBackend(NumpyKernelBackend):
    """Loop-kernel backend: numba-style kernels, jitted or pure Python.

    With ``jit=None`` (default) this is the dependency-free *python*
    backend — same kernel algorithms, interpreter speed — used for
    differential testing on hosts without numba. The numba backend
    subclasses this with ``jit=numba.njit``.
    """

    name = "python"
    compiled = False

    def __init__(self, jit: "_Kernel | None" = None) -> None:
        self._k = build_kernels(jit)

    # -- vector sweep primitives --------------------------------------

    def decay_all(self, values: np.ndarray, rounds: int) -> np.ndarray:
        work = values.astype(np.int64)
        expired = np.empty(work.shape[0], dtype=np.int64)
        count = self._k["decay"](work, rounds, expired)
        values[:] = work.astype(values.dtype)
        return expired[:count]

    def decrement_range(self, values: np.ndarray, a: int, b: int,
                        ) -> np.ndarray:
        work = values[a:b].astype(np.int64)
        expired = np.empty(work.shape[0], dtype=np.int64)
        count = self._k["decrange"](work, 0, work.shape[0], expired)
        values[a:b] = work.astype(values.dtype)
        if count:
            return expired[:count] + a
        return expired[:count]

    # -- fused batch finishers ----------------------------------------

    def fuse_touch(self, clock: Any, cells: np.ndarray, steps: np.ndarray,
                   end_steps: int, count_cleaned: bool = False) -> int:
        n = clock.n
        old = clock.values.astype(np.int64)
        last = np.full(n, -1, dtype=np.int64)
        final = np.zeros(n, dtype=np.int64)
        cleaned = self._k["touch"](
            old, np.ascontiguousarray(cells, dtype=np.int64),
            np.ascontiguousarray(steps, dtype=np.int64), last, final,
            clock.steps_done, end_steps, clock.max_value, n,
        )
        clock.load_values(final)
        return int(cleaned) if count_cleaned else 0

    def fuse_timespan(self, clock: Any, timestamps: np.ndarray,
                      cells: np.ndarray, steps: np.ndarray,
                      stamps: np.ndarray, end_steps: int,
                      count_cleaned: bool = False) -> int:
        n = clock.n
        old = clock.values.astype(np.int64)
        last = np.full(n, -1, dtype=np.int64)
        ts_new = np.zeros(n, dtype=np.float64)
        final = np.zeros(n, dtype=np.int64)
        cleaned = self._k["timespan"](
            old, timestamps, np.ascontiguousarray(cells, dtype=np.int64),
            np.ascontiguousarray(steps, dtype=np.int64),
            np.ascontiguousarray(stamps, dtype=np.float64), last, ts_new,
            final, clock.steps_done, end_steps, clock.max_value, n,
        )
        clock.load_values(final)
        return int(cleaned) if count_cleaned else 0

    def fuse_countmin(self, clock: Any, counters: np.ndarray,
                      counter_max: int, cells: np.ndarray,
                      steps: np.ndarray, end_steps: int,
                      count_cleaned: bool = False) -> int:
        n = clock.n
        old = clock.values.astype(np.int64)
        ctr = counters.astype(np.int64)
        last = np.full(n, -1, dtype=np.int64)
        final = np.zeros(n, dtype=np.int64)
        cleaned = self._k["countmin"](
            old, ctr, np.ascontiguousarray(cells, dtype=np.int64),
            np.ascontiguousarray(steps, dtype=np.int64), last, final,
            clock.steps_done, end_steps, clock.max_value, counter_max, n,
        )
        counters[:] = ctr.astype(counters.dtype)
        clock.load_values(final)
        return int(cleaned) if count_cleaned else 0
