"""The numpy reference kernel backend (the library's original hot path).

Every primitive here was moved verbatim from its pre-kernel home —
``sweep_hits`` / ``snapshot_values`` from :mod:`repro.core.clockarray`,
the fused batch finishers from ``repro/engine/fused.py``, the vector
sweep bodies from :meth:`ClockArray._sweep_vector`, and the shard
scatter fan-out from ``repro/engine/scatter.py`` — so the numpy backend
*is* the historical implementation, bit for bit. Other backends (see
:mod:`repro.kernels.loops` and :mod:`repro.kernels.numba_backend`) are
differentially tested against it.

The closed-form math (the paper's snapshot trick, applied
incrementally): between two consecutive touches of a cell the sweep
only ever decrements it (clamped at zero), so the cell's value after a
batch is fully determined by (a) its value when the batch started,
(b) the sweep-step numbers at which the batch touched it, and (c) the
sweep-step count at the end of the batch. :func:`sweep_hits` counts
decrements over any step interval in closed form, which turns a whole
batch into grouped scatter operations:

- every cell decays by its hit count over the batch interval;
- touched cells are rewritten from their *last* touch
  (:func:`snapshot_values`);
- expiry side effects (timestamp / counter clearing) are reconstructed
  per cell from the hit counts *between* consecutive touches — a cell
  expired in a gap iff the gap contains at least ``2^s - 1`` hits.

The fused finishers apply only to the exact sweep modes (``vector`` /
``scalar``), where the cleaner is fully caught up before every
operation; the deferred modes keep their chunked path (see
:mod:`repro.engine.batch`), matching their documented relaxed
guarantee. ``on_expire`` callbacks are *not* invoked by the finishers —
callers hand in the side arrays and the kernels update them directly,
which is exactly what the callbacks would have done.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "NumpyKernelBackend",
    "fuse_countmin",
    "fuse_timespan",
    "fuse_touch",
    "scatter_by_shard",
    "snapshot_values",
    "sweep_hits",
    "take_subset",
]


# ----------------------------------------------------------------------
# Closed-form sweep arithmetic (from repro.core.clockarray)
# ----------------------------------------------------------------------

def sweep_hits(total_steps: int | np.ndarray, cells: int | np.ndarray,
               n: int) -> np.ndarray:
    """How many times each cell was decremented within the first steps.

    With sweep steps numbered ``1, 2, ...`` (step ``j`` decrements cell
    ``(j - 1) mod n``), returns the number of steps in ``[1, total_steps]``
    that hit ``cells``. Vectorised over numpy arrays; also accepts
    scalars.
    """
    m = np.asarray(total_steps, dtype=np.int64)
    c = np.asarray(cells, dtype=np.int64)
    return np.where(m >= c + 1, (m - 1 - c) // n + 1, 0)


def snapshot_values(
    set_steps: np.ndarray,
    cells: np.ndarray,
    n: int,
    max_value: int,
    query_steps: int,
) -> np.ndarray:
    """Closed-form clock value of each cell at query time.

    ``set_steps[i]`` is the cleaner's total step count when cell
    ``cells[i]`` was last set to ``max_value``; ``query_steps`` is the
    total step count at query time. Equals what the incremental
    :class:`~repro.core.clockarray.ClockArray` would hold — the
    cross-check is a property test.
    """
    decs = sweep_hits(query_steps, cells, n) - sweep_hits(set_steps, cells, n)
    return np.maximum(max_value - decs, 0)


# ----------------------------------------------------------------------
# Fused batch finishers (from repro.engine.fused)
# ----------------------------------------------------------------------

def _cleaned_prelude(clock: Any, touched: np.ndarray, final: np.ndarray,
                     count_cleaned: bool) -> "int | None":
    """First half of the cleaned-cell count; call *before* load_values.

    ``cleaned`` (cells live before the batch, zero after) satisfies

        cleaned = nonzero(before) - nonzero(after) + born

    where ``born`` — cells empty before but live after — can only be
    touched cells, so it needs just the per-touched-cell arrays.
    Counting ``nonzero`` on ``clock.values`` (the small cell dtype, not
    the int64 working copies) keeps this to a fraction of a full
    boolean-mask pass. Only runs when the caller asks for the count
    (the engine passes ``count_cleaned=_obs.ENABLED``) — otherwise the
    fused paths report 0 cleaned and the clock's
    ``cells_cleaned_total`` stays a sweep-path-only statistic.
    """
    if not count_cleaned:
        return None
    nz_before = int(np.count_nonzero(clock.values))
    born = int(np.count_nonzero(final[clock.values.take(touched) == 0]))
    return nz_before + born


def _cleaned_result(clock: Any, prelude: "int | None") -> int:
    """Second half of the cleaned-cell count; call *after* load_values."""
    if prelude is None:
        return 0
    return prelude - int(np.count_nonzero(clock.values))


def _decayed_values(clock: Any,
                    end_steps: int) -> tuple[np.ndarray, np.ndarray]:
    """All-cell values after sweeping to ``end_steps``, before touches.

    Returns ``(old, decayed)`` as int64 arrays: the pre-batch values and
    the values every cell would hold at the end of the batch if the
    batch touched nothing.
    """
    n = clock.n
    cells = np.arange(n, dtype=np.int64)
    hits = sweep_hits(end_steps, cells, n) - sweep_hits(clock.steps_done, cells, n)
    old = clock.values.astype(np.int64)
    return old, np.maximum(old - hits, 0)


class _TouchSegments:
    """Per-cell runs of one batch's touch events, in arrival order.

    ``cells``/``steps`` are flat, aligned, with ``steps`` non-decreasing
    (arrival order). A stable sort by cell yields one contiguous segment
    per touched cell whose events stay chronological; the attributes
    expose everything the side-effect reconstruction needs:

    ``order``        the stable sort permutation (maps flat → sorted);
    ``seg_first`` / ``seg_last``   sorted-index bounds of each segment;
    ``seg_cells``    the cell each segment describes;
    ``last_reset``   sorted index of the segment's last touch that found
                     the cell empty (``-1``: the cell was continuously
                     occupied since before the batch);
    ``final_values`` each touched cell's clock value at ``end_steps``.
    """

    def __init__(self, clock: Any, cells: np.ndarray, steps: np.ndarray,
                 old_values: np.ndarray, end_steps: int) -> None:
        n = clock.n
        order = np.argsort(cells, kind="stable")
        sc = cells[order]
        ss = steps[order]
        first = np.empty(sc.size, dtype=bool)
        first[0] = True
        first[1:] = sc[1:] != sc[:-1]
        seg_first = np.flatnonzero(first)
        seg_last = np.append(seg_first[1:], sc.size) - 1
        seg_id = np.cumsum(first) - 1

        hits_at = sweep_hits(ss, sc, n)
        # A touch finds its cell empty iff the decrements since the
        # previous touch (or since the batch started, for the first
        # touch) cover the value the cell held then.
        empty = np.empty(sc.size, dtype=bool)
        empty[1:] = (hits_at[1:] - hits_at[:-1]) >= clock.max_value
        f = seg_first
        empty[f] = (hits_at[f] - sweep_hits(clock.steps_done, sc[f], n)) \
            >= old_values[sc[f]]
        last_reset = np.full(seg_first.size, -1, dtype=np.int64)
        where = np.flatnonzero(empty)
        np.maximum.at(last_reset, seg_id[where], where)

        self.order = order
        self.seg_first = seg_first
        self.seg_last = seg_last
        self.seg_cells = sc[seg_first]
        self.last_reset = last_reset
        self.final_values = snapshot_values(
            ss[seg_last], self.seg_cells, n, clock.max_value, end_steps
        )


def fuse_touch(clock: Any, cells: np.ndarray, steps: np.ndarray,
               end_steps: int, count_cleaned: bool = False) -> int:
    """Fused batch of plain clock touches (BF+clock / BM+clock).

    ``cells``/``steps`` are flat aligned arrays in arrival order with
    non-decreasing ``steps``. Only the clock values are rewritten; the
    caller commits the cleaner position afterwards. With
    ``count_cleaned`` true, returns the number of cells the batch left
    expired (live before, zero after) so the caller can keep the
    clock's sweep telemetry consistent; otherwise returns 0 and skips
    the extra nonzero passes.
    """
    old, decayed = _decayed_values(clock, end_steps)
    last_set = np.full(clock.n, -1, dtype=np.int64)
    np.maximum.at(last_set, cells, steps)
    touched = np.flatnonzero(last_set >= 0)
    snap = snapshot_values(
        last_set[touched], touched, clock.n, clock.max_value, end_steps
    )
    decayed[touched] = snap
    prelude = _cleaned_prelude(clock, touched, snap, count_cleaned)
    clock.load_values(decayed)
    return _cleaned_result(clock, prelude)


def fuse_timespan(clock: Any, timestamps: np.ndarray, cells: np.ndarray,
                  steps: np.ndarray, stamps: np.ndarray,
                  end_steps: int, count_cleaned: bool = False) -> int:
    """Fused batch for BF-ts+clock: touches plus first-writer timestamps.

    ``stamps`` aligns with ``cells``/``steps`` and carries each touch's
    arrival time. Reproduces the scalar rule exactly: a touch writes its
    time only when the cell is empty, and expiry (including expiry that
    happens *between* touches of this batch) erases the timestamp.
    Returns the number of cells the batch left expired (see
    :func:`fuse_touch`).
    """
    old, decayed = _decayed_values(clock, end_steps)
    segs = _TouchSegments(clock, cells, steps, old, end_steps)
    seg_cells = segs.seg_cells

    has_reset = segs.last_reset >= 0
    sorted_stamps = stamps[segs.order]
    ts_new = np.where(
        has_reset,
        sorted_stamps[np.maximum(segs.last_reset, 0)],
        timestamps[seg_cells],
    )
    ts_new[segs.final_values == 0] = 0.0

    touched_mask = np.zeros(clock.n, dtype=bool)
    touched_mask[seg_cells] = True
    dead = ~touched_mask & (old > 0) & (decayed == 0)
    timestamps[dead] = 0.0
    timestamps[seg_cells] = ts_new

    decayed[seg_cells] = segs.final_values
    prelude = _cleaned_prelude(clock, seg_cells, segs.final_values,
                               count_cleaned)
    clock.load_values(decayed)
    return _cleaned_result(clock, prelude)


def fuse_countmin(clock: Any, counters: np.ndarray, counter_max: int,
                  cells: np.ndarray, steps: np.ndarray,
                  end_steps: int, count_cleaned: bool = False) -> int:
    """Fused batch for CM+clock: saturating counter bumps plus touches.

    Each touch increments its cell's counter (clamped at
    ``counter_max``); expiry — before, between, or after the batch's
    touches — clears the counter, so a cell's final count is the number
    of touches since its last expiry, plus its pre-batch count if it
    never expired. Returns the number of cells the batch left expired
    (see :func:`fuse_touch`).
    """
    old, decayed = _decayed_values(clock, end_steps)
    segs = _TouchSegments(clock, cells, steps, old, end_steps)
    seg_cells = segs.seg_cells

    has_reset = segs.last_reset >= 0
    seg_len = segs.seg_last - segs.seg_first + 1
    base = np.where(has_reset, 0, counters[seg_cells].astype(np.int64))
    since = np.where(has_reset, segs.seg_last - segs.last_reset + 1, seg_len)
    ctr_new = np.minimum(base + since, counter_max)
    ctr_new[segs.final_values == 0] = 0

    touched_mask = np.zeros(clock.n, dtype=bool)
    touched_mask[seg_cells] = True
    dead = ~touched_mask & (old > 0) & (decayed == 0)
    counters[dead] = 0
    counters[seg_cells] = ctr_new.astype(counters.dtype)

    decayed[seg_cells] = segs.final_values
    prelude = _cleaned_prelude(clock, seg_cells, segs.final_values,
                               count_cleaned)
    clock.load_values(decayed)
    return _cleaned_result(clock, prelude)


# ----------------------------------------------------------------------
# Shard scatter fan-out (from repro.engine.scatter)
# ----------------------------------------------------------------------

def take_subset(items: Any, mask: np.ndarray) -> Any:
    """Select the masked subset of a stream batch, preserving order.

    ``items`` may be a numpy key array (fancy-indexed, stays an array
    so the fully vectorised hashing paths keep applying) or any
    sequence of hashable stream items (returned as a list).
    """
    if isinstance(items, np.ndarray):
        return items[mask]
    if not isinstance(items, (list, tuple)):
        items = list(items)
    picked = np.flatnonzero(mask)
    return [items[i] for i in picked]


def scatter_by_shard(items: Any, times_arr: np.ndarray,
                     shard_ids: np.ndarray,
                     ) -> "list[tuple[int, Any, np.ndarray]]":
    """Split one batch into per-shard ``(shard, items, times)`` tuples.

    ``shard_ids`` aligns with ``items`` (one routing id per item, from
    :class:`~repro.hashing.ShardSelector`); ``times_arr`` holds the
    already-resolved global arrival times. Only shards that actually
    receive items appear in the result, in ascending shard order; the
    concatenation of all sub-batches in time order is exactly the input
    batch.
    """
    shard_ids = np.asarray(shard_ids, dtype=np.int64)
    out: "list[tuple[int, Any, np.ndarray]]" = []
    for shard in np.unique(shard_ids):
        mask = shard_ids == shard
        out.append((int(shard), take_subset(items, mask), times_arr[mask]))
    return out


# ----------------------------------------------------------------------
# The backend object
# ----------------------------------------------------------------------

class NumpyKernelBackend:
    """The reference :class:`~repro.kernels.KernelBackend`: pure numpy.

    Every method delegates to the module-level reference functions
    above, so the backend object adds no behaviour — only the seam.
    """

    name = "numpy"
    compiled = False

    # -- closed-form sweep arithmetic ---------------------------------

    def sweep_hits(self, total_steps: int | np.ndarray,
                   cells: int | np.ndarray, n: int) -> np.ndarray:
        """See :func:`sweep_hits`."""
        return sweep_hits(total_steps, cells, n)

    def snapshot_values(self, set_steps: np.ndarray, cells: np.ndarray,
                        n: int, max_value: int,
                        query_steps: int) -> np.ndarray:
        """See :func:`snapshot_values`."""
        return snapshot_values(set_steps, cells, n, max_value, query_steps)

    # -- vector sweep primitives (from ClockArray._sweep_vector) ------

    def decay_all(self, values: np.ndarray, rounds: int) -> np.ndarray:
        """Decrement every cell ``rounds`` times (clamped at zero).

        Mutates ``values`` in place and returns the indexes of cells
        that were live before and are zero after (ascending). The
        caller clamps ``rounds`` at the cell maximum so the subtrahend
        stays inside the cell dtype.
        """
        was_positive = values > 0
        np.subtract(values, np.minimum(values, values.dtype.type(rounds)),
                    out=values)
        return np.flatnonzero(was_positive & (values == 0))

    def decrement_range(self, values: np.ndarray, a: int, b: int,
                        ) -> np.ndarray:
        """Decrement (clamped at zero) cells ``a..b-1`` once.

        Mutates ``values`` in place and returns the *absolute* indexes
        of cells this pass expired (ascending).
        """
        seg = values[a:b]
        positive = seg > 0
        seg[positive] -= 1
        expired = np.flatnonzero(positive & (seg == 0))
        if expired.size:
            return expired + a
        return expired

    # -- fused batch finishers ----------------------------------------

    def fuse_touch(self, clock: Any, cells: np.ndarray, steps: np.ndarray,
                   end_steps: int, count_cleaned: bool = False) -> int:
        """See :func:`fuse_touch`."""
        return fuse_touch(clock, cells, steps, end_steps, count_cleaned)

    def fuse_timespan(self, clock: Any, timestamps: np.ndarray,
                      cells: np.ndarray, steps: np.ndarray,
                      stamps: np.ndarray, end_steps: int,
                      count_cleaned: bool = False) -> int:
        """See :func:`fuse_timespan`."""
        return fuse_timespan(clock, timestamps, cells, steps, stamps,
                             end_steps, count_cleaned)

    def fuse_countmin(self, clock: Any, counters: np.ndarray,
                      counter_max: int, cells: np.ndarray,
                      steps: np.ndarray, end_steps: int,
                      count_cleaned: bool = False) -> int:
        """See :func:`fuse_countmin`."""
        return fuse_countmin(clock, counters, counter_max, cells, steps,
                             end_steps, count_cleaned)

    # -- shard scatter fan-out ----------------------------------------

    def take_subset(self, items: Any, mask: np.ndarray) -> Any:
        """See :func:`take_subset`."""
        return take_subset(items, mask)

    def scatter_by_shard(self, items: Any, times_arr: np.ndarray,
                         shard_ids: np.ndarray,
                         ) -> "list[tuple[int, Any, np.ndarray]]":
        """See :func:`scatter_by_shard`."""
        return scatter_by_shard(items, times_arr, shard_ids)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
