"""Running the cleaning pointer on a real background thread.

The paper's deployment runs insertion and cleaning on separate threads
("we use an additional thread to circularly scan the whole array").
The library's lazy cleaner reproduces the schedule deterministically
for analysis; this module provides the live equivalent for time-based
deployments where expiry must happen on the wall clock even when no
operations arrive:

- :class:`ThreadSafeSketch` — wraps any Clock-sketch with a lock so the
  cleaner and application threads can share it (pass ``lock=None`` to
  run unsynchronised, the paper's Table 3 configuration).
- :class:`BackgroundCleaner` — a daemon thread that periodically
  advances the sketch's clock to the current time. The time source is
  injectable, so tests (and simulations) can drive it deterministically.

>>> import time
>>> from repro import ClockBloomFilter, time_window
>>> sketch = ClockBloomFilter(n=256, k=2, s=2, window=time_window(10.0))
>>> shared = ThreadSafeSketch(sketch)
>>> with BackgroundCleaner(shared, interval=0.001) as cleaner:
...     shared.insert("x", t=cleaner.now())
...     shared.contains("x", t=cleaner.now())
True
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from .errors import ConfigurationError, TimeError
from .kernels import use_backend
from .obs import names as _names
from .obs import runtime as _obs
from .obs import trace as _trace

__all__ = ["ThreadSafeSketch", "BackgroundCleaner"]

#: Immutable configuration safe to forward from the wrapper without the
#: lock. Everything else must go through a locked method (or the caller
#: reaches for ``.sketch`` explicitly, accepting the race).
_FORWARDED_CONFIG = frozenset({
    "window", "n", "k", "s", "seed", "width", "depth", "conservative",
    "counter_bits", "counter_max", "max_value", "memory_bits",
})


class ThreadSafeSketch:
    """A lock-guarded facade over any Clock-sketch structure.

    Exposes the wrapped sketch's ``insert`` / ``contains`` / ``query`` /
    ``estimate`` under one lock, plus :meth:`advance_clock` for the
    background cleaner. With ``lock=None`` every call runs unguarded —
    the unsynchronised mode whose accuracy cost Table 3 (and ablation
    A3) measures.
    """

    def __init__(self, sketch: Any,
                 lock: "threading.Lock | bool | None" = True) -> None:
        self.sketch = sketch
        self._lock: "threading.Lock | None"
        if lock is True:
            self._lock = threading.Lock()
        elif lock is None or lock is False:
            self._lock = None
        else:
            self._lock = lock

    def _guarded(self, fn: Callable[..., Any], *args: Any,
                 **kwargs: Any) -> Any:
        lock = self._lock
        if lock is None:
            return fn(*args, **kwargs)
        if _obs.ENABLED:
            # Distinguish contended acquisitions: a failed non-blocking
            # attempt means another thread holds the lock, so time the
            # blocking wait that follows.
            if lock.acquire(blocking=False):
                _obs.record_lock(0.0, contended=False)
            else:
                started = time.perf_counter()
                with _trace.span(_names.SPAN_LOCK_WAIT):
                    lock.acquire()
                _obs.record_lock(time.perf_counter() - started,
                                 contended=True)
            try:
                return fn(*args, **kwargs)
            finally:
                lock.release()
        with lock:
            return fn(*args, **kwargs)

    def insert(self, item: Any, t: "float | None" = None) -> Any:
        """Locked :meth:`insert` on the wrapped sketch."""
        return self._guarded(self.sketch.insert, item, t)

    def insert_many(self, items: Any, times: Any = None,
                    chunk_size: int = 4096) -> None:
        """Batch ingestion, locking once per ``chunk_size`` items.

        Same bit-identical semantics as the wrapped sketch's
        ``insert_many``, but the lock is taken per chunk rather than
        per item (or per whole batch), so a cleaner or reader thread
        can interleave between chunks of a large batch. The kernel
        backend is resolved once for the whole call and pinned across
        chunks, so a concurrent ``set_default_backend`` cannot switch
        backends mid-batch; lock waits are published per chunk through
        the usual ``repro_lock_*`` series.
        """
        if chunk_size <= 0:
            raise ConfigurationError(
                f"chunk_size must be positive, got {chunk_size}")
        total = len(items)
        # Pin the kernel backend under the lock: `clock.kernels` resolves
        # lazily and a concurrent set_default_backend() may be publishing
        # the resolution exactly as we read it.
        backend = self._guarded(lambda: self.sketch.clock.kernels)
        with use_backend(backend):
            for pos in range(0, total, chunk_size):
                end = min(pos + chunk_size, total)
                chunk_times = None if times is None else times[pos:end]
                self._guarded(self.sketch.insert_many, items[pos:end],
                              chunk_times)

    def contains(self, item: Any, t: "float | None" = None) -> Any:
        """Locked :meth:`contains` (activeness sketches)."""
        return self._guarded(self.sketch.contains, item, t)

    def contains_many(self, items: Any, t: "float | None" = None) -> Any:
        """Locked bulk :meth:`contains_many` (activeness sketches)."""
        return self._guarded(self.sketch.contains_many, items, t)

    def query_many(self, items: Any, t: "float | None" = None) -> Any:
        """Locked bulk :meth:`query_many` on the wrapped sketch."""
        return self._guarded(self.sketch.query_many, items, t)

    def query(self, item: Any, t: "float | None" = None) -> Any:
        """Locked :meth:`query` (span/size sketches)."""
        return self._guarded(self.sketch.query, item, t)

    def estimate(self, t: "float | None" = None) -> Any:
        """Locked :meth:`estimate` (cardinality sketches)."""
        return self._guarded(self.sketch.estimate, t)

    def advance_clock(self, now: float) -> None:
        """Locked clock advance — the cleaner thread's entry point.

        Out-of-order ticks (the application advanced time past the
        cleaner's last view) are ignored rather than raised, matching a
        real free-running cleaner.
        """
        def _advance() -> None:
            if now > self.sketch.clock.now:
                self.sketch.clock.advance(now)
        self._guarded(_advance)

    def __getattr__(self, name: str) -> Any:
        # Deliberately lock-free, but only for the closed set of
        # immutable configuration reads in _FORWARDED_CONFIG. Anything
        # that mutates or reads mutable state has an explicit locked
        # method above; everything else is an AttributeError so mutable
        # internals (clock, engine, deriver) cannot leak out unlocked.
        if name not in _FORWARDED_CONFIG:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute "
                f"{name!r}; mutable sketch state is only reachable "
                f"through the locked methods (or `.sketch` explicitly)")
        return getattr(self.sketch, name)


class BackgroundCleaner:
    """A daemon thread advancing a sketch's clock on the wall clock.

    Parameters
    ----------
    sketch:
        A :class:`ThreadSafeSketch` (or anything with ``advance_clock``
        and a time-based ``window``).
    interval:
        Seconds between cleaning ticks.
    time_source:
        Callable returning the current stream time; defaults to a
        monotonic wall clock starting at 1.0 (stream times must be
        positive). Inject a fake for deterministic tests.
    """

    def __init__(self, sketch: Any, interval: float = 0.01,
                 time_source: "Callable[[], float] | None" = None) -> None:
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive, got {interval}")
        window = getattr(sketch, "window", None)
        if window is not None and window.is_count_based:
            raise ConfigurationError(
                "a wall-clock cleaner needs a time-based window; "
                "count-based sketches clean per insertion"
            )
        self.sketch = sketch
        self.interval = float(interval)
        if time_source is None:
            origin = time.monotonic()
            time_source = lambda: time.monotonic() - origin + 1.0  # noqa: E731
        self.now: "Callable[[], float]" = time_source
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self.ticks = 0

    def start(self) -> "BackgroundCleaner":
        """Start the cleaning thread (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="clock-sketch-cleaner")
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sketch.advance_clock(self.now())
            except TimeError:
                # The application raced time forward; next tick catches up.
                pass
            self.ticks += 1

    def stop(self) -> None:
        """Stop the cleaning thread and join it."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    @property
    def running(self) -> bool:
        """Is the cleaner thread alive?"""
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "BackgroundCleaner":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
