"""Network-facing multi-tenant ingestion service.

The "millions of users" front door over the sketch engine: an asyncio
TCP server speaking a newline-delimited JSON line/batch protocol
(``INSERT`` / ``INSERT_BATCH`` / ``QUERY`` / ``STATS`` /
``CHECKPOINT`` / ``PING``) over per-tenant
:meth:`~repro.monitor.ItemBatchMonitor.sharded` monitors, each with an
independent window, memory budget, and shard layout. Admission control
and engine backpressure surface as typed protocol errors; rolling
checkpoints bound restart loss to one error window. See
``docs/serving.md`` for the protocol specification, tenancy model,
checkpoint guarantees, and failure matrix.

>>> import asyncio
>>> from repro.serve import IngestService, TenantConfig
>>> async def demo():
...     async with IngestService(TenantConfig(window_length=64,
...                                           memory="16KB")) as svc:
...         reader, writer = await asyncio.open_connection(
...             svc.host, svc.port)
...         writer.write(b'{"op":"INSERT","tenant":"t0","key":"k"}\\n')
...         return (await reader.readline())
>>> b'"ok":true' in asyncio.run(demo())
True
"""

from .checkpoint import CHECKPOINT_FORMAT, CheckpointManager, RestoredState
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    Request,
    encode,
    error_response,
    ok_response,
    parse_frame,
)
from .service import IngestService
from .tenants import Tenant, TenantConfig, TenantManager

__all__ = [
    "IngestService",
    "TenantConfig",
    "Tenant",
    "TenantManager",
    "CheckpointManager",
    "RestoredState",
    "CHECKPOINT_FORMAT",
    "OPS",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "Request",
    "parse_frame",
    "encode",
    "ok_response",
    "error_response",
]
