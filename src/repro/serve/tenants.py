"""Per-tenant state: configuration, monitors, admission, quarantine.

Every tenant owns an independent :class:`~repro.monitor.ItemBatchMonitor`
built through :meth:`~repro.monitor.ItemBatchMonitor.sharded` — its own
window, memory budget, seed, shard count and router — so one tenant's
traffic, faults, and accuracy never bleed into another's. The
:class:`TenantManager` enforces admission control (tenant cap,
auto-create policy) and carries the quarantine discipline: a tenant
whose engine raised :class:`~repro.errors.ShardWorkerError` is marked
quarantined and every later command fails fast with the typed
:class:`~repro.errors.TenantQuarantinedError` instead of wedging the
connection or the event loop.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..core.params import error_window_length
from ..errors import (
    AdmissionError,
    ShardWorkerError,
    TenantQuarantinedError,
    TimeError,
    UnknownTenantError,
)
from ..monitor import ItemBatchMonitor
from ..obs import runtime as _obs
from ..timebase import WindowKind, WindowSpec

__all__ = ["TenantConfig", "Tenant", "TenantManager"]


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's engine configuration (JSON-round-trippable).

    ``checkpoint_every`` is a cadence in *stream* units — items for
    count-based windows, stream time for time-based ones. The default
    (``None``) derives the sweep-circle cadence: the smallest enabled
    sketch error window ``T / (2^s - 2)``, so a restart restores to a
    state at most one error window behind the stream (see
    ``docs/serving.md``).
    """

    window_length: float = 4096
    window_kind: str = "count"
    memory: "int | str" = "64KB"
    tasks: "Optional[Tuple[str, ...]]" = None
    split: "Optional[Tuple[Tuple[str, float], ...]]" = None
    seed: int = 0
    shards: int = 1
    router: str = "serial"
    queue_capacity: "Optional[int]" = None
    timeout: "Optional[float]" = None
    max_batch: int = 65536
    checkpoint_every: "Optional[float]" = None

    def window(self) -> WindowSpec:
        return WindowSpec(length=self.window_length,
                          kind=WindowKind(self.window_kind))

    def build_monitor(self, time_source: Any = None) -> ItemBatchMonitor:
        """A fresh sharded monitor at this configuration."""
        return ItemBatchMonitor.sharded(
            self.window(), memory=self.memory, tasks=self.tasks,
            split=dict(self.split) if self.split else None, seed=self.seed,
            shards=self.shards, router=self.router,
            queue_capacity=self.queue_capacity, timeout=self.timeout,
            time_source=time_source,
        )

    def cadence(self, monitor: ItemBatchMonitor) -> float:
        """Checkpoint cadence in stream units (items or time)."""
        if self.checkpoint_every is not None:
            return float(self.checkpoint_every)
        return min(error_window_length(self.window_length, sketch.s)
                   for sketch in monitor._sketches)

    def to_meta(self) -> "Dict[str, Any]":
        """A JSON-safe mapping that :meth:`from_meta` reverses."""
        return {
            "window_length": self.window_length,
            "window_kind": self.window_kind,
            "memory": self.memory,
            "tasks": list(self.tasks) if self.tasks else None,
            "split": [list(pair) for pair in self.split]
            if self.split else None,
            "seed": self.seed,
            "shards": self.shards,
            "router": self.router,
            "queue_capacity": self.queue_capacity,
            "timeout": self.timeout,
            "max_batch": self.max_batch,
            "checkpoint_every": self.checkpoint_every,
        }

    @classmethod
    def from_meta(cls, meta: "Mapping[str, Any]") -> "TenantConfig":
        tasks = meta.get("tasks")
        split = meta.get("split")
        return cls(
            window_length=meta["window_length"],
            window_kind=meta["window_kind"],
            memory=meta["memory"],
            tasks=tuple(tasks) if tasks else None,
            split=tuple((str(k), float(v)) for k, v in split)
            if split else None,
            seed=int(meta["seed"]),
            shards=int(meta["shards"]),
            router=str(meta["router"]),
            queue_capacity=meta.get("queue_capacity"),
            timeout=meta.get("timeout"),
            max_batch=int(meta.get("max_batch", 65536)),
            checkpoint_every=meta.get("checkpoint_every"),
        )


class Tenant:
    """One tenant's live engine plus its service-side bookkeeping."""

    def __init__(self, name: str, config: TenantConfig,
                 monitor: ItemBatchMonitor, *,
                 restored_from: "Optional[str]" = None) -> None:
        self.name = name
        self.config = config
        self.monitor = monitor
        #: Serialises commands and checkpoints for this tenant on the
        #: event loop (commands for different tenants interleave freely).
        self.lock = asyncio.Lock()
        self.quarantine_reason: "Optional[str]" = None
        self.commands = 0
        self.items = 0
        self.restored_from = restored_from
        self.last_checkpoint_position = self.position
        self.checkpoints_written = 0

    @property
    def position(self) -> float:
        """The tenant's stream position (items for count windows,
        stream time otherwise)."""
        # All enabled sketches advance in lockstep; read the first.
        return float(self.monitor._sketches[0].now)

    @property
    def quarantined(self) -> bool:
        return self.quarantine_reason is not None

    def ensure_healthy(self) -> None:
        if self.quarantine_reason is not None:
            raise TenantQuarantinedError(
                f"tenant {self.name!r} is quarantined: "
                f"{self.quarantine_reason}")

    def quarantine(self, exc: BaseException) -> None:
        """Fence the tenant off after an engine failure."""
        self.quarantine_reason = f"{type(exc).__name__}: {exc}"
        if _obs.ENABLED:
            _obs.record_serve_quarantine(self.name)
            _obs.record_event(self.position, "error", "serve.quarantine",
                              self.quarantine_reason,
                              fields={"tenant": self.name})

    def _validated_times(
            self, count: int,
            times: "Optional[List[float]]") -> "Optional[np.ndarray]":
        """Enforce the stream time contract before touching any sketch.

        Validating up front keeps a rejected batch all-or-nothing: no
        sketch sees any of it, so accepted commands replay exactly
        against a differential in-process monitor.
        """
        if self.config.window().is_count_based:
            if times is not None:
                raise TimeError("count-based tenant takes no timestamps")
            return None
        if times is None:
            raise TimeError("time-based tenant requires timestamps")
        arr = np.asarray(times, dtype=np.float64)
        if arr.shape[0] != count:
            raise TimeError("times must be as long as keys")
        if arr.shape[0] > 1 and bool(np.any(np.diff(arr) < 0)):
            raise TimeError("times must be non-decreasing within a batch")
        if float(arr[0]) < self.position:
            raise TimeError(
                f"time moved backwards: {float(arr[0])} < {self.position}")
        return arr

    def ingest(self, keys: "List[Any]",
               times: "Optional[List[float]]") -> int:
        """Apply one accepted batch to every enabled structure."""
        self.ensure_healthy()
        if len(keys) > self.config.max_batch:
            raise AdmissionError(
                f"batch of {len(keys)} exceeds tenant {self.name!r}'s "
                f"{self.config.max_batch}-item cap")
        arr = self._validated_times(len(keys), times)
        try:
            self.monitor.observe_many(keys, arr)
        except ShardWorkerError as exc:
            self.quarantine(exc)
            raise
        self.items += len(keys)
        self.commands += 1
        return len(keys)

    def query(self, key: Any) -> "Dict[str, Any]":
        """The combined per-key report, as wire-ready fields."""
        self.ensure_healthy()
        try:
            report = self.monitor.report(key)
        except ShardWorkerError as exc:
            self.quarantine(exc)
            raise
        self.commands += 1
        return {
            "key": report.key,
            "active": report.active,
            "size": report.size,
            "span": report.span,
            "begin": report.begin,
        }

    def stats(self) -> "Dict[str, Any]":
        """Operational snapshot (the ``STATS`` response body)."""
        return {
            "tenant": self.name,
            "position": self.position,
            "items": self.items,
            "commands": self.commands,
            "quarantined": self.quarantine_reason,
            "tasks": list(self.monitor.tasks),
            "shards": self.monitor.shards,
            "memory_bits": self.monitor.memory_bits(),
            "checkpoints_written": self.checkpoints_written,
            "last_checkpoint_position": self.last_checkpoint_position,
            "restored_from": self.restored_from,
        }

    def close(self) -> None:
        self.monitor.close()


class TenantManager:
    """Owns the tenant map: admission, lookup, lifecycle.

    Parameters
    ----------
    default_config:
        Configuration for auto-created tenants (when ``auto_create``).
    tenants:
        Explicit per-tenant configurations; these names always exist
        (created lazily on first use) regardless of ``auto_create``.
    max_tenants:
        Admission cap on resident tenants.
    auto_create:
        Whether an unknown tenant name creates a tenant on first use
        (with ``default_config``) or fails with ``unknown-tenant``.
    time_source:
        Injectable clock forwarded to process-router shard workers.
    """

    def __init__(self, default_config: "Optional[TenantConfig]" = None,
                 tenants: "Optional[Mapping[str, TenantConfig]]" = None,
                 *, max_tenants: int = 64, auto_create: bool = True,
                 time_source: Any = None) -> None:
        self.default_config = default_config or TenantConfig()
        self.configs: "Dict[str, TenantConfig]" = dict(tenants or {})
        self.max_tenants = int(max_tenants)
        self.auto_create = bool(auto_create)
        self.time_source = time_source
        self._tenants: "Dict[str, Tenant]" = {}

    def __len__(self) -> int:
        return len(self._tenants)

    def __iter__(self) -> "Iterable[Tenant]":
        return iter(list(self._tenants.values()))

    def known_names(self) -> "List[str]":
        """Configured plus resident tenant names."""
        return sorted(set(self.configs) | set(self._tenants))

    def config_for(self, name: str) -> TenantConfig:
        config = self.configs.get(name)
        if config is not None:
            return config
        if not self.auto_create:
            raise UnknownTenantError(
                f"unknown tenant {name!r} (auto-create is disabled)")
        return self.default_config

    def peek(self, name: str) -> "Optional[Tenant]":
        return self._tenants.get(name)

    def get(self, name: str) -> Tenant:
        """The resident tenant, creating it if admission allows."""
        tenant = self._tenants.get(name)
        if tenant is not None:
            return tenant
        config = self.config_for(name)
        if len(self._tenants) >= self.max_tenants:
            raise AdmissionError(
                f"tenant limit reached ({self.max_tenants}); "
                f"cannot admit {name!r}")
        monitor = config.build_monitor(time_source=self.time_source)
        return self.adopt(Tenant(name, config, monitor))

    def adopt(self, tenant: Tenant) -> Tenant:
        """Install an already-built tenant (restore path)."""
        self._tenants[tenant.name] = tenant
        if _obs.ENABLED:
            _obs.publish_serve_tenants(len(self._tenants))
        return tenant

    def stats(self) -> "Dict[str, Any]":
        return {
            "tenants": len(self._tenants),
            "max_tenants": self.max_tenants,
            "auto_create": self.auto_create,
            "names": sorted(self._tenants),
            "quarantined": sorted(t.name for t in self._tenants.values()
                                  if t.quarantined),
        }

    def close(self) -> None:
        """Release every tenant's engine resources. Idempotent."""
        for tenant in self._tenants.values():
            tenant.close()
