"""The asyncio TCP front door over per-tenant sharded monitors.

:class:`IngestService` accepts newline-delimited JSON frames
(:mod:`repro.serve.protocol`), dispatches them against
:class:`~repro.serve.tenants.TenantManager` state, and answers every
frame with exactly one response line — malformed input, admission
rejections, backpressure and engine faults all come back as typed
error responses, never as a silently dropped connection or a wedged
event loop. A background task sweeps tenants on their sweep-circle
cadence and publishes rolling checkpoints through
:class:`~repro.serve.checkpoint.CheckpointManager`; on restart the
service rehydrates every tenant from its newest intact checkpoint, so
a crash loses at most one error window of stream state.

Concurrency model: one coroutine per connection; commands against the
same tenant serialise on that tenant's lock (ingest order is part of
the sketch contract), while distinct tenants interleave freely.
Sketch work itself runs inline on the event loop — the engine is
vectorised numpy that outruns the socket layer, and keeping it inline
means the per-tenant ordering is the arrival order on the wire.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Mapping, Optional, Set

from ..errors import BadFrameError, CheckpointError
from ..obs import runtime as _obs
from . import protocol
from .checkpoint import CheckpointManager
from .tenants import Tenant, TenantConfig, TenantManager

__all__ = ["IngestService"]

#: Wall-clock seconds between background checkpoint-cadence sweeps.
DEFAULT_CHECKPOINT_POLL = 0.25


class IngestService:
    """The multi-tenant ingestion server.

    Parameters
    ----------
    default_config:
        Engine configuration for auto-created tenants.
    tenants:
        Explicit per-tenant configurations (always admitted by name).
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    checkpoint_dir:
        Root directory for rolling checkpoints; ``None`` disables
        checkpointing (the ``CHECKPOINT`` op then fails typed).
    keep:
        Checkpoint generations retained per tenant.
    max_tenants, auto_create:
        Admission policy (see :class:`TenantManager`).
    max_frame_bytes:
        Hard cap on one protocol line; longer frames answer
        ``bad-frame`` and drop the connection.
    checkpoint_poll:
        Wall-clock cadence of the background sweep that *checks* each
        tenant's stream-position cadence (the loss bound itself is in
        stream units, so tests may call :meth:`checkpoint_due`
        directly and never wait on real time).
    time_source:
        Injectable clock forwarded to process-router shard workers.
    checkpoint_hooks:
        Test-only fault-injection hooks for the checkpoint pipeline.
    """

    def __init__(self, default_config: "Optional[TenantConfig]" = None,
                 tenants: "Optional[Mapping[str, TenantConfig]]" = None,
                 *, host: str = "127.0.0.1", port: int = 0,
                 checkpoint_dir: "Optional[str]" = None, keep: int = 3,
                 max_tenants: int = 64, auto_create: bool = True,
                 max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
                 checkpoint_poll: float = DEFAULT_CHECKPOINT_POLL,
                 time_source: Any = None,
                 checkpoint_hooks: "Optional[Mapping[str, Any]]" = None
                 ) -> None:
        self.tenants = TenantManager(
            default_config, tenants, max_tenants=max_tenants,
            auto_create=auto_create, time_source=time_source)
        self.host = host
        self._requested_port = int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        self.checkpoint_poll = float(checkpoint_poll)
        self.checkpoints: "Optional[CheckpointManager]" = None
        if checkpoint_dir is not None:
            self.checkpoints = CheckpointManager(
                checkpoint_dir, keep=keep, hooks=checkpoint_hooks)
        self._server: "Optional[asyncio.AbstractServer]" = None
        self._checkpoint_task: "Optional[asyncio.Task[None]]" = None
        self._writers: "Set[asyncio.StreamWriter]" = set()
        self._conn_tasks: "Set[asyncio.Task[None]]" = set()
        self.connections_total = 0
        #: Per-tenant outcome of the most recent :meth:`restore_tenants`.
        self.restore_outcomes: "Dict[str, str]" = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return int(self._server.sockets[0].getsockname()[1])
        return self._requested_port

    async def start(self) -> "IngestService":
        """Restore checkpointed tenants, bind, and begin serving."""
        if self._server is not None:
            return self
        self.restore_tenants()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port,
            limit=self.max_frame_bytes)
        if self.checkpoints is not None:
            self._checkpoint_task = asyncio.create_task(
                self._checkpoint_loop(), name="repro-serve-checkpoint")
        return self

    def restore_tenants(self) -> "Dict[str, str]":
        """Rehydrate every tenant with an intact checkpoint on disk.

        Returns ``{tenant: outcome}`` with outcomes ``restored``
        (newest generation), ``fallback`` (an older intact generation;
        newer files were damaged) or ``fresh`` (no intact checkpoint —
        the tenant starts empty on first use).
        """
        outcomes: "Dict[str, str]" = {}
        if self.checkpoints is None:
            return outcomes
        for name in self.checkpoints.tenant_names():
            explicit = self.tenants.configs.get(name)
            restored = self.checkpoints.restore(name, explicit)
            if restored is None:
                outcome = "fresh"
            else:
                outcome = "fallback" if restored.fell_back else "restored"
                tenant = Tenant(name, restored.config, restored.monitor,
                                restored_from=str(restored.path))
                self.tenants.adopt(tenant)
            outcomes[name] = outcome
            if _obs.ENABLED:
                _obs.record_serve_restore(name, outcome)
        self.restore_outcomes = outcomes
        return outcomes

    async def stop(self, *, final_checkpoint: bool = True) -> None:
        """Graceful shutdown: quiesce, optionally checkpoint, release."""
        if self._checkpoint_task is not None:
            self._checkpoint_task.cancel()
            try:
                await self._checkpoint_task
            except asyncio.CancelledError:
                pass
            self._checkpoint_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        if self._conn_tasks:
            # Handlers observe the transport close as EOF and return;
            # waiting here keeps loop teardown from cancelling them.
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if final_checkpoint and self.checkpoints is not None:
            for tenant in self.tenants:
                if tenant.quarantined or tenant.items == 0:
                    continue
                async with tenant.lock:
                    try:
                        self.checkpoints.write(tenant)
                    except (CheckpointError, OSError) as exc:
                        self._note_checkpoint_failure(tenant, exc)
        self.tenants.close()

    async def abort(self) -> None:
        """Simulated crash: drop everything, write nothing."""
        await self.stop(final_checkpoint=False)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self.connections_total += 1
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        if _obs.ENABLED:
            _obs.record_serve_connection(1, len(self._writers))
        try:
            await self._serve_lines(reader, writer)
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            if _obs.ENABLED:
                _obs.record_serve_connection(-1, len(self._writers))
            writer.close()

    async def _serve_lines(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError) as exc:
                # Frame past the configured cap: the stream cannot be
                # resynchronised, so answer typed and hang up.
                await self._send(writer, protocol.error_response(
                    BadFrameError(
                        f"frame exceeds {self.max_frame_bytes} bytes: "
                        f"{exc}")))
                return
            if not line.endswith(b"\n"):
                # EOF — clean close or a mid-frame disconnect; either
                # way there is no complete frame left to answer.
                return
            payload = await self._process(line.rstrip(b"\r\n"))
            if not await self._send(writer, payload):
                return
            if not payload.get("ok") \
                    and payload["error"]["code"] == "bad-frame":
                # After unparseable bytes the frame boundary is
                # untrustworthy; close so the client re-syncs.
                return

    async def _send(self, writer: asyncio.StreamWriter,
                    payload: "Dict[str, Any]") -> bool:
        try:
            writer.write(protocol.encode(payload))
            await writer.drain()
        except (ConnectionError, RuntimeError) as exc:
            # Peer vanished mid-response: nothing to answer, nothing to
            # corrupt — surface it to the event log and drop the line.
            if _obs.ENABLED:
                _obs.record_event(0.0, "info", "serve.client_gone",
                                  f"write failed: {exc}")
            return False
        return True

    async def _process(self, line: bytes) -> "Dict[str, Any]":
        """One frame in, one response object out. Never raises."""
        try:
            request = protocol.parse_frame(line)
            payload = await self._dispatch(request)
        except Exception as exc:  # noqa: BLE001 - every fault answers typed
            payload = protocol.error_response(exc)
            if _obs.ENABLED:
                code = payload["error"]["code"]
                _obs.record_serve_error(code)
                if code == "internal":
                    _obs.record_event(0.0, "error", "serve.internal",
                                      f"{type(exc).__name__}: {exc}")
        return payload

    async def _dispatch(self, request: protocol.Request
                        ) -> "Dict[str, Any]":
        op = request.op
        if op == "PING":
            return protocol.ok_response("PING")
        if op == "STATS" and request.tenant is None:
            return protocol.ok_response("STATS", service=self.stats())
        assert request.tenant is not None  # parse_frame guarantees it
        tenant = self.tenants.get(request.tenant)
        async with tenant.lock:
            if op == "INSERT":
                times = None if request.t is None else [request.t]
                count = tenant.ingest([request.key], times)
                payload = protocol.ok_response(
                    op, count=count, position=tenant.position)
            elif op == "INSERT_BATCH":
                count = tenant.ingest(request.keys, request.times)
                payload = protocol.ok_response(
                    op, count=count, position=tenant.position)
            elif op == "QUERY":
                payload = protocol.ok_response(op, **tenant.query(request.key))
            elif op == "STATS":
                payload = protocol.ok_response(op, tenant=tenant.stats())
            else:  # CHECKPOINT
                path = self._checkpoint_locked(tenant)
                payload = protocol.ok_response(
                    op, path=str(path), position=tenant.position)
        if _obs.ENABLED:
            items = payload.get("count", 0) if op.startswith("INSERT") else 0
            _obs.record_serve_command(tenant.name, op, items)
        return payload

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _checkpoint_locked(self, tenant: Tenant) -> Any:
        """Write one checkpoint; caller holds the tenant's lock."""
        if self.checkpoints is None:
            raise CheckpointError(
                "checkpointing is disabled (no checkpoint_dir configured)")
        tenant.ensure_healthy()
        return self.checkpoints.write(tenant)

    async def checkpoint_due(self, *, force: bool = False) -> "Dict[str, str]":
        """One cadence sweep: checkpoint every tenant that has advanced
        at least its sweep-circle cadence since its last checkpoint
        (every non-empty healthy tenant, when ``force``)."""
        written: "Dict[str, str]" = {}
        if self.checkpoints is None:
            return written
        for tenant in self.tenants:
            if tenant.quarantined or tenant.items == 0:
                continue
            cadence = tenant.config.cadence(tenant.monitor)
            behind = tenant.position - tenant.last_checkpoint_position
            if not force and behind < cadence:
                continue
            async with tenant.lock:
                try:
                    path = self.checkpoints.write(tenant)
                except (CheckpointError, OSError) as exc:
                    self._note_checkpoint_failure(tenant, exc)
                    continue
            written[tenant.name] = str(path)
        return written

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self.checkpoint_poll)
            await self.checkpoint_due()

    def _note_checkpoint_failure(self, tenant: Tenant,
                                 exc: BaseException) -> None:
        """A failed background checkpoint must not kill the sweep —
        the previous generation stays valid; record and move on."""
        if _obs.ENABLED:
            _obs.record_event(
                tenant.position, "error", "serve.checkpoint_failed",
                f"{tenant.name}: {type(exc).__name__}: {exc}",
                fields={"tenant": tenant.name})

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> "Dict[str, Any]":
        manager = self.tenants.stats()
        manager.update({
            "connections_open": len(self._writers),
            "connections_total": self.connections_total,
            "checkpointing": self.checkpoints is not None,
        })
        return manager

    def serve_payload(self) -> "Dict[str, Any]":
        """The ``/serve.json`` exposition payload."""
        return {
            "service": self.stats(),
            "tenants": {t.name: t.stats() for t in self.tenants},
        }

    def attach_metrics(self, server: Any) -> Any:
        """Register ``/serve.json`` on a :class:`MetricsServer`."""
        return server.add_json_page("/serve.json", self.serve_payload)

    async def __aenter__(self) -> "IngestService":
        return await self.start()

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        await self.stop()
