"""The service's own test harness: loopback hosting, clients, faults.

Three pieces, all deterministic and dependency-free:

- :class:`ServiceThread` hosts a real :class:`~repro.serve.IngestService`
  on a private event loop in a daemon thread, so synchronous tests (and
  hypothesis, which cannot re-enter asyncio per example) drive it over
  real sockets; coroutines are injected with :meth:`submit`, which
  enforces a deadline — a wedged event loop surfaces as a timeout, not
  a hang.
- :class:`LineClient` is a blocking newline-delimited JSON client with
  byte-level access: :meth:`send_raw` writes arbitrary bytes (fuzzing),
  :meth:`disconnect_mid_frame` closes the socket with half a frame on
  the wire.
- :class:`FaultInjector` scripts deterministic failures against a
  running service: shard-worker crash/stall (through the process
  router's fault hooks) and checkpoint torn-file truncation.

Every timeout in this module is a *liveness assertion*: the protocol
contract says each frame gets exactly one response, so a read that
does not complete within the deadline is a wedge, reported as
:class:`TimeoutError`.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError, ServeError
from .service import IngestService

__all__ = ["ServiceThread", "LineClient", "FaultInjector",
           "DEFAULT_DEADLINE"]

#: Default liveness deadline (real seconds) for harness operations.
DEFAULT_DEADLINE = 10.0


class ServiceThread:
    """Host an :class:`IngestService` on a private loop in a thread."""

    def __init__(self, service: "Optional[IngestService]" = None,
                 **service_kwargs: Any) -> None:
        if service is not None and service_kwargs:
            raise ConfigurationError(
                "pass either a built service or its kwargs, not both")
        self.service = service or IngestService(**service_kwargs)
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True)
        self._ready = threading.Event()
        self._startup_error: "Optional[BaseException]" = None

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.service.start())
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        self.loop.run_forever()
        # Drain cancellations scheduled by stop() before closing.
        self.loop.run_until_complete(asyncio.sleep(0))
        self.loop.close()

    def start(self, deadline: float = DEFAULT_DEADLINE) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(deadline):
            raise TimeoutError("service did not start within deadline")
        if self._startup_error is not None:
            raise ServeError(
                f"service failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    @property
    def host(self) -> str:
        return self.service.host

    @property
    def port(self) -> int:
        return self.service.port

    def submit(self, coro: Any, deadline: float = DEFAULT_DEADLINE) -> Any:
        """Run a coroutine on the service loop; raise on wedge."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout=deadline)

    def checkpoint_now(self, *, force: bool = True) -> "Dict[str, str]":
        """Synchronously run one checkpoint sweep on the service loop."""
        return self.submit(self.service.checkpoint_due(force=force))

    def stop(self, *, graceful: bool = True,
             deadline: float = DEFAULT_DEADLINE) -> None:
        """Stop the service and its loop; ``graceful=False`` simulates
        a crash (no final checkpoint is written)."""
        if not self._thread.is_alive():
            return
        if graceful:
            self.submit(self.service.stop(), deadline)
        else:
            self.submit(self.service.abort(), deadline)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=deadline)
        if self._thread.is_alive():
            raise TimeoutError("service loop did not stop within deadline")

    def kill(self, deadline: float = DEFAULT_DEADLINE) -> None:
        """Simulated hard crash: no graceful stop, no checkpoint."""
        self.stop(graceful=False, deadline=deadline)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop(graceful=exc_type is None)


class LineClient:
    """Blocking loopback client for the newline-delimited protocol."""

    def __init__(self, host: str, port: int,
                 timeout: float = DEFAULT_DEADLINE) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self._file = self.sock.makefile("rb")
        #: The OSError (if any) hit while sending a deliberately
        #: unterminated frame — the server had already hung up first.
        self.disconnect_error: "Optional[OSError]" = None

    @classmethod
    def for_service(cls, hosted: ServiceThread,
                    timeout: float = DEFAULT_DEADLINE) -> "LineClient":
        return cls(hosted.host, hosted.port, timeout)

    def send_raw(self, data: bytes) -> None:
        """Write arbitrary bytes (no framing added)."""
        self.sock.sendall(data)

    def recv_line(self) -> "Optional[Dict[str, Any]]":
        """Read one response object; None on orderly EOF.

        A response that is not valid JSON violates the wire contract
        and raises immediately (the fuzz suite's core assertion).
        """
        line = self._file.readline()
        if not line:
            return None
        payload = json.loads(line.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ServeError(f"non-object response frame: {payload!r}")
        return payload

    def request(self, obj: "Dict[str, Any]") -> "Dict[str, Any]":
        """One request frame, one response frame."""
        self.send_raw(json.dumps(obj).encode("utf-8") + b"\n")
        payload = self.recv_line()
        if payload is None:
            raise ServeError("connection closed before a response")
        return payload

    def request_lines(self, frames: "List[bytes]"
                      ) -> "List[Dict[str, Any]]":
        """Pipeline raw frames; collect one response per frame until
        the server closes (bad-frame) or all are answered."""
        for frame in frames:
            self.send_raw(frame)
        responses: "List[Dict[str, Any]]" = []
        for _ in frames:
            payload = self.recv_line()
            if payload is None:
                break
            responses.append(payload)
        return responses

    def disconnect_mid_frame(self, partial: bytes = b'{"op": "INS') -> None:
        """Send an unterminated frame fragment and hang up."""
        try:
            self.sock.sendall(partial)
        except OSError as exc:
            # The server hung up first; the disconnect this method
            # exists to cause already happened. Keep the evidence.
            self.disconnect_error = exc
        self.close()

    def close(self) -> None:
        try:
            self._file.close()
            self.sock.close()
        except OSError:
            pass  # double-close on an aborted socket is fine

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


class FaultInjector:
    """Deterministic fault scripting against a hosted service."""

    def __init__(self, hosted: ServiceThread) -> None:
        self.hosted = hosted

    def _router(self, tenant_name: str, task_index: int = 0) -> Any:
        tenant = self.hosted.service.tenants.peek(tenant_name)
        if tenant is None:
            raise ConfigurationError(f"tenant {tenant_name!r} not resident")
        sketch = tenant.monitor._sketches[task_index]
        router = getattr(sketch, "router", None)
        if router is None or not hasattr(router, "inject"):
            raise ConfigurationError(
                "fault injection requires a process-router tenant")
        return router

    def crash_shard(self, tenant_name: str, shard: int = 0,
                    task_index: int = 0) -> None:
        """Kill one shard worker process mid-stream."""
        self._router(tenant_name, task_index).inject(shard, "crash")

    def wait_for_worker_exit(self, tenant_name: str, shard: int = 0,
                             task_index: int = 0,
                             deadline: float = DEFAULT_DEADLINE) -> None:
        """Block until an injected crash has taken the worker down.

        Dispatch is pipelined, so a crash surfaces only once the dead
        worker's error ack is absorbed — and on a loaded host the
        worker may not even be scheduled (to process the injected
        command) before a fast caller gives up.  The worker acks the
        crash *before* exiting, so once the process is gone the error
        ack is guaranteed to be queued and the next commands fail
        deterministically.
        """
        proc = self._router(tenant_name, task_index)._procs[shard]
        proc.join(deadline)
        if proc.is_alive():
            raise TimeoutError(
                f"shard {shard} worker still alive {deadline}s after "
                "the injected crash")

    def stall_shard(self, tenant_name: str, seconds: float,
                    shard: int = 0, task_index: int = 0) -> None:
        """Make one shard worker a slow consumer for ``seconds``."""
        self._router(tenant_name, task_index).inject(shard, "stall", seconds)

    @staticmethod
    def tear_file(path: Any, keep_bytes: int = 100) -> None:
        """Truncate a checkpoint file as a crash mid-write would."""
        with open(path, "r+b") as handle:
            handle.truncate(keep_bytes)
