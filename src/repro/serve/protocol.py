"""The newline-delimited JSON line protocol.

One frame = one UTF-8 JSON object terminated by ``\\n``. Requests name
an operation (``op``) and, except for ``PING`` and service-wide
``STATS``, a tenant. Responses are single JSON object lines:
``{"ok": true, "op": ..., ...}`` on success, or
``{"ok": false, "error": {"code", "message", "retryable"}}`` on
failure. Error codes are a closed vocabulary (:data:`ERROR_CODES`) and
part of the wire contract — see ``docs/serving.md`` for the full
specification and failure matrix.

This module is pure: it parses and validates frames into
:class:`Request` values and renders responses, raising only the typed
:class:`~repro.errors.ProtocolError` family. Everything stateful
(tenants, sketches, checkpoints) lives in :mod:`repro.serve.service`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import (
    BadFrameError,
    ProtocolError,
    ReproError,
    ShardBackpressureError,
    ShardWorkerError,
    TimeError,
)

__all__ = [
    "OPS",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "Request",
    "parse_frame",
    "encode",
    "ok_response",
    "error_response",
    "error_fields",
]

#: The protocol's operation vocabulary.
OPS = frozenset({
    "INSERT", "INSERT_BATCH", "QUERY", "STATS", "CHECKPOINT", "PING",
})

#: The closed error-code vocabulary (wire contract).
ERROR_CODES = frozenset({
    "bad-frame",        # not a parseable protocol line; connection closes
    "bad-request",      # well-formed frame, invalid fields / unknown op
    "unknown-tenant",   # tenant does not exist and cannot be auto-created
    "admission",        # tenant limit or per-request batch cap exceeded
    "quarantined",      # tenant engine failed earlier; commands fail fast
    "backpressure",     # shard queue full past deadline; retryable
    "worker-failed",    # shard worker died mid-command; tenant quarantined
    "time-error",       # timestamp contract violated (backwards, missing)
    "internal",         # unexpected server-side failure
})

#: Default maximum frame length (bytes, newline included).
MAX_FRAME_BYTES = 1 << 20

#: Tenant names are path-safe identifiers (they become checkpoint
#: directory names and metric label values).
_TENANT_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-")
_TENANT_MAX = 64


@dataclass(frozen=True)
class Request:
    """One validated protocol request."""

    op: str
    tenant: Optional[str] = None
    key: Any = None
    keys: "List[Any]" = field(default_factory=list)
    times: "Optional[List[float]]" = None
    t: Optional[float] = None


def _require_tenant(obj: "Dict[str, Any]") -> str:
    tenant = obj.get("tenant")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError("'tenant' must be a non-empty string")
    if len(tenant) > _TENANT_MAX or not set(tenant) <= _TENANT_CHARS:
        raise ProtocolError(
            f"tenant name must match [A-Za-z0-9_.-]{{1,{_TENANT_MAX}}}")
    return tenant


def _valid_key(key: Any) -> Any:
    if isinstance(key, bool) or not isinstance(key, (str, int)):
        raise ProtocolError("keys must be strings or integers")
    if isinstance(key, str) and len(key) > 4096:
        raise ProtocolError("string keys are capped at 4096 characters")
    return key


def _valid_time(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{name!r} must be a number")
    stamp = float(value)
    if stamp != stamp or stamp in (float("inf"), float("-inf")):
        raise ProtocolError(f"{name!r} must be finite")
    return stamp


def parse_frame(line: bytes, *, max_batch: int = 65536) -> Request:
    """Parse and validate one frame into a :class:`Request`.

    Raises :class:`~repro.errors.BadFrameError` when the frame is not a
    JSON object line at all, :class:`~repro.errors.ProtocolError` (code
    ``bad-request``) when it is but its fields are invalid.
    """
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise BadFrameError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BadFrameError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise BadFrameError(
            f"frame must be a JSON object, got {type(obj).__name__}")

    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError("missing or non-string 'op'")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {sorted(OPS)}")

    if op == "PING":
        return Request(op=op)
    if op == "STATS":
        tenant = _require_tenant(obj) if "tenant" in obj else None
        return Request(op=op, tenant=tenant)

    tenant = _require_tenant(obj)
    if op in ("INSERT", "QUERY"):
        if "key" not in obj:
            raise ProtocolError(f"{op} requires 'key'")
        key = _valid_key(obj["key"])
        t = _valid_time(obj["t"], "t") if obj.get("t") is not None else None
        return Request(op=op, tenant=tenant, key=key, t=t)
    if op == "INSERT_BATCH":
        keys = obj.get("keys")
        if not isinstance(keys, list) or not keys:
            raise ProtocolError("INSERT_BATCH requires a non-empty "
                                "'keys' list")
        if len(keys) > max_batch:
            raise ProtocolError(
                f"batch of {len(keys)} exceeds the {max_batch}-item cap",
                code="admission")
        keys = [_valid_key(k) for k in keys]
        times: "Optional[List[float]]" = None
        if obj.get("times") is not None:
            raw = obj["times"]
            if not isinstance(raw, list) or len(raw) != len(keys):
                raise ProtocolError(
                    "'times' must be a list as long as 'keys'")
            times = [_valid_time(v, "times[i]") for v in raw]
        return Request(op=op, tenant=tenant, keys=keys, times=times)
    # CHECKPOINT
    return Request(op=op, tenant=tenant)


def encode(payload: "Dict[str, Any]") -> bytes:
    """Render one response object as a wire frame."""
    return (json.dumps(payload, separators=(",", ":"),
                       default=str) + "\n").encode("utf-8")


def ok_response(op: str, **fields: Any) -> "Dict[str, Any]":
    """A success response for ``op`` with extra result fields."""
    payload: "Dict[str, Any]" = {"ok": True, "op": op}
    payload.update(fields)
    return payload


def error_fields(exc: BaseException) -> "Dict[str, Any]":
    """Map an exception onto the wire error vocabulary.

    The :class:`~repro.errors.ProtocolError` family carries its own
    code; engine faults reuse the shard fault discipline —
    backpressure is the one retryable code, a dead worker is not.
    """
    if isinstance(exc, ProtocolError):
        code, retryable = exc.code, exc.retryable
    elif isinstance(exc, ShardBackpressureError):
        code, retryable = "backpressure", True
    elif isinstance(exc, ShardWorkerError):
        code, retryable = "worker-failed", False
    elif isinstance(exc, TimeError):
        code, retryable = "time-error", False
    elif isinstance(exc, ReproError):
        code, retryable = "bad-request", False
    else:
        code, retryable = "internal", False
    return {"code": code, "message": str(exc) or type(exc).__name__,
            "retryable": retryable}


def error_response(exc: BaseException) -> "Dict[str, Any]":
    """A failure response wrapping :func:`error_fields`."""
    return {"ok": False, "error": error_fields(exc)}
