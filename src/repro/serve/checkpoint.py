"""Rolling tenant checkpoints: atomic writes, torn-file-safe restore.

One checkpoint is a single zip archive holding ``meta.json`` (format
tag, tenant name, :class:`~repro.serve.tenants.TenantConfig` mapping,
stream position) plus one :mod:`repro.serialize` ``.npz`` payload per
enabled task — sharded facades flatten per shard, so a process-router
tenant restores its whole worker pool. Writes go to a dot-prefixed
temporary file in the tenant's directory and land via ``os.replace``,
so a reader never observes a half-written *current* checkpoint; a file
torn by a crash mid-write (or mid-rename on a non-atomic filesystem)
fails zip validation and the loader falls back to the previous intact
generation rather than half-loading. The newest ``keep`` generations
are retained.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import CheckpointError
from ..monitor import ItemBatchMonitor
from ..obs import runtime as _obs
from ..serialize import dumps_sketch, loads_sketch
from .tenants import Tenant, TenantConfig

__all__ = ["CheckpointManager", "RestoredState", "CHECKPOINT_FORMAT"]

#: Format tag embedded in every archive; bumped on layout changes.
CHECKPOINT_FORMAT = "repro-ckpt-1"

_PREFIX = "ckpt-"
_SUFFIX = ".zip"


class RestoredState:
    """A successfully loaded checkpoint: the rebuilt monitor + context."""

    def __init__(self, monitor: ItemBatchMonitor, config: TenantConfig,
                 meta: "Dict[str, Any]", path: Path,
                 fell_back: bool) -> None:
        self.monitor = monitor
        self.config = config
        self.meta = meta
        self.path = path
        #: True when newer checkpoint files existed but were corrupt,
        #: so this state is an older intact generation.
        self.fell_back = fell_back


class CheckpointManager:
    """Writes and restores per-tenant checkpoint generations.

    Parameters
    ----------
    root:
        Directory holding one sub-directory per tenant.
    keep:
        Number of checkpoint generations retained per tenant (>= 1);
        keeping more than one is what makes torn-file fallback possible.
    hooks:
        Optional test-only fault-injection points, by name:
        ``"pre_replace"`` is called with the temporary path after the
        archive is fully written but *before* the atomic rename — a
        hook that truncates the file simulates a crash mid-publish.
    """

    def __init__(self, root: "str | os.PathLike[str]", *, keep: int = 3,
                 hooks: "Optional[Mapping[str, Callable[..., None]]]" = None
                 ) -> None:
        if keep < 1:
            raise CheckpointError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.keep = int(keep)
        self.hooks = dict(hooks or {})

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def tenant_dir(self, name: str) -> Path:
        return self.root / name

    def checkpoints(self, name: str) -> "List[Path]":
        """Intact-candidate checkpoint files, oldest first."""
        directory = self.tenant_dir(name)
        if not directory.is_dir():
            return []
        return sorted(p for p in directory.iterdir()
                      if p.name.startswith(_PREFIX)
                      and p.name.endswith(_SUFFIX))

    def _next_sequence(self, name: str) -> int:
        existing = self.checkpoints(name)
        if not existing:
            return 1
        last = existing[-1].name[len(_PREFIX):-len(_SUFFIX)]
        return int(last) + 1

    def write(self, tenant: Tenant) -> Path:
        """Snapshot one tenant atomically; returns the published path.

        The monitor must be externally quiesced (the service holds the
        tenant's lock): serialising a sharded task barriers its worker
        pool, so the archive holds every shard's state at one point.
        """
        started = perf_counter()
        monitor = tenant.monitor
        directory = self.tenant_dir(tenant.name)
        directory.mkdir(parents=True, exist_ok=True)
        seq = self._next_sequence(tenant.name)
        final = directory / f"{_PREFIX}{seq:08d}{_SUFFIX}"
        tmp = directory / f".tmp-{final.name}"
        meta = {
            "format": CHECKPOINT_FORMAT,
            "tenant": tenant.name,
            "sequence": seq,
            "config": tenant.config.to_meta(),
            "tasks": list(monitor.tasks),
            "position": tenant.position,
            "items": tenant.items,
        }
        try:
            with zipfile.ZipFile(tmp, "w", zipfile.ZIP_STORED) as archive:
                archive.writestr("meta.json", json.dumps(meta, indent=2))
                for task in monitor.tasks:
                    sketch = getattr(monitor,
                                     ItemBatchMonitor._TASK_ATTRS[task])
                    archive.writestr(f"task_{task}.npz",
                                     dumps_sketch(sketch))
            pre_replace = self.hooks.get("pre_replace")
            if pre_replace is not None:
                pre_replace(tmp)
            os.replace(tmp, final)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(
                f"cannot write checkpoint for {tenant.name!r}: {exc}"
            ) from exc
        self._prune(tenant.name)
        tenant.last_checkpoint_position = tenant.position
        tenant.checkpoints_written += 1
        if _obs.ENABLED:
            _obs.record_serve_checkpoint(tenant.name,
                                         perf_counter() - started)
        return final

    def _prune(self, name: str) -> None:
        for stale in self.checkpoints(name)[:-self.keep]:
            stale.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Restoring
    # ------------------------------------------------------------------

    def tenant_names(self) -> "List[str]":
        """Tenants that have at least one checkpoint file on disk."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir()
                      if p.is_dir() and self.checkpoints(p.name))

    def restore(self, name: str,
                config: "Optional[TenantConfig]" = None
                ) -> "Optional[RestoredState]":
        """Load the newest intact checkpoint, falling back on damage.

        Candidates are tried newest-first; a torn or otherwise invalid
        archive is skipped (recorded as an observability event) and the
        next older generation is tried. Returns ``None`` when no intact
        checkpoint exists. A checkpoint either loads completely or not
        at all — the monitor is assembled only after every task payload
        has deserialised.
        """
        candidates = self.checkpoints(name)
        fell_back = False
        for path in reversed(candidates):
            try:
                monitor, cfg, meta = self._load(path, config)
            except (zipfile.BadZipFile, CheckpointError, KeyError,
                    ValueError, OSError) as exc:
                fell_back = True
                if _obs.ENABLED:
                    _obs.record_event(
                        0.0, "warning", "serve.checkpoint_fallback",
                        f"skipping damaged checkpoint {path.name}: {exc}",
                        fields={"tenant": name})
                continue
            return RestoredState(monitor, cfg, meta, path, fell_back)
        return None

    def _load(self, path: Path,
              config: "Optional[TenantConfig]"
              ) -> "tuple[ItemBatchMonitor, TenantConfig, Dict[str, Any]]":
        with zipfile.ZipFile(path) as archive:
            damage = archive.testzip()
            if damage is not None:
                raise CheckpointError(
                    f"{path.name}: CRC mismatch in {damage!r}")
            meta = json.loads(archive.read("meta.json"))
            if meta.get("format") != CHECKPOINT_FORMAT:
                raise CheckpointError(
                    f"{path.name}: unknown format {meta.get('format')!r}")
            tasks = meta["tasks"]
            sketches = {
                task: loads_sketch(archive.read(f"task_{task}.npz"))
                for task in tasks
            }
        cfg = config if config is not None \
            else TenantConfig.from_meta(meta["config"])
        monitor = _assemble_monitor(cfg, tasks, sketches)
        return monitor, cfg, meta

    def purge(self, name: str) -> None:
        """Delete every checkpoint generation for one tenant."""
        for path in self.checkpoints(name):
            path.unlink(missing_ok=True)


def _assemble_monitor(config: TenantConfig, tasks: "List[str]",
                      sketches: "Dict[str, Any]") -> ItemBatchMonitor:
    """Rebuild a monitor around already-restored task sketches.

    The constructor builds throwaway plain sketches (cheap: no worker
    pools are started on this path) which are immediately replaced by
    the restored ones — sharded tasks come back as
    :class:`~repro.shard.ShardedSketch` facades with their saved router
    kind, process pools restarted and rehydrated per shard.
    """
    monitor = ItemBatchMonitor(
        config.window(), memory=config.memory, tasks=tuple(tasks),
        split=dict(config.split) if config.split else None,
        seed=config.seed)
    for task in monitor.tasks:
        attribute = ItemBatchMonitor._TASK_ATTRS[task]
        setattr(monitor, attribute, sketches[task])
    monitor._sketches = [
        getattr(monitor, ItemBatchMonitor._TASK_ATTRS[task])
        for task in monitor.tasks
    ]
    monitor.shards = int(config.shards)
    return monitor
