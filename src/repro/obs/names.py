"""The metric-name catalogue: every registered metric name, as a constant.

Metric names are part of the library's operational contract — dashboards
and alerts reference them by string, so a typo in one instrumentation
site silently forks a series. sketch-lint rule SK106 therefore bans
inline name literals at registration sites (``registry.counter("...")``);
every name lives here, once, and instrumentation imports the constant.

Naming follows the Prometheus conventions: ``repro_`` namespace, an
area segment (``clock``, ``sketch``, ``engine``, ``lock``, ``monitor``,
``bench``), a ``_total`` suffix on counters and a unit suffix
(``_seconds``, ``_bits``, ``_steps``) where one applies. The full
catalogue with per-metric semantics is documented in
``docs/observability.md``.
"""

from __future__ import annotations

__all__ = [
    # clock / sweep telemetry
    "CLOCK_SWEEPS_TOTAL",
    "CLOCK_SWEEP_STEPS_TOTAL",
    "CLOCK_CELLS_CLEANED_TOTAL",
    "CLOCK_SWEEP_LAG_STEPS",
    "CLOCK_FILL_RATIO",
    "CLOCK_ZERO_CELLS",
    "CLOCK_CELL_VALUE",
    # per-sketch operations and state
    "SKETCH_INSERTS_TOTAL",
    "SKETCH_QUERIES_TOTAL",
    "SKETCH_MEMORY_BITS",
    "SKETCH_FILL_RATIO",
    # batch engine
    "ENGINE_BATCH_ITEMS_TOTAL",
    "ENGINE_BATCHES_TOTAL",
    "ENGINE_BATCH_SIZE",
    "ENGINE_BATCH_SECONDS",
    "ENGINE_ITEMS_PER_SEC",
    # concurrency
    "LOCK_ACQUIRES_TOTAL",
    "LOCK_CONTENTION_TOTAL",
    "LOCK_WAIT_SECONDS_TOTAL",
    # monitor facade
    "MONITOR_MEMORY_BITS",
    "MONITOR_SPLIT_RATIO",
    "MONITOR_TASKS",
    # kernel backend
    "KERNEL_INFO",
    # bench harness profiling
    "BENCH_STAGE_SECONDS",
    # accuracy auditing
    "AUDIT_SAMPLED_ITEMS_TOTAL",
    "AUDIT_SHADOW_KEYS",
    "AUDIT_CYCLES_TOTAL",
    "AUDIT_CYCLE_SECONDS",
    "AUDIT_OBSERVED_ERROR",
    "AUDIT_PREDICTED_ERROR",
    "AUDIT_ERROR_RATIO",
    "AUDIT_ERROR_WINDOW_LENGTH",
    "AUDIT_ABS_ERROR",
    "AUDIT_ALERTS_TOTAL",
    # shard router / worker pool
    "SHARD_ITEMS_ROUTED_TOTAL",
    "SHARD_BATCHES_ROUTED_TOTAL",
    "SHARD_QUEUE_DEPTH",
    "SHARD_MERGES_TOTAL",
    "SHARD_MERGE_SECONDS",
    # structured event log
    "OBS_EVENTS_TOTAL",
    # span tracing / flight recorder
    "TRACE_SPANS_TOTAL",
    "TRACE_TRACES_TOTAL",
    "FLIGHT_DUMPS_TOTAL",
    # ingestion service (repro.serve)
    "SERVE_CONNECTIONS_TOTAL",
    "SERVE_CONNECTIONS_OPEN",
    "SERVE_COMMANDS_TOTAL",
    "SERVE_ERRORS_TOTAL",
    "SERVE_ITEMS_TOTAL",
    "SERVE_TENANTS",
    "SERVE_QUARANTINES_TOTAL",
    "SERVE_CHECKPOINTS_TOTAL",
    "SERVE_CHECKPOINT_SECONDS",
    "SERVE_RESTORES_TOTAL",
    # performance ledger (repro.obs.perf)
    "PERF_RECORDS_TOTAL",
    "PERF_COMPARES_TOTAL",
    "PERF_REGRESSIONS_TOTAL",
    "PERF_HEADLINE",
    # span names (repro.obs.trace)
    "SPAN_MONITOR_OBSERVE",
    "SPAN_ENGINE_BATCH",
    "SPAN_LOCK_WAIT",
    "SPAN_SHARD_SCATTER",
    "SPAN_SHARD_INGEST",
    "SPAN_SHARD_ADVANCE",
    "SPAN_SHARD_MERGE",
    "SPAN_SHARD_ACK",
]

# ---------------------------------------------------------------------- clock
#: Sweep executions performed (one ``advance``/``flush``/fused batch
#: that did work counts once).
CLOCK_SWEEPS_TOTAL = "repro_clock_sweeps_total"
#: Individual sweep steps (cell visits) performed by the cleaner.
CLOCK_SWEEP_STEPS_TOTAL = "repro_clock_sweep_steps_total"
#: Cells whose clock reached zero (expired) during cleaning.
CLOCK_CELLS_CLEANED_TOTAL = "repro_clock_cells_cleaned_total"
#: Cleaner lag behind the ideal ``T/(2^s - 2)`` cadence, in steps
#: (0 for exact sweep modes after every operation; < n for deferred).
CLOCK_SWEEP_LAG_STEPS = "repro_clock_sweep_lag_steps"
#: Fraction of clock cells currently non-zero (sampled).
CLOCK_FILL_RATIO = "repro_clock_fill_ratio"
#: Number of clock cells currently zero (sampled).
CLOCK_ZERO_CELLS = "repro_clock_zero_cells"
#: Log-2-bucketed histogram of non-zero cell values (sampled occupancy).
CLOCK_CELL_VALUE = "repro_clock_cell_value"

# --------------------------------------------------------------------- sketch
#: Items inserted, labelled by sketch class (scalar and batch paths).
SKETCH_INSERTS_TOTAL = "repro_sketch_inserts_total"
#: Query operations resolved, labelled by sketch class.
SKETCH_QUERIES_TOTAL = "repro_sketch_queries_total"
#: Accounted memory footprint per task, in bits (gauge).
SKETCH_MEMORY_BITS = "repro_sketch_memory_bits"
#: Estimated-vs-capacity fill per task (fraction of live cells).
SKETCH_FILL_RATIO = "repro_sketch_fill_ratio"

# --------------------------------------------------------------------- engine
#: Items ingested through the batch engine.
ENGINE_BATCH_ITEMS_TOTAL = "repro_engine_batch_items_total"
#: Batches applied, labelled by path (``fused``/``loop``/``deferred``).
ENGINE_BATCHES_TOTAL = "repro_engine_batches_total"
#: Histogram of batch sizes handed to the engine.
ENGINE_BATCH_SIZE = "repro_engine_batch_size"
#: Histogram of wall-clock seconds per applied batch.
ENGINE_BATCH_SECONDS = "repro_engine_batch_seconds"
#: Items/sec of the most recent batch application (gauge).
ENGINE_ITEMS_PER_SEC = "repro_engine_items_per_sec"

# ----------------------------------------------------------------------- lock
#: Lock acquisitions by ThreadSafeSketch's guarded paths.
LOCK_ACQUIRES_TOTAL = "repro_lock_acquires_total"
#: Acquisitions that found the lock held (contended).
LOCK_CONTENTION_TOTAL = "repro_lock_contention_total"
#: Cumulative seconds spent blocked waiting for the lock.
LOCK_WAIT_SECONDS_TOTAL = "repro_lock_wait_seconds_total"

# -------------------------------------------------------------------- monitor
#: Total accounted footprint of an ItemBatchMonitor, in bits.
MONITOR_MEMORY_BITS = "repro_monitor_memory_bits"
#: Configured (normalised) memory split, labelled by task.
MONITOR_SPLIT_RATIO = "repro_monitor_split_ratio"
#: Number of enabled tasks.
MONITOR_TASKS = "repro_monitor_tasks"

# --------------------------------------------------------------------- kernel
#: The active kernel backend, as an info-style gauge: value 1 with
#: labels ``{backend, compiled}`` (``repro.kernels`` selection).
KERNEL_INFO = "repro_kernel_info"

# ---------------------------------------------------------------------- bench
#: Histogram of experiment-harness stage latencies, labelled by stage.
BENCH_STAGE_SECONDS = "repro_bench_stage_seconds"

# ---------------------------------------------------------------------- audit
#: Stream items folded into the shadow-truth tracker (the sampled subset).
AUDIT_SAMPLED_ITEMS_TOTAL = "repro_audit_sampled_items_total"
#: Distinct keys currently held by the shadow tracker (gauge).
AUDIT_SHADOW_KEYS = "repro_audit_shadow_keys"
#: Audit replay cycles executed.
AUDIT_CYCLES_TOTAL = "repro_audit_cycles_total"
#: Wall-clock seconds per audit cycle (log-2 buckets).
AUDIT_CYCLE_SECONDS = "repro_audit_cycle_seconds"
#: Online error estimate from the shadow replay, labelled ``{task, stat}``.
AUDIT_OBSERVED_ERROR = "repro_audit_observed_error"
#: Analytically predicted error at the live configuration, by task.
AUDIT_PREDICTED_ERROR = "repro_audit_predicted_error"
#: Observed / predicted error ratio, by task (1.0 = exactly as modelled).
AUDIT_ERROR_RATIO = "repro_audit_error_ratio"
#: Residual error-window length ``T / (2^s - 2)`` per task (gauge).
AUDIT_ERROR_WINDOW_LENGTH = "repro_audit_error_window_length"
#: Absolute per-key error of audited size/span queries (log-2 buckets).
AUDIT_ABS_ERROR = "repro_audit_abs_error"
#: Drift alerts raised, labelled ``{task, kind}``.
AUDIT_ALERTS_TOTAL = "repro_audit_alerts_total"

# ---------------------------------------------------------------------- shard
#: Items routed to each shard, labelled ``{shard}``.
SHARD_ITEMS_ROUTED_TOTAL = "repro_shard_items_routed_total"
#: Scatter batches dispatched to each shard, labelled ``{shard}``.
SHARD_BATCHES_ROUTED_TOTAL = "repro_shard_batches_routed_total"
#: Pending commands in a worker's queue at dispatch time, labelled
#: ``{shard}`` (gauge; serial routers report 0).
SHARD_QUEUE_DEPTH = "repro_shard_queue_depth"
#: Merged global snapshots built, labelled by sketch class.
SHARD_MERGES_TOTAL = "repro_shard_merges_total"
#: Wall-clock seconds per merged-snapshot build (log-2 buckets).
SHARD_MERGE_SECONDS = "repro_shard_merge_seconds"

# --------------------------------------------------------------------- events
#: Structured observability events recorded, labelled ``{severity, kind}``.
OBS_EVENTS_TOTAL = "repro_obs_events_total"

# ---------------------------------------------------------------------- trace
#: Spans finished into the span ring, labelled by span ``{name}``.
TRACE_SPANS_TOTAL = "repro_trace_spans_total"
#: Sampled root spans started (one per recorded trace).
TRACE_TRACES_TOTAL = "repro_trace_traces_total"
#: Flight-recorder bundles written, labelled by ``{reason}``.
FLIGHT_DUMPS_TOTAL = "repro_flight_dumps_total"

# ---------------------------------------------------------------------- serve
#: Client connections accepted by the ingestion service.
SERVE_CONNECTIONS_TOTAL = "repro_serve_connections_total"
#: Client connections currently open (gauge).
SERVE_CONNECTIONS_OPEN = "repro_serve_connections_open"
#: Protocol commands executed successfully, labelled ``{tenant, op}``.
SERVE_COMMANDS_TOTAL = "repro_serve_commands_total"
#: Error responses sent, labelled by wire error ``{code}``.
SERVE_ERRORS_TOTAL = "repro_serve_errors_total"
#: Stream items ingested through the service, labelled ``{tenant}``.
SERVE_ITEMS_TOTAL = "repro_serve_items_total"
#: Tenants currently resident (gauge).
SERVE_TENANTS = "repro_serve_tenants"
#: Tenants quarantined after an engine failure, labelled ``{tenant}``.
SERVE_QUARANTINES_TOTAL = "repro_serve_quarantines_total"
#: Checkpoints written, labelled ``{tenant}``.
SERVE_CHECKPOINTS_TOTAL = "repro_serve_checkpoints_total"
#: Wall-clock seconds per checkpoint write (log-2 buckets).
SERVE_CHECKPOINT_SECONDS = "repro_serve_checkpoint_seconds"
#: Restore attempts at service start, labelled ``{tenant, outcome}``
#: (``restored``/``fallback``/``fresh``).
SERVE_RESTORES_TOTAL = "repro_serve_restores_total"

# ----------------------------------------------------------------------- perf
#: Benchmark runs appended to the performance ledger, labelled ``{bench}``.
PERF_RECORDS_TOTAL = "repro_perf_records_total"
#: Current-vs-baseline comparisons evaluated, labelled ``{status}``
#: (``improved``/``flat``/``regressed``/``insufficient``/``skipped``).
PERF_COMPARES_TOTAL = "repro_perf_compares_total"
#: Comparisons that classified as an actionable regression, labelled
#: ``{bench}``.
PERF_REGRESSIONS_TOTAL = "repro_perf_regressions_total"
#: Last recorded headline scalar, labelled ``{bench, metric}`` (gauge).
PERF_HEADLINE = "repro_perf_headline"

# ----------------------------------------------------------- span vocabulary
# Span names are part of the same operational contract as metric names:
# trace viewers and the flight-dump tooling match on them, so they live
# here once and instrumentation imports the constant (mirroring SK106's
# discipline for metric names).
#: Root span over one ``ItemBatchMonitor.observe_many`` batch.
SPAN_MONITOR_OBSERVE = "monitor.observe_many"
#: One batch applied by the engine (attrs: sketch, path, items).
SPAN_ENGINE_BATCH = "engine.batch"
#: A contended blocking lock acquisition in ``ThreadSafeSketch``.
SPAN_LOCK_WAIT = "lock.wait"
#: The sharded facade's fan-out over the shard router (attrs: items,
#: shards); its context rides the command queue to the workers.
SPAN_SHARD_SCATTER = "shard.scatter"
#: One ``ingest`` command applied by a shard worker (attrs: shard, items).
SPAN_SHARD_INGEST = "shard.ingest"
#: One ``advance`` (barrier) command applied by a shard worker.
SPAN_SHARD_ADVANCE = "shard.advance"
#: The parent-side merged-snapshot build (barrier + union).
SPAN_SHARD_MERGE = "shard.merge"
#: The parent-side wait for every dispatched command's acknowledgement.
SPAN_SHARD_ACK = "shard.ack"
