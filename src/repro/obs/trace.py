"""Sampled, ring-buffered span tracing for the ingestion pipeline.

Where the metrics registry answers *how much* and the audit plane *how
accurate*, spans answer *where one specific batch spent its time* once
it enters :meth:`~repro.monitor.ItemBatchMonitor.observe_many` and fans
out across engines, locks, and shard workers. A span is a
context-managed timed region with an id, a parent, and a small
attribute payload::

    with trace.span(names.SPAN_SHARD_SCATTER) as sp:
        if sp.recording:
            sp.set("items", count)
        ...

Spans follow the switchboard discipline of :mod:`repro.obs.runtime`:
while ``_obs.ENABLED`` is off (and no worker capture is active),
:func:`span` hands back the shared :data:`NULL_SPAN` — one module-flag
check and one ``ContextVar`` read, no allocation. While on, finished
spans land in a thread-safe :class:`SpanRing` (newest-overwrites, same
read-back shape as the sweep/event rings) and are counted into
``repro_trace_spans_total``; sampling is per *trace*, 1-in-N roots
(``sample_every``), and an unsampled root suppresses its whole subtree.

Cross-process propagation: the sharded facade passes the live scatter
span's :attr:`Span.ctx` down the router's command queues; each worker
wraps command handling in :func:`capture`, which forces span recording
(regardless of the worker's own switchboard), parents the worker's
spans at the remote context, and collects them as dicts. The dicts ride
back to the parent on the ack queue, where the guarded
:func:`record_spans` stitches them into the parent's ring — one trace
per batch, spanning every worker process.

The enabled-mode cost is held to the same <10% budget as the metrics
layer, measured by ``benchmarks/bench_trace_overhead.py``.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from time import time as _wall_time
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from . import names
from . import runtime as _rt

__all__ = [
    "Span",
    "SpanRing",
    "Tracer",
    "NULL_SPAN",
    "span",
    "child_span",
    "capture",
    "record_spans",
    "configure",
    "tracer",
    "snapshot",
    "chrome_trace",
]

#: A propagated span context: ``(trace_id, span_id)``.
SpanContext = Tuple[str, str]

DEFAULT_CAPACITY = 2048
#: Record 1 in N root spans (1 = every trace). 0 turns tracing off
#: entirely, even while the switchboard is enabled.
DEFAULT_SAMPLE_EVERY = 1

#: Process-unique id source; ids embed the pid so spans stitched across
#: worker processes can never collide.
_IDS = itertools.count(1)

#: Sentinel stored in :data:`_CURRENT` while an *unsampled* trace is
#: active: children see it and drop out immediately instead of making
#: fresh (and possibly divergent) sampling decisions.
_UNSAMPLED = object()

#: The active span context of this thread/task: ``None`` (no trace),
#: :data:`_UNSAMPLED`, or a ``(trace_id, span_id)`` tuple.
_CURRENT: "ContextVar[Any]" = ContextVar("repro-trace-current", default=None)


class _CaptureState:
    """Worker-side capture: a remote parent context plus a span sink."""

    __slots__ = ("trace_id", "parent_id", "sink")

    def __init__(self, ctx: SpanContext,
                 sink: "List[Dict[str, Any]]") -> None:
        self.trace_id = str(ctx[0])
        self.parent_id = str(ctx[1])
        self.sink = sink


#: The active capture state (workers only); forces span recording even
#: while the local switchboard is off.
_CAPTURE: "ContextVar[Optional[_CaptureState]]" = ContextVar(
    "repro-trace-capture", default=None)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_IDS):x}"


class _SpanBase:
    """The no-op span surface; :class:`Span` overrides everything."""

    __slots__ = ()

    #: Whether this span is being recorded (attribute sets are kept).
    recording = False

    @property
    def ctx(self) -> "Optional[SpanContext]":
        """Propagatable ``(trace_id, span_id)``, or None when inactive."""
        return None

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (dropped unless :attr:`recording`)."""

    def __enter__(self) -> "_SpanBase":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


#: Shared inert span returned while tracing is off; all methods no-op.
NULL_SPAN = _SpanBase()


class _UnsampledRoot(_SpanBase):
    """Root of a trace the sampler declined: marks the context so the
    whole subtree is dropped, then restores it on exit."""

    __slots__ = ("_token",)

    def __init__(self, token: Any) -> None:
        self._token = token

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        _CURRENT.reset(self._token)
        return False


class Span(_SpanBase):
    """One recorded, context-managed timed region."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "attrs",
                 "start", "duration", "status", "_t0", "_tracer", "_token")

    recording = True

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: "Optional[str]",
                 attrs: "Dict[str, Any]") -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self.start = _wall_time()
        self.duration = 0.0
        self._t0 = perf_counter()
        self._tracer = tracer
        self._token = _CURRENT.set((trace_id, self.span_id))

    @property
    def ctx(self) -> "Optional[SpanContext]":
        return (self.trace_id, self.span_id)

    def set(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def as_dict(self) -> "Dict[str, Any]":
        """JSON-friendly image of the finished span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "status": self.status,
            "pid": os.getpid(),
            "thread": threading.get_ident(),
            "attrs": dict(self.attrs),
        }

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault(
                "error", f"{getattr(exc_type, '__name__', exc_type)}: {exc}")
        self.duration = perf_counter() - self._t0
        _CURRENT.reset(self._token)
        self._tracer._finished(self)
        return False

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id})")


class SpanRing:
    """Thread-safe overwriting ring of the most recent finished spans.

    Entries are the spans' JSON-friendly dicts (local spans and adopted
    worker spans share one representation). Pushes from engine threads,
    lock waiters, and the ack-absorbing parent may interleave, so the
    ring is locked — unlike the single-writer sweep ring.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"ring capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "List[Optional[Dict[str, Any]]]" = \
            [None] * self.capacity
        self._next = 0
        self._total = 0
        self._lock = threading.Lock()

    def push(self, span_dict: "Dict[str, Any]") -> None:
        """Record one finished span, overwriting the oldest when full."""
        with self._lock:
            i = self._next
            self._entries[i] = span_dict
            self._next = (i + 1) % self.capacity
            self._total += 1

    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def total_pushed(self) -> int:
        """Spans ever pushed, including those already overwritten."""
        return self._total

    def spans(self) -> "List[Dict[str, Any]]":
        """The held spans in push order (oldest first)."""
        with self._lock:
            size = min(self._total, self.capacity)
            if self._total <= self.capacity:
                order = range(size)
            else:
                order = ((i + self._next) % self.capacity
                         for i in range(size))
            return [entry for i in order
                    if (entry := self._entries[i]) is not None]

    def clear(self) -> None:
        """Drop all spans (buffer stays allocated)."""
        with self._lock:
            self._entries = [None] * self.capacity
            self._next = 0
            self._total = 0

    def __repr__(self) -> str:
        return (f"SpanRing(capacity={self.capacity}, held={len(self)}, "
                f"total_pushed={self._total})")


class Tracer:
    """Owns the span ring and the per-trace sampling decision."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 sample_every: int = DEFAULT_SAMPLE_EVERY) -> None:
        if sample_every < 0:
            raise ConfigurationError(
                f"sample_every must be >= 0, got {sample_every}")
        self.ring = SpanRing(capacity)
        self.sample_every = int(sample_every)
        self._roots = itertools.count()

    def begin(self, name: str, attrs: "Dict[str, Any]") -> _SpanBase:
        """Open a span under the current context (sampling roots)."""
        parent = _CURRENT.get()
        if parent is _UNSAMPLED:
            return NULL_SPAN
        if parent is not None:
            trace_id, parent_id = parent
            return Span(self, name, trace_id, parent_id, attrs)
        cap = _CAPTURE.get()
        if cap is not None:
            # Remote parent: the dispatching process already sampled.
            return Span(self, name, cap.trace_id, cap.parent_id, attrs)
        if next(self._roots) % self.sample_every:
            return _UnsampledRoot(_CURRENT.set(_UNSAMPLED))
        return Span(self, name, _new_id(), None, attrs)

    def _finished(self, span: Span) -> None:
        payload = span.as_dict()
        cap = _CAPTURE.get()
        if cap is not None:
            cap.sink.append(payload)
        if _rt.ENABLED:
            self.ring.push(payload)
            reg = _rt.registry()
            reg.counter(names.TRACE_SPANS_TOTAL,
                        "Spans finished into the span ring.",
                        labels={"name": span.name}).inc()
            if span.parent_id is None:
                reg.counter(names.TRACE_TRACES_TOTAL,
                            "Sampled root spans started.").inc()


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-wide tracer instance."""
    return _TRACER


def configure(capacity: "Optional[int]" = None,
              sample_every: "Optional[int]" = None) -> Tracer:
    """Replace the process tracer (fresh ring, new sampling rate).

    ``sample_every`` is 1-in-N *traces* (1 records every trace, the
    default; 0 disables tracing while leaving metrics untouched).
    """
    global _TRACER
    _TRACER = Tracer(
        capacity=DEFAULT_CAPACITY if capacity is None else capacity,
        sample_every=(DEFAULT_SAMPLE_EVERY if sample_every is None
                      else sample_every),
    )
    return _TRACER


def span(name: str, **attrs: Any) -> _SpanBase:
    """Open a context-managed span; :data:`NULL_SPAN` while tracing is off.

    Nil-cost discipline: with the switchboard off and no worker capture
    active this is one module-flag check plus one ``ContextVar`` read.
    Callers on hot paths should defer expensive attribute computation
    behind ``sp.recording`` rather than passing it as ``**attrs``.
    """
    if _rt.ENABLED:
        if _TRACER.sample_every:
            return _TRACER.begin(name, attrs)
        return NULL_SPAN
    if _CAPTURE.get() is not None:
        return _TRACER.begin(name, attrs)
    return NULL_SPAN


def child_span(name: str, **attrs: Any) -> _SpanBase:
    """Open a span only if a trace is already active — never a root.

    For instrumentation points inside reusable building blocks (the
    batch engine): under a monitor root or a worker capture they join
    the trace as children, but standalone use of the block (e.g. raw
    ``sketch.insert_many``) opens no trace per call — which keeps the
    metrics layer's enabled-overhead budget independent of tracing.
    """
    if _CURRENT.get() is None and _CAPTURE.get() is None:
        return NULL_SPAN
    return span(name, **attrs)


@contextmanager
def capture(ctx: SpanContext,
            sink: "List[Dict[str, Any]]") -> "Iterator[List[Dict[str, Any]]]":
    """Record spans opened in this block into ``sink``, parented at ``ctx``.

    Worker-side half of cross-process propagation: ``ctx`` is the
    ``(trace_id, span_id)`` that rode in on the command queue. Recording
    is forced for the block — the dispatching process made the sampling
    decision — so it works even though the worker's own switchboard is
    off. The collected dicts are shipped back on the ack queue and
    adopted by :func:`record_spans`.
    """
    token = _CAPTURE.set(_CaptureState(ctx, sink))
    try:
        yield sink
    finally:
        _CAPTURE.reset(token)


def record_spans(spans: "Iterable[Mapping[str, Any]]") -> None:
    """Adopt finished span dicts (a worker's ack payload) into the ring.

    A recorder in the :mod:`repro.obs.runtime` sense: call sites on hot
    paths must guard with ``_obs.ENABLED`` (enforced by SK111).
    """
    ring = _TRACER.ring
    reg = _rt.registry()
    for entry in spans:
        payload = dict(entry)
        ring.push(payload)
        reg.counter(names.TRACE_SPANS_TOTAL,
                    "Spans finished into the span ring.",
                    labels={"name": str(payload.get("name", "?"))}).inc()


def snapshot() -> "Dict[str, Any]":
    """JSON-friendly image of the span ring (for ``/trace.json`` and
    flight-recorder bundles)."""
    ring = _TRACER.ring
    return {
        "capacity": ring.capacity,
        "total_pushed": ring.total_pushed,
        "sample_every": _TRACER.sample_every,
        "spans": ring.spans(),
    }


def chrome_trace(
    spans: "Optional[Iterable[Mapping[str, Any]]]" = None,
) -> "Dict[str, Any]":
    """Render spans as a Chrome trace-event document.

    The returned dict serialises to a file loadable by Perfetto
    (ui.perfetto.dev) and ``chrome://tracing``: complete (``"ph": "X"``)
    events with microsecond timestamps, one track per pid/thread, span
    attributes under ``args``.
    """
    if spans is None:
        spans = _TRACER.ring.spans()
    events: "List[Dict[str, Any]]" = []
    for entry in spans:
        args = dict(entry.get("attrs") or {})
        args["trace_id"] = entry.get("trace_id")
        args["span_id"] = entry.get("span_id")
        if entry.get("parent_id"):
            args["parent_id"] = entry["parent_id"]
        args["status"] = entry.get("status", "ok")
        events.append({
            "name": str(entry.get("name", "?")),
            "cat": "repro",
            "ph": "X",
            "ts": float(entry.get("start", 0.0)) * 1e6,
            "dur": float(entry.get("duration", 0.0)) * 1e6,
            "pid": int(entry.get("pid", 0)),
            "tid": int(entry.get("thread", 0)),
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _on_fresh_enable() -> None:
    # Registered with the switchboard: enable(fresh=True) starts every
    # ring from empty, the span ring included.
    _TRACER.ring.clear()


_rt.register_reset_hook(_on_fresh_enable)
