"""Black-box flight recorder: crash-time JSON bundles of recent state.

A worker crash, a backpressure trip, or a sanitizer violation usually
surfaces as one typed exception with everything that led up to it gone.
The flight recorder keeps that history: when installed, it reacts to
:class:`~repro.errors.ShardWorkerError`,
:class:`~repro.errors.ShardBackpressureError`, and
:class:`~repro.qa.sanitizer.SanitizerError` (via a lazy hook in their
constructors — see :func:`notify_crash`) by writing a self-contained
JSON bundle to a configurable directory::

    from repro.obs import flight
    flight.install("flightdumps")          # or REPRO_FLIGHT_DIR
    ...
    # later, after a ShardWorkerError:
    flight.last_dump_path()                # -> flightdumps/flight-....json

Each bundle holds the last-N spans from the trace ring (stitched worker
spans included), both telemetry rings, a full metrics snapshot, the
active kernel backend, and the triggering error — enough to reconstruct
the moment of failure offline with ``python -m repro.obs trace --input``.

Bundles can also be cut on demand: :meth:`FlightRecorder.dump` directly,
the ``python -m repro.obs trace`` CLI, or a POSIX signal registered via
``install(signum=...)``. Dumping never raises into the caller — a
recorder failure must not mask the crash it is recording.
"""

from __future__ import annotations

import itertools
import json
import os
import re
import signal as _signal
import threading
from time import time as _wall_time
from typing import Any, Dict, List, Optional, Union

from . import names
from . import runtime as _rt
from . import trace as _trace

__all__ = [
    "FlightRecorder",
    "DEFAULT_DIRECTORY",
    "ENV_DIR",
    "install",
    "uninstall",
    "recorder",
    "last_dump_path",
    "notify_crash",
]

#: Fallback dump directory when neither the ``install`` argument nor
#: :data:`ENV_DIR` names one (git-ignored).
DEFAULT_DIRECTORY = "flightdumps"
#: Environment variable naming the dump directory.
ENV_DIR = "REPRO_FLIGHT_DIR"
#: Bundles kept per directory before the oldest are pruned.
DEFAULT_KEEP = 8

_FORMAT = "repro-flight-1"

_SAFE_REASON = re.compile(r"[^A-Za-z0-9_.-]+")


def _error_payload(error: "Optional[BaseException]") -> "Optional[Dict[str, Any]]":
    if error is None:
        return None
    payload: "Dict[str, Any]" = {
        "type": type(error).__name__,
        "message": str(error),
    }
    for attr in ("failed", "pending"):
        value = getattr(error, attr, None)
        if value:
            try:
                payload[attr] = json.loads(json.dumps(value, default=str))
            except (TypeError, ValueError):
                payload[attr] = str(value)
    return payload


class FlightRecorder:
    """Writes crash bundles to ``directory``, keeping the newest ``keep``."""

    def __init__(self, directory: "Optional[str]" = None,
                 keep: int = DEFAULT_KEEP) -> None:
        self.directory = str(
            directory or os.environ.get(ENV_DIR) or DEFAULT_DIRECTORY)
        self.keep = max(1, int(keep))
        self.last_dump_path: "Optional[str]" = None
        self._counter = itertools.count(1)
        self._lock = threading.Lock()

    def bundle(self, reason: str,
               error: "Optional[BaseException]" = None) -> "Dict[str, Any]":
        """Assemble (without writing) one self-contained crash bundle."""
        # Imported lazily: the obs plane must not pull in the kernel
        # layer (or numpy backends) just because a recorder exists.
        from ..kernels import kernel_info
        return {
            "format": _FORMAT,
            "reason": reason,
            "wall_time": _wall_time(),
            "pid": os.getpid(),
            "error": _error_payload(error),
            "kernel": kernel_info(),
            "trace": _trace.snapshot(),
            "rings": _rt.rings_snapshot(),
            "metrics": _rt.registry().snapshot(),
        }

    def dump(self, reason: str,
             error: "Optional[BaseException]" = None) -> str:
        """Write one bundle and return its path (pruning old bundles)."""
        payload = self.bundle(reason, error)
        safe = _SAFE_REASON.sub("-", reason).strip("-") or "manual"
        with self._lock:
            os.makedirs(self.directory, exist_ok=True)
            name = f"flight-{os.getpid()}-{next(self._counter):04d}-{safe}.json"
            path = os.path.join(self.directory, name)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, default=str)
            self.last_dump_path = path
            self._prune()
        if _rt.ENABLED:
            _rt.registry().counter(
                names.FLIGHT_DUMPS_TOTAL,
                "Flight-recorder bundles written.",
                labels={"reason": safe}).inc()
            _rt.record_event(
                time=0.0, severity="critical", kind="flight-dump",
                message=f"flight bundle written: {path}",
                fields={"reason": safe, "path": path})
        return path

    def _prune(self) -> None:
        try:
            bundles = sorted(
                entry for entry in os.listdir(self.directory)
                if entry.startswith("flight-") and entry.endswith(".json"))
        except OSError:
            return
        for stale in bundles[:-self.keep]:
            try:
                os.remove(os.path.join(self.directory, stale))
            except OSError:
                pass

    def __repr__(self) -> str:
        return (f"FlightRecorder(directory={self.directory!r}, "
                f"keep={self.keep}, last={self.last_dump_path!r})")


_RECORDER: "Optional[FlightRecorder]" = None


def install(directory: "Union[str, FlightRecorder, None]" = None, *,
            keep: int = DEFAULT_KEEP,
            signum: "Optional[int]" = None) -> FlightRecorder:
    """Arm the flight recorder process-wide.

    Once installed, shard-worker/backpressure/sanitizer errors dump a
    bundle automatically (their constructors call :func:`notify_crash`).
    ``signum`` additionally registers a signal handler (e.g.
    ``signal.SIGUSR1``) that cuts an on-demand bundle — main thread
    only, as CPython requires.
    """
    global _RECORDER
    if isinstance(directory, FlightRecorder):
        _RECORDER = directory
    else:
        _RECORDER = FlightRecorder(directory, keep=keep)
    if signum is not None:
        _signal.signal(
            signum,
            lambda _sig, _frame: notify_crash(f"signal-{int(signum)}", None))
    return _RECORDER


def uninstall() -> None:
    """Disarm the recorder; crash notifications become no-ops again."""
    global _RECORDER
    _RECORDER = None


def recorder() -> "Optional[FlightRecorder]":
    """The installed recorder, or None."""
    return _RECORDER


def last_dump_path() -> "Optional[str]":
    """Path of the most recent bundle, or None."""
    rec = _RECORDER
    return rec.last_dump_path if rec is not None else None


def notify_crash(reason: str,
                 error: "Optional[BaseException]" = None) -> "Optional[str]":
    """Crash hook: dump a bundle if a recorder is installed.

    Called from exception constructors (through a lazy ``sys.modules``
    lookup, so merely raising never imports this module). Swallows every
    exception — the bundle is best-effort and must never mask the error
    being recorded.
    """
    rec = _RECORDER
    if rec is None:
        return None
    try:
        return rec.dump(reason, error)
    except Exception:
        return None
