"""Exposition formats for the metrics registry.

Two encodings of one registry:

- :func:`prometheus_text` — the Prometheus text format (``# HELP`` /
  ``# TYPE`` headers, cumulative ``_bucket{le=...}`` histogram series,
  ``_sum`` / ``_count``), suitable for a ``/metrics`` endpoint. The
  matching :func:`parse_prometheus` reads the format back into plain
  samples so tests can prove the exposition is lossless.
- :func:`snapshot_json` / :func:`registry_from_snapshot` — a JSON
  image of every series (including raw per-bucket counts and bounds)
  that reconstructs an equivalent registry, used by the benchmark
  artifact upload and the CLI's ``--format json``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from ..errors import ConfigurationError
from .registry import Counter, Gauge, Histogram, MetricsRegistry, NullRegistry

__all__ = [
    "prometheus_text",
    "parse_prometheus",
    "snapshot_json",
    "registry_from_snapshot",
    "PrometheusSample",
]

#: One parsed sample: ``(series_name, labels, value)``.
PrometheusSample = Tuple[str, Dict[str, str], float]


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _unescape_help(text: str) -> str:
    # A left-to-right scan, not chained str.replace: replacing ``\n``
    # first would corrupt help text containing a literal backslash
    # followed by ``n`` (escaped as ``\\n``), and replacing ``\\``
    # first would manufacture a fresh ``\n`` escape out of ``\\\n``.
    out: List[str] = []
    i = 0
    while i < len(text):
        if text[i] == "\\" and i + 1 < len(text):
            nxt = text[i + 1]
            out.append({"n": "\n", "\\": "\\"}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")
    )


def _render_labels(labels: "Mapping[str, str]") -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: "MetricsRegistry | NullRegistry") -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_headers: set = set()
    for metric in registry:
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.bounds, cumulative):
                labels = dict(metric.labels)
                labels["le"] = _fmt(float(bound))
                lines.append(
                    f"{metric.name}_bucket{_render_labels(labels)} {int(count)}"
                )
            labels = dict(metric.labels)
            labels["le"] = "+Inf"
            lines.append(
                f"{metric.name}_bucket{_render_labels(labels)} {metric.count}"
            )
            base = _render_labels(metric.labels)
            lines.append(f"{metric.name}_sum{base} {_fmt(metric.sum)}")
            lines.append(f"{metric.name}_count{base} {metric.count}")
        elif isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{_render_labels(metric.labels)} "
                f"{_fmt(metric.value)}"
            )
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label block {text!r}"
        j = eq + 2
        out: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                nxt = text[j + 1]
                out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                j += 2
            else:
                out.append(text[j])
                j += 1
        labels[key] = "".join(out)
        i = j + 1
    return labels


def parse_prometheus(text: str) -> "Dict[str, Dict[str, Any]]":
    """Parse Prometheus text exposition into families of samples.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(series_name, labels, value), ...]}}``. Histogram ``_bucket`` /
    ``_sum`` / ``_count`` series are attached to their family. Used by
    the round-trip tests; handles exactly the subset this package emits.
    """
    families: "Dict[str, Dict[str, Any]]" = {}

    def family_for(series: str) -> "Dict[str, Any]":
        for suffix in ("_bucket", "_sum", "_count"):
            base = series[: -len(suffix)] if series.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                return families[base]
        return families.setdefault(
            series, {"type": "untyped", "help": "", "samples": []}
        )

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            entry = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )
            entry["help"] = _unescape_help(help_text)
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            entry = families.setdefault(
                name, {"type": "untyped", "help": "", "samples": []}
            )
            entry["type"] = kind
        elif line.startswith("#"):
            continue
        else:
            if "{" in line:
                series = line[: line.index("{")]
                rest = line[line.index("{") + 1:]
                label_text, _, value_text = rest.rpartition("} ")
                labels = _parse_labels(label_text)
            else:
                series, _, value_text = line.rpartition(" ")
                labels = {}
            value = float(value_text)
            family_for(series)["samples"].append((series, labels, value))
    return families


def snapshot_json(registry: "MetricsRegistry | NullRegistry",
                  indent: "int | None" = 2,
                  rings: "Mapping[str, Any] | None" = None) -> str:
    """The registry's :meth:`snapshot` serialised as JSON text.

    ``rings`` (the payload of :func:`repro.obs.runtime.rings_snapshot`)
    is embedded under a ``"rings"`` key when given — the sweep trace and
    event log ride along with the metric series in ``/metrics.json``
    and ``python -m repro.obs --rings``. The key is ignored by
    :func:`registry_from_snapshot`, so round-tripping the metric series
    through a rebuild still works.
    """
    payload: "Dict[str, Any]" = dict(registry.snapshot())
    if rings is not None:
        payload["rings"] = dict(rings)
    return json.dumps(payload, indent=indent, sort_keys=True)


def registry_from_snapshot(
    snapshot: "Mapping[str, Any] | str",
) -> MetricsRegistry:
    """Rebuild a registry from a :meth:`snapshot` payload (or JSON text).

    The result snapshots back to the same payload — the JSON encoding
    is lossless for every metric kind.
    """
    if isinstance(snapshot, str):
        snapshot = json.loads(snapshot)
    if not isinstance(snapshot, Mapping):
        raise ConfigurationError("snapshot payload must be a JSON object")
    registry = MetricsRegistry()
    for entry in snapshot.get("counters", ()):
        counter = registry.counter(entry["name"], entry.get("help", ""),
                                   labels=entry.get("labels") or None)
        counter.inc(float(entry["value"]))
    for entry in snapshot.get("gauges", ()):
        gauge = registry.gauge(entry["name"], entry.get("help", ""),
                               labels=entry.get("labels") or None)
        gauge.set(float(entry["value"]))
    for entry in snapshot.get("histograms", ()):
        histogram = registry.histogram(
            entry["name"], entry.get("help", ""),
            labels=entry.get("labels") or None,
            bounds=np.asarray(entry["bounds"], dtype=np.float64),
        )
        counts = [int(c) for c in entry["counts"]]
        if len(counts) != len(histogram.bucket_counts):
            raise ConfigurationError(
                f"snapshot histogram {entry['name']!r} has "
                f"{len(counts)} buckets, expected "
                f"{len(histogram.bucket_counts)}"
            )
        histogram.bucket_counts[:] = counts
        histogram.sum = float(entry["sum"])
        histogram.count = int(entry["count"])
    return registry
