"""Metric primitives and the registry that owns them.

Three instrument kinds, modelled on the Prometheus data model:

- :class:`Counter` — a monotonically increasing float (events, items);
- :class:`Gauge` — a settable float (lag, fill ratio, footprint);
- :class:`Histogram` — a log-scale bucketed distribution. A scalar
  observation is a bisect into pre-computed bucket bounds plus a plain
  list increment (no per-event allocation, no numpy scalar stores on
  the hot path), and :meth:`Histogram.observe_many` folds a whole
  numpy batch into the buckets with one ``bincount``.

A :class:`MetricsRegistry` interns metrics by ``(name, labels)``:
registering the same series twice returns the same object, so
instrumentation sites can re-register on every event without growing
state. Null twins (:data:`NULL_REGISTRY`) accept the same calls as
no-ops — the module-level disabled default, mirroring the sanitizer's
opt-in pattern.

Metric *names* are registered constants from :mod:`repro.obs.names`
(sketch-lint rule SK106 bans inline literals at registration sites).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "NULL_REGISTRY",
    "SECONDS_BOUNDS",
    "SIZE_BOUNDS",
]

#: Prometheus metric-name grammar.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Log-2 duration buckets, ~1µs .. 64s — the default for timers.
SECONDS_BOUNDS: "np.ndarray" = np.power(2.0, np.arange(-20, 7, dtype=np.float64))

#: Log-2 magnitude buckets, 1 .. 16M — the default for sizes and counts.
SIZE_BOUNDS: "np.ndarray" = np.power(2.0, np.arange(0, 25, dtype=np.float64))

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: "Mapping[str, str] | None") -> LabelsKey:
    if not labels:
        return ()
    for key, value in labels.items():
        if not _LABEL_RE.match(key):
            raise ConfigurationError(f"invalid label name {key!r}")
        if not isinstance(value, str):
            raise ConfigurationError(
                f"label values must be strings, got {value!r} for {key!r}"
            )
    return tuple(sorted(labels.items()))


class _Metric:
    """Shared identity of one metric series."""

    kind = "untyped"
    __slots__ = ("name", "help", "labels")

    def __init__(self, name: str, help: str = "",
                 labels: "Mapping[str, str] | None" = None):
        self.name = name
        self.help = help
        self.labels: Dict[str, str] = dict(_labels_key(labels))


class Counter(_Metric):
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, help: str = "",
                 labels: "Mapping[str, str] | None" = None):
        super().__init__(name, help, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, help: str = "",
                 labels: "Mapping[str, str] | None" = None):
        super().__init__(name, help, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(_Metric):
    """A log-scale bucketed distribution (fixed buckets, allocation-free).

    ``bounds`` is an increasing array of upper bucket bounds
    (Prometheus ``le`` semantics: bucket ``i`` counts observations
    ``<= bounds[i]``); one implicit overflow bucket (``+Inf``) follows.
    Defaults to the log-2 :data:`SIZE_BOUNDS`. ``bucket_counts`` is a
    plain Python list — integer list stores are far cheaper than numpy
    scalar stores, and :meth:`observe` runs on instrumented hot paths.
    """

    kind = "histogram"
    __slots__ = ("bounds", "_bounds_list", "bucket_counts", "sum", "count")

    def __init__(self, name: str, help: str = "",
                 labels: "Mapping[str, str] | None" = None,
                 bounds: "np.ndarray | None" = None):
        super().__init__(name, help, labels)
        if bounds is None:
            bounds = SIZE_BOUNDS
        self.bounds = np.asarray(bounds, dtype=np.float64)
        if self.bounds.ndim != 1 or self.bounds.size == 0:
            raise ConfigurationError(
                f"histogram {name} needs a 1-d, non-empty bounds array"
            )
        if np.any(self.bounds[1:] <= self.bounds[:-1]):
            raise ConfigurationError(
                f"histogram {name} bounds must be strictly increasing"
            )
        # A plain-list twin of bounds: bisect on a list is several times
        # faster than a scalar np.searchsorted, and observe() is the
        # per-event hot path.
        self._bounds_list = [float(b) for b in self.bounds]
        self.bucket_counts: "List[int]" = [0] * (self.bounds.size + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self._bounds_list, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Any) -> None:
        """Record a whole numpy batch of observations in one pass."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        indexes = np.searchsorted(self.bounds, values.ravel(), side="left")
        binned = np.bincount(indexes, minlength=len(self.bucket_counts))
        counts = self.bucket_counts
        for i, c in enumerate(binned.tolist()):
            if c:
                counts[i] += c
        self.sum += float(values.sum())
        self.count += int(values.size)

    def cumulative_counts(self) -> np.ndarray:
        """Prometheus-style cumulative bucket counts (``+Inf`` last)."""
        return np.cumsum(self.bucket_counts, dtype=np.int64)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucketed distribution.

        Locates the bucket holding the ``q * count``-th observation and
        interpolates *geometrically* within it — the right interpolation
        for log-scale buckets, where observations are closer to
        log-uniform than uniform. The result is monotone in ``q``.
        Conventions at the edges: an empty histogram returns ``0.0``;
        the first bucket's unknown lower edge is taken as half its upper
        bound; quantiles landing in the ``+Inf`` overflow bucket clamp
        to the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        bounds = self._bounds_list
        cumulative = 0
        for i, in_bucket in enumerate(self.bucket_counts):
            if in_bucket and cumulative + in_bucket >= target:
                if i >= len(bounds):
                    return bounds[-1]
                hi = bounds[i]
                lo = bounds[i - 1] if i > 0 else (hi / 2.0 if hi > 0 else hi)
                frac = max(0.0, (target - cumulative) / in_bucket)
                if 0.0 < lo < hi:
                    return lo * (hi / lo) ** frac
                return lo + (hi - lo) * frac
            cumulative += in_bucket
        return bounds[-1]


class MetricsRegistry:
    """Owns metric series; interns them by ``(name, labels)``.

    Registration is idempotent: asking for an existing series returns
    the same object (the ``help``/``bounds`` of the first registration
    win). Re-registering a name with a different *kind* raises —
    that is always an instrumentation bug.
    """

    def __init__(self) -> None:
        self._metrics: "Dict[Tuple[str, LabelsKey], _Metric]" = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind: str, factory: Any, name: str,
                       help: str, labels: "Mapping[str, str] | None",
                       **kwargs: Any) -> Any:
        if not _NAME_RE.match(name):
            raise ConfigurationError(f"invalid metric name {name!r}")
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a "
                    f"{metric.kind}, cannot re-register as a {kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is not None:
                if metric.kind != kind:
                    raise ConfigurationError(
                        f"metric {name!r} already registered as a "
                        f"{metric.kind}, cannot re-register as a {kind}"
                    )
                return metric
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {known}, "
                    f"cannot re-register as a {kind}"
                )
            metric = factory(name, help, labels, **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = kind
            return metric

    def counter(self, name: str, help: str = "",
                labels: "Mapping[str, str] | None" = None) -> Counter:
        """Get or create the counter series ``name``/``labels``."""
        return self._get_or_create("counter", Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: "Mapping[str, str] | None" = None) -> Gauge:
        """Get or create the gauge series ``name``/``labels``."""
        return self._get_or_create("gauge", Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: "Mapping[str, str] | None" = None,
                  bounds: "np.ndarray | None" = None) -> Histogram:
        """Get or create the histogram series ``name``/``labels``."""
        return self._get_or_create("histogram", Histogram, name, help,
                                   labels, bounds=bounds)

    def __iter__(self) -> "Iterator[_Metric]":
        """All series, ordered by (name, labels) for stable exposition."""
        return iter(sorted(self._metrics.values(),
                           key=lambda m: (m.name, sorted(m.labels.items()))))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str,
            labels: "Mapping[str, str] | None" = None) -> "Optional[_Metric]":
        """Look up a series without creating it."""
        return self._metrics.get((name, _labels_key(labels)))

    def snapshot(self) -> "Dict[str, List[dict]]":
        """JSON-serialisable image of every registered series.

        Pure-python payload (lists, floats, ints) — round-trips through
        ``json.dumps``/``loads`` and back into a registry via
        :func:`repro.obs.export.registry_from_snapshot`.
        """
        out: Dict[str, List[dict]] = {"counters": [], "gauges": [],
                                      "histograms": []}
        for metric in self:
            entry: "Dict[str, Any]" = {
                "name": metric.name,
                "help": metric.help,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["bounds"] = [float(b) for b in metric.bounds]
                entry["counts"] = [int(c) for c in metric.bucket_counts]
                entry["sum"] = float(metric.sum)
                entry["count"] = int(metric.count)
                out["histograms"].append(entry)
            elif isinstance(metric, Counter):
                entry["value"] = float(metric.value)
                out["counters"].append(entry)
            elif isinstance(metric, Gauge):
                entry["value"] = float(metric.value)
                out["gauges"].append(entry)
        return out


class NullCounter:
    """No-op :class:`Counter` twin."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    """No-op :class:`Gauge` twin."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    """No-op :class:`Histogram` twin."""

    kind = "histogram"
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Any) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """The disabled default: same surface as a registry, all no-ops.

    Shared singletons mean user code can instrument unconditionally
    (``obs.registry().counter(...).inc()``) and pay only a couple of
    attribute lookups while observability is off.
    """

    def counter(self, name: str, help: str = "",
                labels: "Mapping[str, str] | None" = None) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "",
              labels: "Mapping[str, str] | None" = None) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, help: str = "",
                  labels: "Mapping[str, str] | None" = None,
                  bounds: "np.ndarray | None" = None) -> NullHistogram:
        return _NULL_HISTOGRAM

    def __iter__(self) -> "Iterator[_Metric]":
        return iter(())

    def __len__(self) -> int:
        return 0

    def get(self, name: str,
            labels: "Mapping[str, str] | None" = None) -> None:
        return None

    def snapshot(self) -> "Dict[str, List[dict]]":
        return {"counters": [], "gauges": [], "histograms": []}


#: The process-wide no-op registry returned while observability is off.
NULL_REGISTRY = NullRegistry()
