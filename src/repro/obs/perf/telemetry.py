"""Explanatory telemetry for perf records: obs-registry metric deltas.

A throughput number alone says *that* a run regressed; the registry
says *why*. This module reduces a full metrics snapshot to the small
set of explanatory scalars worth carrying in every
:class:`~repro.obs.perf.record.PerfRecord` — cells cleaned, sweep
steps and lag, lock wait/contention, engine batch counts and timing —
so a regression report can print "throughput −18%, lock wait ×3"
instead of a bare verdict.

Two entry points:

- :func:`aggregate_snapshot` reduces a registry snapshot (the output
  of :meth:`MetricsRegistry.snapshot`) to the explanatory dict —
  counters summed across label sets, gauges at their worst (max)
  label set, histograms as ``_sum``/``_count`` pairs;
- :class:`capture_delta` is a context manager measuring the live
  registry across a timed section (after-minus-before on every
  counter/histogram scalar), for callers that instrument their own
  sections rather than archiving whole fresh-registry snapshots.

Perf's own instrumentation (ledger appends, comparison verdicts) also
lives here, published under the ``repro_perf_*`` names from
:mod:`repro.obs.names`; call sites gate on ``_obs.ENABLED``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from .. import names
from .. import runtime as _obs

__all__ = [
    "DELTA_COUNTERS",
    "DELTA_GAUGES",
    "DELTA_HISTOGRAMS",
    "aggregate_snapshot",
    "capture_delta",
    "delta_between",
    "publish_record",
    "publish_compare",
]

#: Counter series carried as explanatory telemetry (summed over labels).
DELTA_COUNTERS = (
    names.CLOCK_SWEEPS_TOTAL,
    names.CLOCK_SWEEP_STEPS_TOTAL,
    names.CLOCK_CELLS_CLEANED_TOTAL,
    names.LOCK_ACQUIRES_TOTAL,
    names.LOCK_CONTENTION_TOTAL,
    names.LOCK_WAIT_SECONDS_TOTAL,
    names.ENGINE_BATCH_ITEMS_TOTAL,
    names.ENGINE_BATCHES_TOTAL,
    names.OBS_EVENTS_TOTAL,
    names.AUDIT_CYCLES_TOTAL,
    names.SHARD_MERGES_TOTAL,
)

#: Gauge series carried at their worst (max) label set.
DELTA_GAUGES = (
    names.CLOCK_SWEEP_LAG_STEPS,
    names.CLOCK_FILL_RATIO,
)

#: Histogram series carried as ``_sum``/``_count`` scalars.
DELTA_HISTOGRAMS = (
    names.ENGINE_BATCH_SECONDS,
    names.ENGINE_BATCH_SIZE,
    names.SHARD_MERGE_SECONDS,
)


def aggregate_snapshot(snapshot: "Optional[Mapping[str, Any]]",
                       ) -> "Dict[str, float]":
    """Reduce a registry snapshot to the explanatory scalar dict.

    Accepts the JSON shape of :meth:`MetricsRegistry.snapshot`
    (``{"counters": [...], "gauges": [...], "histograms": [...]}``);
    ``None`` or an empty snapshot reduces to ``{}``. Counters sum over
    label sets (total work is what explains a slowdown), gauges take
    the max (the worst shard/task is the story), histograms contribute
    their ``_sum`` and ``_count``.
    """
    out: "Dict[str, float]" = {}
    if not snapshot:
        return out
    wanted_counters = set(DELTA_COUNTERS)
    wanted_gauges = set(DELTA_GAUGES)
    wanted_histograms = set(DELTA_HISTOGRAMS)
    for entry in snapshot.get("counters", ()):
        name = entry.get("name")
        if name in wanted_counters:
            out[name] = out.get(name, 0.0) + float(entry.get("value", 0.0))
    for entry in snapshot.get("gauges", ()):
        name = entry.get("name")
        if name in wanted_gauges:
            value = float(entry.get("value", 0.0))
            out[name] = max(out.get(name, value), value)
    for entry in snapshot.get("histograms", ()):
        name = entry.get("name")
        if name in wanted_histograms:
            out[f"{name}_sum"] = (out.get(f"{name}_sum", 0.0)
                                  + float(entry.get("sum", 0.0)))
            out[f"{name}_count"] = (out.get(f"{name}_count", 0.0)
                                    + float(entry.get("count", 0.0)))
    return out


def delta_between(before: "Mapping[str, float]",
                  after: "Mapping[str, float]") -> "Dict[str, float]":
    """After-minus-before on monotonic keys, max on gauge keys."""
    gauge_keys = set(DELTA_GAUGES)
    out: "Dict[str, float]" = {}
    for key, value in after.items():
        if key in gauge_keys:
            out[key] = value
        else:
            out[key] = value - before.get(key, 0.0)
    return out


class capture_delta:
    """``with capture_delta() as cap:`` — metric deltas over a section.

    Reads the live registry on entry and exit; ``cap.delta`` holds the
    after-minus-before explanatory dict. While instrumentation is
    disabled the capture is inert and ``cap.delta`` stays empty, so
    callers need no guard of their own.
    """

    def __init__(self) -> None:
        self.delta: "Dict[str, float]" = {}
        self._before: "Dict[str, float]" = {}
        self._active = False

    def __enter__(self) -> "capture_delta":
        self._active = _obs.ENABLED
        if self._active:
            self._before = aggregate_snapshot(_obs.registry().snapshot())
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._active:
            after = aggregate_snapshot(_obs.registry().snapshot())
            self.delta = delta_between(self._before, after)
        return False


# ----------------------------------------------------------------------
# Perf's own instrumentation (repro_perf_* series)
# ----------------------------------------------------------------------

def publish_record(bench: str,
                   headlines: "Mapping[str, float]") -> None:
    """Count one ledger append and publish its headline gauges.

    Call sites gate on ``_obs.ENABLED``; like every recorder, this
    also tolerates direct calls by writing into the null registry.
    """
    reg = _obs.registry()
    reg.counter(names.PERF_RECORDS_TOTAL,
                "Benchmark runs appended to the performance ledger.",
                labels={"bench": bench}).inc()
    for metric, value in headlines.items():
        reg.gauge(names.PERF_HEADLINE,
                  "Last recorded headline scalar, by bench and metric.",
                  labels={"bench": bench, "metric": metric}).set(value)


def publish_compare(bench: str, status: str) -> None:
    """Count one comparison verdict (and regressions separately)."""
    reg = _obs.registry()
    reg.counter(names.PERF_COMPARES_TOTAL,
                "Current-vs-baseline comparisons evaluated.",
                labels={"status": status}).inc()
    if status == "regressed":
        reg.counter(names.PERF_REGRESSIONS_TOTAL,
                    "Comparisons classified as actionable regressions.",
                    labels={"bench": bench}).inc()
