"""Noise-aware current-vs-baseline comparison over the perf ledger.

Baselines are committed JSON files under ``benchmarks/baselines/``, one
per benchmark, each carrying *samples* (several recorded values per
headline metric) rather than a single blessed number — the comparator
(:func:`compare`) fits a MAD noise band on those samples via
:func:`repro.bench.stats.classify` and classifies the current run as
``improved`` / ``flat`` / ``regressed``, or honestly ``insufficient``
when the baseline is too thin to estimate its own noise.

Comparability is gated, not assumed:

- quick-mode records only compare against quick-mode baselines (the
  caller resolves the latest *matching* ledger record);
- non-portable headlines (absolute items/sec) only compare when the
  current host fingerprint matches the baseline's; a mismatch is a
  ``skipped`` row, never a silent pass or a bogus failure;
- percent-unit metrics classify on absolute points (an overhead going
  0.5% -> 1.5% is a 200% relative change but a one-point one).

When a metric regresses, the report explains *why* from the records'
explanatory telemetry (:mod:`repro.obs.perf.telemetry`): the metric
deltas of the current run against the baseline's, e.g.
``repro_lock_wait_seconds_total: 0.012 -> 0.037 (x3.1)``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from ...bench import stats
from .. import runtime as _obs
from .record import (
    SCHEMA_VERSION,
    PerfRecord,
    PerfSchemaError,
    host_fingerprint,
)

__all__ = [
    "Baseline",
    "BaselineMetric",
    "MetricComparison",
    "CompareReport",
    "DEFAULT_BASELINES_DIR",
    "baseline_from_records",
    "load_baselines",
    "compare",
    "explain_delta",
]

#: Where committed baselines live, relative to the repository root.
DEFAULT_BASELINES_DIR = Path("benchmarks") / "baselines"

#: Verdict statuses beyond the classifier's own (see repro.bench.stats).
SKIPPED = "skipped"

#: Explanation lines stop after this many notable series.
_MAX_EXPLANATION_LINES = 6

#: A metrics-delta ratio beyond this (or under its inverse) is notable.
_NOTABLE_RATIO = 1.5


@dataclass(frozen=True)
class BaselineMetric:
    """One headline metric's committed baseline sample set."""

    samples: "Tuple[float, ...]"
    unit: str
    higher_is_better: bool
    portable: bool

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "samples": [float(s) for s in self.samples],
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "portable": self.portable,
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "BaselineMetric":
        try:
            return cls(
                samples=tuple(float(s) for s in payload["samples"]),
                unit=str(payload["unit"]),
                higher_is_better=bool(payload["higher_is_better"]),
                portable=bool(payload["portable"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PerfSchemaError(f"malformed baseline metric: {exc}") \
                from exc


@dataclass(frozen=True)
class Baseline:
    """One benchmark's committed baseline."""

    bench: str
    metrics: "Dict[str, BaselineMetric]"
    host: "Dict[str, Any]" = field(default_factory=dict)
    kernel: "Dict[str, Any]" = field(default_factory=dict)
    quick: bool = False
    metrics_delta: "Dict[str, float]" = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "schema": self.schema,
            "bench": self.bench,
            "quick": self.quick,
            "host": dict(self.host),
            "kernel": dict(self.kernel),
            "metrics": {name: m.to_dict()
                        for name, m in sorted(self.metrics.items())},
            "metrics_delta": {k: float(v)
                              for k, v in self.metrics_delta.items()},
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "Baseline":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise PerfSchemaError(
                f"unsupported baseline schema {schema!r} "
                f"(this library reads version {SCHEMA_VERSION})"
            )
        try:
            return cls(
                bench=str(payload["bench"]),
                metrics={
                    str(name): BaselineMetric.from_dict(m)
                    for name, m in dict(payload["metrics"]).items()
                },
                host=dict(payload.get("host") or {}),
                kernel=dict(payload.get("kernel") or {}),
                quick=bool(payload.get("quick", False)),
                metrics_delta={
                    str(k): float(v)
                    for k, v in (payload.get("metrics_delta") or {}).items()
                },
            )
        except PerfSchemaError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise PerfSchemaError(f"malformed baseline: {exc}") from exc


def baseline_from_records(records: "List[PerfRecord]") -> Baseline:
    """Fold several ledger records into one baseline.

    Every record must describe the same benchmark in the same mode;
    each headline metric pools its value across the records as the
    baseline sample set. Host, kernel, and explanatory telemetry come
    from the newest record.
    """
    if not records:
        raise PerfSchemaError("cannot build a baseline from zero records")
    benches = {r.bench for r in records}
    if len(benches) != 1:
        raise PerfSchemaError(
            f"baseline records span several benchmarks: {sorted(benches)}"
        )
    modes = {r.quick for r in records}
    if len(modes) != 1:
        raise PerfSchemaError(
            "baseline records mix quick and full modes; rebuild from "
            "records of one mode"
        )
    newest = records[-1]
    metrics: "Dict[str, BaselineMetric]" = {}
    for record in records:
        for headline in record.headlines:
            existing = metrics.get(headline.name)
            samples = (existing.samples if existing else ()) \
                + (headline.value,)
            metrics[headline.name] = BaselineMetric(
                samples=samples, unit=headline.unit,
                higher_is_better=headline.higher_is_better,
                portable=headline.portable,
            )
    return Baseline(
        bench=newest.bench, metrics=metrics, host=dict(newest.host),
        kernel=dict(newest.kernel), quick=newest.quick,
        metrics_delta=dict(newest.metrics_delta),
    )


def load_baselines(directory: "Union[str, Path]" = DEFAULT_BASELINES_DIR,
                   ) -> "Dict[str, Baseline]":
    """Every ``<bench>.json`` baseline in a directory, keyed by bench.

    A missing directory loads as empty; a malformed file raises — a
    committed baseline that cannot be read is a repository bug, not
    noise to skip.
    """
    directory = Path(directory)
    out: "Dict[str, Baseline]" = {}
    if not directory.is_dir():
        return out
    for path in sorted(directory.glob("*.json")):
        with open(path, encoding="utf-8") as handle:
            try:
                baseline = Baseline.from_dict(json.load(handle))
            except json.JSONDecodeError as exc:
                raise PerfSchemaError(
                    f"unreadable baseline {path}: {exc}") from exc
        out[baseline.bench] = baseline
    return out


def save_baseline(baseline: Baseline,
                  directory: "Union[str, Path]" = DEFAULT_BASELINES_DIR,
                  ) -> Path:
    """Write ``<bench>.json`` under ``directory``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{baseline.bench}.json"
    path.write_text(
        json.dumps(baseline.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MetricComparison:
    """One (bench, metric) verdict row."""

    bench: str
    metric: str
    unit: str
    status: str                       # classifier statuses or "skipped"
    current: "Optional[float]"
    verdict: "Optional[stats.Verdict]"
    detail: str
    explanation: "Tuple[str, ...]" = ()

    def to_dict(self) -> "Dict[str, Any]":
        out: "Dict[str, Any]" = {
            "bench": self.bench,
            "metric": self.metric,
            "unit": self.unit,
            "status": self.status,
            "current": self.current,
            "detail": self.detail,
            "explanation": list(self.explanation),
        }
        if self.verdict is not None:
            out["delta_pct"] = self.verdict.delta_pct
            out["band_pct"] = self.verdict.band_pct
            out["baseline_median"] = self.verdict.baseline_median
            out["n_baseline"] = self.verdict.n_baseline
        return out


@dataclass
class CompareReport:
    """Every verdict of one compare invocation, renderable and gating."""

    comparisons: "List[MetricComparison]" = field(default_factory=list)
    notes: "List[str]" = field(default_factory=list)

    @property
    def regressions(self) -> "List[MetricComparison]":
        return [c for c in self.comparisons if c.status == stats.REGRESSED]

    def counts(self) -> "Dict[str, int]":
        out: "Dict[str, int]" = {}
        for comparison in self.comparisons:
            out[comparison.status] = out.get(comparison.status, 0) + 1
        return out

    def exit_code(self) -> int:
        """0 when no actionable regression, 1 otherwise."""
        return 1 if self.regressions else 0

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "comparisons": [c.to_dict() for c in self.comparisons],
            "counts": self.counts(),
            "notes": list(self.notes),
            "regressed": bool(self.regressions),
        }

    def render(self) -> str:
        """Plain-text report: verdict table, then regression detail."""
        lines: "List[str]" = []
        rows = []
        for c in self.comparisons:
            current = "-" if c.current is None else f"{c.current:g}"
            if c.verdict is not None and c.verdict.status != stats.INSUFFICIENT:
                baseline = f"{c.verdict.baseline_median:g}"
                pts = "pts" if c.unit == "percent" else "%"
                delta = f"{c.verdict.delta_pct:+.1f}{pts}"
                band = f"±{c.verdict.band_pct:.1f}{pts}"
            else:
                baseline = delta = band = "-"
            rows.append((c.bench, c.metric, current, baseline, delta,
                         band, c.status))
        header = ("bench", "metric", "current", "baseline", "delta",
                  "band", "verdict")
        widths = [max(len(header[i]), *(len(r[i]) for r in rows))
                  if rows else len(header[i]) for i in range(len(header))]

        def fmt(cells: "Tuple[str, ...]") -> str:
            return "  ".join(c.ljust(widths[i])
                             for i, c in enumerate(cells)).rstrip()

        lines.append(fmt(header))
        lines.append(fmt(tuple("-" * w for w in widths)))
        lines.extend(fmt(r) for r in rows)
        for c in self.comparisons:
            if c.status == stats.REGRESSED:
                lines.append("")
                lines.append(f"{c.bench}/{c.metric} REGRESSED: {c.detail}")
                for line in c.explanation:
                    lines.append(f"  {line}")
        for note in self.notes:
            lines.append(f"note: {note}")
        counts = self.counts()
        summary = ", ".join(f"{n} {status}"
                            for status, n in sorted(counts.items()))
        lines.append(f"verdicts: {summary or 'nothing to compare'}")
        return "\n".join(lines)


def explain_delta(baseline_delta: "Mapping[str, float]",
                  current_delta: "Mapping[str, float]",
                  limit: int = _MAX_EXPLANATION_LINES) -> "List[str]":
    """Human-readable lines for notably changed explanatory series.

    Compares each telemetry scalar of the current record against the
    baseline's; a series whose ratio moved beyond ×1.5 (or under its
    inverse), appeared, or vanished makes the cut, worst movers first.
    """
    if not baseline_delta and not current_delta:
        return ["no explanatory telemetry recorded on either side"]
    notable: "List[Tuple[float, str]]" = []
    for key in sorted(set(baseline_delta) | set(current_delta)):
        base = float(baseline_delta.get(key, 0.0))
        cur = float(current_delta.get(key, 0.0))
        if abs(base) < 1e-12 and abs(cur) < 1e-12:
            continue
        if abs(base) < 1e-12:
            notable.append((float("inf"),
                            f"{key}: appeared ({cur:g} vs 0 in baseline)"))
            continue
        ratio = cur / base
        if ratio >= _NOTABLE_RATIO or (0.0 <= ratio <= 1.0 / _NOTABLE_RATIO):
            severity = ratio if ratio >= 1.0 else 1.0 / max(ratio, 1e-12)
            notable.append((severity,
                            f"{key}: {base:g} -> {cur:g} (x{ratio:.2f})"))
    notable.sort(key=lambda item: -item[0])
    lines = [text for _severity, text in notable[:limit]]
    if not lines:
        return ["explanatory telemetry is within x"
                f"{_NOTABLE_RATIO:.1f} of baseline on every series"]
    return lines


def _compare_one(record: PerfRecord, baseline: Baseline,
                 metric: str, spec: BaselineMetric,
                 floor_pct: float, sigmas: float,
                 min_samples: int) -> MetricComparison:
    headline = record.headline(metric)
    if headline is None:
        return MetricComparison(
            bench=baseline.bench, metric=metric, unit=spec.unit,
            status=SKIPPED, current=None, verdict=None,
            detail="metric absent from the current record",
        )
    if not spec.portable:
        mine = host_fingerprint(record.host)
        theirs = host_fingerprint(baseline.host)
        if mine != theirs:
            return MetricComparison(
                bench=baseline.bench, metric=metric, unit=spec.unit,
                status=SKIPPED, current=headline.value, verdict=None,
                detail=f"host fingerprint mismatch ({mine} vs baseline "
                       f"{theirs}); absolute throughput is not portable",
            )
    verdict = stats.classify(
        headline.value, list(spec.samples),
        higher_is_better=spec.higher_is_better,
        min_samples=min_samples, floor_pct=floor_pct, sigmas=sigmas,
        absolute=(spec.unit == "percent"),
    )
    explanation: "Tuple[str, ...]" = ()
    if verdict.status == stats.REGRESSED:
        explanation = tuple(explain_delta(baseline.metrics_delta,
                                          record.metrics_delta))
    return MetricComparison(
        bench=baseline.bench, metric=metric, unit=spec.unit,
        status=verdict.status, current=headline.value, verdict=verdict,
        detail=verdict.detail, explanation=explanation,
    )


def compare(records: "Mapping[str, Optional[PerfRecord]]",
            baselines: "Mapping[str, Baseline]",
            floor_pct: float = stats.DEFAULT_BAND_FLOOR_PCT,
            sigmas: float = stats.DEFAULT_SIGMAS,
            min_samples: int = stats.DEFAULT_MIN_SAMPLES) -> CompareReport:
    """Compare the latest records against every committed baseline.

    ``records`` maps bench id to the latest *mode-matching* ledger
    record (or None when the ledger has none) — resolve it with
    :meth:`LedgerLoad.latest(bench, quick=baseline.quick)
    <repro.obs.perf.ledger.LedgerLoad.latest>`. Baselines with no
    record produce ``skipped`` rows; the report only gates (exit 1) on
    actionable ``regressed`` verdicts.
    """
    from . import _set_last_report
    from .telemetry import publish_compare

    report = CompareReport()
    for bench in sorted(baselines):
        baseline = baselines[bench]
        record = records.get(bench)
        if record is None:
            mode = "quick" if baseline.quick else "full"
            report.comparisons.append(MetricComparison(
                bench=bench, metric="*", unit="-", status=SKIPPED,
                current=None, verdict=None,
                detail=f"no {mode}-mode ledger record for this benchmark",
            ))
            continue
        for metric in sorted(baseline.metrics):
            report.comparisons.append(_compare_one(
                record, baseline, metric, baseline.metrics[metric],
                floor_pct, sigmas, min_samples,
            ))
    if _obs.ENABLED:
        for comparison in report.comparisons:
            publish_compare(comparison.bench, comparison.status)
    _set_last_report(report)
    return report
