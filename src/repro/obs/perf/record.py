"""The canonical performance run record: schema, extraction, host facts.

A :class:`PerfRecord` is one benchmark execution reduced to the facts a
trajectory needs: which benchmark, its headline scalar(s), the kernel
backend that produced them, the host they ran on, when, and at which
git revision. Records are versioned (:data:`SCHEMA_VERSION`), round-trip
losslessly through ``to_dict``/``from_dict``, and append to the JSONL
ledger (:mod:`repro.obs.perf.ledger`).

Headline extraction is convention-driven: :func:`extract_headlines`
scans an :class:`~repro.bench.harness.ExperimentResult`'s columns for
the known performance vocabulary (``overhead_pct``, ``speedup``, the
``*_ips`` throughput family, ``fpr``/``are``/``re`` accuracy rates) and
aggregates each over the rows with the metric's *worst-case* or robust
statistic — ``max`` for overheads and error rates (a regression in any
variant counts), ``min`` for speedups, the median for throughputs.
Each headline carries its unit, its direction (``higher_is_better``)
and whether it is *portable* across hosts: ratios and percents compare
meaningfully between machines, absolute items/sec only against a
baseline recorded on a matching host fingerprint.
"""

from __future__ import annotations

import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ...errors import ConfigurationError

__all__ = [
    "SCHEMA_VERSION",
    "Headline",
    "PerfRecord",
    "PerfSchemaError",
    "extract_headlines",
    "host_facts",
    "host_fingerprint",
    "current_git_rev",
]

#: Version stamped into every record; bump on incompatible changes.
SCHEMA_VERSION = 1


class PerfSchemaError(ConfigurationError):
    """A perf record/baseline payload violates the versioned schema."""


@dataclass(frozen=True)
class Headline:
    """One comparable scalar extracted from a benchmark result."""

    name: str               # e.g. "overhead_pct", "batch_ips"
    value: float
    unit: str               # "percent" | "ratio" | "items_per_sec" | "rate"
    higher_is_better: bool
    portable: bool          # comparable across host fingerprints?

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "name": self.name,
            "value": float(self.value),
            "unit": self.unit,
            "higher_is_better": self.higher_is_better,
            "portable": self.portable,
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "Headline":
        try:
            return cls(
                name=str(payload["name"]),
                value=float(payload["value"]),
                unit=str(payload["unit"]),
                higher_is_better=bool(payload["higher_is_better"]),
                portable=bool(payload["portable"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise PerfSchemaError(f"malformed headline payload: {exc}") \
                from exc


#: The headline vocabulary: column -> (unit, higher_is_better,
#: aggregator, portable). Order fixes the headline order in records.
_MAX = "max"
_MIN = "min"
_MEDIAN = "median"
_HEADLINE_RULES: "Tuple[Tuple[str, str, bool, str, bool], ...]" = (
    ("overhead_pct", "percent", False, _MAX, True),
    ("speedup", "ratio", True, _MIN, True),
    ("batch_ips", "items_per_sec", True, _MEDIAN, False),
    ("scalar_ips", "items_per_sec", True, _MEDIAN, False),
    ("obs_ips", "items_per_sec", True, _MEDIAN, False),
    ("audit_ips", "items_per_sec", True, _MEDIAN, False),
    ("traced_ips", "items_per_sec", True, _MEDIAN, False),
    ("base_ips", "items_per_sec", True, _MEDIAN, False),
    ("items_per_sec", "items_per_sec", True, _MEDIAN, False),
    ("ips", "items_per_sec", True, _MEDIAN, False),
    ("fpr", "rate", False, _MAX, True),
    ("are", "rate", False, _MAX, True),
    ("re", "rate", False, _MAX, True),
)


def _aggregate(values: "list[float]", how: str) -> float:
    if how == _MAX:
        return max(values)
    if how == _MIN:
        return min(values)
    from ...bench.stats import median
    return median(values)


def extract_headlines(result: Any) -> "Tuple[Headline, ...]":
    """Pull every known headline scalar out of an ExperimentResult.

    Duck-typed on ``result.rows`` (a list of dicts) so this module
    never imports the bench harness at module scope. Columns absent
    from the vocabulary are ignored; an empty tuple means the result
    carries no comparable performance scalar (fine — the record still
    documents the run).
    """
    headlines = []
    rows = list(getattr(result, "rows", ()))
    for column, unit, hib, how, portable in _HEADLINE_RULES:
        values = [
            float(row[column]) for row in rows
            if isinstance(row.get(column), (int, float))
        ]
        if not values:
            continue
        headlines.append(Headline(
            name=column, value=_aggregate(values, how), unit=unit,
            higher_is_better=hib, portable=portable,
        ))
    return tuple(headlines)


def host_facts() -> "Dict[str, Any]":
    """The comparability-relevant facts about this host."""
    import platform

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def host_fingerprint(host: "Mapping[str, Any]") -> str:
    """Collapse host facts to the fields that gate comparability.

    Two runs compare absolute throughput only when their fingerprints
    match: same architecture, same CPU count, same python minor.
    """
    python = str(host.get("python", "?"))
    minor = ".".join(python.split(".")[:2])
    return (f"{host.get('machine', '?')}/"
            f"{host.get('cpu_count', '?')}cpu/py{minor}")


def current_git_rev() -> "Optional[str]":
    """The short git revision, or None outside a repository.

    ``REPRO_GIT_REV`` overrides (CI checkouts without a .git dir, and
    tests that need determinism).
    """
    env = os.environ.get("REPRO_GIT_REV")
    if env:
        return env
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


@dataclass(frozen=True)
class PerfRecord:
    """One benchmark run as a ledger entry."""

    bench: str
    headlines: "Tuple[Headline, ...]"
    kernel: "Dict[str, Any]" = field(default_factory=dict)
    host: "Dict[str, Any]" = field(default_factory=dict)
    timestamp: float = 0.0
    git_rev: "Optional[str]" = None
    quick: bool = False
    metrics_delta: "Dict[str, float]" = field(default_factory=dict)
    schema: int = SCHEMA_VERSION

    def headline(self, name: str) -> "Optional[Headline]":
        """Look up one headline by metric name."""
        for h in self.headlines:
            if h.name == name:
                return h
        return None

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "schema": self.schema,
            "bench": self.bench,
            "headlines": [h.to_dict() for h in self.headlines],
            "kernel": dict(self.kernel),
            "host": dict(self.host),
            "timestamp": float(self.timestamp),
            "git_rev": self.git_rev,
            "quick": self.quick,
            "metrics_delta": {k: float(v)
                              for k, v in self.metrics_delta.items()},
        }

    @classmethod
    def from_dict(cls, payload: "Mapping[str, Any]") -> "PerfRecord":
        schema = payload.get("schema")
        if schema != SCHEMA_VERSION:
            raise PerfSchemaError(
                f"unsupported perf-record schema {schema!r} "
                f"(this library reads version {SCHEMA_VERSION})"
            )
        try:
            headlines = tuple(
                Headline.from_dict(h) for h in payload["headlines"]
            )
            return cls(
                bench=str(payload["bench"]),
                headlines=headlines,
                kernel=dict(payload.get("kernel") or {}),
                host=dict(payload.get("host") or {}),
                timestamp=float(payload.get("timestamp", 0.0)),
                git_rev=(None if payload.get("git_rev") is None
                         else str(payload["git_rev"])),
                quick=bool(payload.get("quick", False)),
                metrics_delta={
                    str(k): float(v)
                    for k, v in (payload.get("metrics_delta") or {}).items()
                },
            )
        except PerfSchemaError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise PerfSchemaError(f"malformed perf record: {exc}") from exc

    @classmethod
    def from_result(cls, bench: str, result: Any,
                    timestamp: "Optional[float]" = None,
                    quick: bool = False,
                    metrics_delta: "Optional[Mapping[str, float]]" = None,
                    git_rev: "Optional[str]" = None,
                    ) -> "PerfRecord":
        """Build a record from a live ExperimentResult.

        ``timestamp`` is injectable for determinism; it defaults to the
        wall clock. ``git_rev=None`` asks the environment
        (:func:`current_git_rev`).
        """
        from ...kernels import kernel_info

        return cls(
            bench=bench,
            headlines=extract_headlines(result),
            kernel=dict(kernel_info()),
            host=host_facts(),
            timestamp=time.time() if timestamp is None else float(timestamp),
            git_rev=current_git_rev() if git_rev is None else git_rev,
            quick=quick,
            metrics_delta=dict(metrics_delta or {}),
        )
