"""``python -m repro.obs perf`` — record, compare, trend, report.

The operator surface over the performance ledger::

    python -m repro.obs perf record --bench obs --quick
    python -m repro.obs perf baseline --bench obs --quick --last 5
    python -m repro.obs perf compare            # exit 1 on regression
    python -m repro.obs perf trend --bench obs --metric overhead_pct
    python -m repro.obs perf report --output perf_report.json

``record`` runs a registered experiment (the same runners as
``python -m repro.bench``) and appends one :class:`PerfRecord` to the
ledger; ``baseline`` folds the last N matching records into a
committed baseline file; ``compare`` classifies the latest records
against every committed baseline and is the CI regression gate (exit
code 1 on an actionable regression, 0 otherwise); ``trend`` prints a
metric's trajectory straight from the ledger; ``report`` writes the
consolidated JSON artifact and never gates.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, Optional

from .. import runtime as _obs
from . import perf_payload
from .compare import (
    DEFAULT_BASELINES_DIR,
    baseline_from_records,
    compare,
    load_baselines,
    save_baseline,
)
from .ledger import PerfLedger
from .record import PerfRecord
from .telemetry import aggregate_snapshot, publish_record

__all__ = ["add_perf_subparser", "run_perf"]


def _runners() -> "Dict[str, Callable[..., Any]]":
    """Experiment runners by bench id (the repro.bench registry plus
    the trace-overhead guard, which is bench-suite-only)."""
    from ...bench.experiments import EXPERIMENTS

    runners: "Dict[str, Callable[..., Any]]" = dict(EXPERIMENTS)
    if "trace" not in runners:
        from ...bench.experiments import trace_overhead
        runners["trace"] = trace_overhead.run
    return runners


def add_perf_subparser(sub: "argparse._SubParsersAction[Any]") -> None:
    """Register the ``perf`` subcommand tree on the obs CLI."""
    perf = sub.add_parser(
        "perf",
        help="performance ledger: record runs, gate on regressions",
        description="Persistent benchmark ledger with noise-aware "
                    "current-vs-baseline regression verdicts.",
    )
    perf.add_argument("--ledger", default=None,
                      help="ledger path (default: $REPRO_PERF_LEDGER or "
                           "benchmarks/results/perf_ledger.jsonl)")
    action = perf.add_subparsers(dest="perf_command", required=True)

    record = action.add_parser(
        "record", help="run one experiment and append its record")
    record.add_argument("--bench", required=True,
                        help="experiment id (see python -m repro.bench)")
    record.add_argument("--quick", action="store_true",
                        help="run the experiment in quick mode and mark "
                             "the record as quick")
    record.add_argument("--seed", type=int, default=1)
    record.add_argument("--timestamp", type=float, default=None,
                        help="override the record timestamp (testing)")

    cmp_p = action.add_parser(
        "compare", help="gate the latest records against baselines")
    cmp_p.add_argument("--baselines", default=str(DEFAULT_BASELINES_DIR),
                       help="baseline directory (default "
                            "benchmarks/baselines)")
    cmp_p.add_argument("--json", action="store_true",
                       help="print the report as JSON instead of text")

    trend = action.add_parser(
        "trend", help="print a metric's ledger trajectory")
    trend.add_argument("--bench", required=True)
    trend.add_argument("--metric", default=None,
                       help="restrict to one headline metric")
    trend.add_argument("--limit", type=int, default=20,
                       help="most recent N records (default 20)")

    report = action.add_parser(
        "report", help="write the consolidated JSON artifact (never gates)")
    report.add_argument("--baselines", default=str(DEFAULT_BASELINES_DIR))
    report.add_argument("--output", default=None,
                        help="write to this path instead of stdout")
    report.add_argument("--limit", type=int, default=20)

    baseline = action.add_parser(
        "baseline", help="fold recent ledger records into a baseline file")
    baseline.add_argument("--bench", required=True)
    baseline.add_argument("--quick", action="store_true",
                          help="build from quick-mode records")
    baseline.add_argument("--last", type=int, default=5,
                          help="fold the last N matching records "
                               "(default 5)")
    baseline.add_argument("--baselines", default=str(DEFAULT_BASELINES_DIR),
                          help="directory to write into")


def _cmd_record(args: argparse.Namespace, ledger: PerfLedger) -> int:
    runners = _runners()
    runner = runners.get(args.bench)
    if runner is None:
        print(f"unknown bench {args.bench!r}; known: "
              f"{', '.join(sorted(runners))}", file=sys.stderr)
        return 2
    result = runner(quick=args.quick, seed=args.seed)
    metrics_delta = aggregate_snapshot(
        getattr(result, "extras", {}).get("snapshot"))
    record = PerfRecord.from_result(
        args.bench, result, timestamp=args.timestamp,
        quick=args.quick, metrics_delta=metrics_delta,
    )
    ledger.append(record)
    if _obs.ENABLED:
        publish_record(record.bench,
                       {h.name: h.value for h in record.headlines})
    mode = "quick" if record.quick else "full"
    print(f"recorded {record.bench} ({mode}, "
          f"rev {record.git_rev or '?'}) -> {ledger.path}")
    for headline in record.headlines:
        print(f"  {headline.name} = {headline.value:g} [{headline.unit}]")
    if not record.headlines:
        print("  (no headline scalars in this result)")
    return 0


def _resolve_latest(ledger: PerfLedger,
                    baselines: "Dict[str, Any]",
                    ) -> "Dict[str, Optional[PerfRecord]]":
    load = ledger.load()
    if load.skipped:
        print(f"warning: skipped {load.skipped} corrupt ledger line(s) "
              f"in {ledger.path}", file=sys.stderr)
    return {bench: load.latest(bench, quick=baseline.quick)
            for bench, baseline in baselines.items()}


def _cmd_compare(args: argparse.Namespace, ledger: PerfLedger) -> int:
    baselines = load_baselines(args.baselines)
    if not baselines:
        print(f"no baselines under {args.baselines}; nothing to gate")
        return 0
    report = compare(_resolve_latest(ledger, baselines), baselines)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code()


def _cmd_trend(args: argparse.Namespace, ledger: PerfLedger) -> int:
    load = ledger.load()
    records = [r for r in load.records if r.bench == args.bench]
    if not records:
        print(f"no ledger records for bench {args.bench!r} "
              f"in {ledger.path}", file=sys.stderr)
        return 1
    records = records[-args.limit:] if args.limit > 0 else records
    print(f"{args.bench}: {len(records)} record(s) from {ledger.path}")
    header = f"{'timestamp':>14}  {'rev':<10} {'mode':<5} metric"
    print(header)
    for record in records:
        mode = "quick" if record.quick else "full"
        shown = [h for h in record.headlines
                 if args.metric is None or h.name == args.metric]
        if args.metric is not None and not shown:
            values = f"(no {args.metric})"
        else:
            values = "  ".join(f"{h.name}={h.value:g}" for h in shown) \
                or "(no headlines)"
        print(f"{record.timestamp:>14.2f}  {record.git_rev or '?':<10} "
              f"{mode:<5} {values}")
    return 0


def _cmd_report(args: argparse.Namespace, ledger: PerfLedger) -> int:
    baselines = load_baselines(args.baselines)
    payload = perf_payload(limit=args.limit, ledger=ledger)
    if baselines:
        report = compare(_resolve_latest(ledger, baselines), baselines)
        payload["last_compare"] = report.to_dict()
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote perf report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_baseline(args: argparse.Namespace, ledger: PerfLedger) -> int:
    load = ledger.load()
    matching = [r for r in load.records
                if r.bench == args.bench and r.quick == args.quick]
    if not matching:
        mode = "quick" if args.quick else "full"
        print(f"no {mode}-mode ledger records for bench {args.bench!r}; "
              f"run `perf record --bench {args.bench}"
              f"{' --quick' if args.quick else ''}` first",
              file=sys.stderr)
        return 1
    chosen = matching[-args.last:] if args.last > 0 else matching
    baseline = baseline_from_records(chosen)
    path = save_baseline(baseline, args.baselines)
    print(f"wrote baseline for {baseline.bench} from {len(chosen)} "
          f"record(s) -> {path}")
    for name, metric in sorted(baseline.metrics.items()):
        print(f"  {name}: {len(metric.samples)} sample(s), "
              f"median {sorted(metric.samples)[len(metric.samples) // 2]:g} "
              f"[{metric.unit}]")
    return 0


def run_perf(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``perf`` invocation; returns the exit code."""
    ledger = PerfLedger(args.ledger)
    command = args.perf_command
    if command == "record":
        return _cmd_record(args, ledger)
    if command == "compare":
        return _cmd_compare(args, ledger)
    if command == "trend":
        return _cmd_trend(args, ledger)
    if command == "report":
        return _cmd_report(args, ledger)
    if command == "baseline":
        return _cmd_baseline(args, ledger)
    raise AssertionError(f"unreachable perf command {command!r}")
