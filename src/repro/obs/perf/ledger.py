"""The append-only JSONL performance ledger.

One line per :class:`~repro.obs.perf.record.PerfRecord`, appended as
benchmarks run. JSONL because the failure mode that matters is a
process dying mid-write: every complete line stays readable, and
:meth:`PerfLedger.load` skips (and counts) corrupted lines instead of
losing the history behind them.

The default path is ``benchmarks/results/perf_ledger.jsonl`` relative
to the working directory, overridable with ``REPRO_PERF_LEDGER`` —
the same results directory the benchmark suite archives into, so a
local bench run and ``python -m repro.obs perf`` agree without flags.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from .record import PerfRecord, PerfSchemaError

__all__ = ["PerfLedger", "LedgerLoad", "default_ledger_path"]

#: Environment override for the ledger location.
LEDGER_ENV = "REPRO_PERF_LEDGER"

_DEFAULT_LEDGER = os.path.join("benchmarks", "results", "perf_ledger.jsonl")


def default_ledger_path() -> Path:
    """``$REPRO_PERF_LEDGER`` or ``benchmarks/results/perf_ledger.jsonl``."""
    return Path(os.environ.get(LEDGER_ENV) or _DEFAULT_LEDGER)


@dataclass
class LedgerLoad:
    """The result of reading a ledger: records plus an honesty count."""

    records: "List[PerfRecord]" = field(default_factory=list)
    skipped: int = 0

    def by_bench(self) -> "Dict[str, List[PerfRecord]]":
        """Records grouped by benchmark id, ledger order preserved."""
        out: "Dict[str, List[PerfRecord]]" = {}
        for record in self.records:
            out.setdefault(record.bench, []).append(record)
        return out

    def latest(self, bench: str,
               quick: "Optional[bool]" = None) -> "Optional[PerfRecord]":
        """The most recent record for ``bench``.

        ``quick`` filters on the record's quick flag — comparing a
        quick-mode run against a full-mode baseline (or vice versa)
        would be meaningless, so callers match modes explicitly.
        """
        for record in reversed(self.records):
            if record.bench != bench:
                continue
            if quick is not None and record.quick != quick:
                continue
            return record
        return None


class PerfLedger:
    """Append/load interface over one JSONL ledger file."""

    def __init__(self, path: "Union[str, Path, None]" = None) -> None:
        self.path = Path(path) if path is not None else default_ledger_path()

    def append(self, record: PerfRecord) -> None:
        """Append one record, creating parent directories as needed."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True, default=float)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    def load(self) -> LedgerLoad:
        """Every parseable record, skipping (and counting) corrupt lines.

        A missing ledger file loads as empty — recording simply has not
        happened yet on this checkout.
        """
        load = LedgerLoad()
        if not self.path.exists():
            return load
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    load.records.append(PerfRecord.from_dict(payload))
                except (json.JSONDecodeError, PerfSchemaError):
                    load.skipped += 1
        return load

    def tail(self, limit: int = 20) -> "List[PerfRecord]":
        """The last ``limit`` parseable records."""
        records = self.load().records
        return records[-limit:] if limit > 0 else []
