"""Performance observability: ledger, regression gates, perf telemetry.

The subsystem that turns one-off benchmark prints into a trajectory:

- :mod:`~repro.obs.perf.record` — the versioned :class:`PerfRecord`
  schema (headline scalars, kernel backend, host facts, git revision);
- :mod:`~repro.obs.perf.ledger` — the append-only JSONL
  :class:`PerfLedger` tolerating corrupted trailing lines;
- :mod:`~repro.obs.perf.compare` — committed :class:`Baseline` files
  plus the noise-aware comparator (:func:`compare`) classifying runs
  as improved/flat/regressed with MAD noise bands and explanatory
  metric deltas;
- :mod:`~repro.obs.perf.telemetry` — registry-snapshot reduction for
  the "why" behind a regression, and perf's own ``repro_perf_*``
  series;
- :mod:`~repro.obs.perf.cli` — ``python -m repro.obs perf
  {record,compare,trend,report,baseline}``.

The statistics the comparator leans on (median-of-ratios estimator,
MAD bands, :func:`~repro.bench.stats.classify`) live in
:mod:`repro.bench.stats` so benchmarks can use them without importing
the obs tree.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .compare import (
    DEFAULT_BASELINES_DIR,
    Baseline,
    BaselineMetric,
    CompareReport,
    MetricComparison,
    baseline_from_records,
    compare,
    explain_delta,
    load_baselines,
    save_baseline,
)
from .ledger import LedgerLoad, PerfLedger, default_ledger_path
from .record import (
    SCHEMA_VERSION,
    Headline,
    PerfRecord,
    PerfSchemaError,
    current_git_rev,
    extract_headlines,
    host_facts,
    host_fingerprint,
)
from .telemetry import (
    aggregate_snapshot,
    capture_delta,
    delta_between,
    publish_compare,
    publish_record,
)

__all__ = [
    "SCHEMA_VERSION",
    "Headline",
    "PerfRecord",
    "PerfSchemaError",
    "extract_headlines",
    "host_facts",
    "host_fingerprint",
    "current_git_rev",
    "PerfLedger",
    "LedgerLoad",
    "default_ledger_path",
    "Baseline",
    "BaselineMetric",
    "CompareReport",
    "MetricComparison",
    "DEFAULT_BASELINES_DIR",
    "baseline_from_records",
    "load_baselines",
    "save_baseline",
    "compare",
    "explain_delta",
    "aggregate_snapshot",
    "capture_delta",
    "delta_between",
    "publish_record",
    "publish_compare",
    "last_report",
    "perf_payload",
]

#: The most recent CompareReport produced in this process, for /perf.json.
_LAST_REPORT: "Optional[CompareReport]" = None


def _set_last_report(report: CompareReport) -> None:
    global _LAST_REPORT
    _LAST_REPORT = report


def last_report() -> "Optional[CompareReport]":
    """The last comparison evaluated in this process, if any."""
    return _LAST_REPORT


def perf_payload(limit: int = 20,
                 ledger: "Optional[PerfLedger]" = None) -> "Dict[str, Any]":
    """The ``/perf.json`` payload: ledger tail plus last comparison.

    Reads the ledger (default: ``REPRO_PERF_LEDGER`` or the standard
    path) fresh on every call so a long-lived metrics server reflects
    benchmarks run after it started.
    """
    if ledger is None:
        ledger = PerfLedger()
    load = ledger.load()
    tail = load.records[-limit:] if limit > 0 else []
    return {
        "ledger": str(ledger.path),
        "total_records": len(load.records),
        "skipped_lines": load.skipped,
        "records": [record.to_dict() for record in tail],
        "last_compare": (_LAST_REPORT.to_dict()
                         if _LAST_REPORT is not None else None),
    }
