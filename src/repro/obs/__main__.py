"""``python -m repro.obs`` — drive a monitored stream and expose metrics.

Runs an :class:`~repro.monitor.ItemBatchMonitor` over a synthetic
dataset trace with observability enabled, then prints the registry in
the requested exposition format (or serves it over HTTP with
``--serve``). Doubles as a smoke test that every instrumentation point
emits, and as the quickest way to eyeball the metric catalogue::

    python -m repro.obs --items 100000 --format prometheus
    python -m repro.obs --format json --rings
    python -m repro.obs --serve --serve-seconds 30 &
    curl http://127.0.0.1:9464/metrics

The ``audit`` subcommand attaches the live accuracy auditor
(:mod:`repro.obs.audit`) to the monitor and prints each cycle's
observed-vs-predicted error table::

    python -m repro.obs audit --demo
    python -m repro.obs audit --demo --undersized   # trips drift alerts
    python -m repro.obs audit --watch               # live redrawn view
"""

from __future__ import annotations

import argparse
import sys
import time

from ..monitor import ItemBatchMonitor
from ..timebase import count_window
from . import names, runtime
from .export import prometheus_text, snapshot_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run an instrumented ItemBatchMonitor over a "
                    "synthetic stream and expose its metrics.",
    )
    parser.add_argument("--items", type=int, default=100_000,
                        help="stream length (default 100000)")
    parser.add_argument("--window", type=int, default=4096,
                        help="count window T in items (default 4096)")
    parser.add_argument("--memory", default="64KB",
                        help="monitor memory budget (default 64KB)")
    parser.add_argument("--chunk", type=int, default=4096,
                        help="insert_many chunk size (default 4096)")
    parser.add_argument("--dataset", default="caida",
                        choices=("caida", "criteo", "network"),
                        help="synthetic trace to replay (default caida)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--format", dest="fmt", default="prometheus",
                        choices=("prometheus", "json"),
                        help="exposition printed to stdout")
    parser.add_argument("--rings", action="store_true",
                        help="embed the sweep-trace and event rings in "
                             "--format json output")
    parser.add_argument("--serve", action="store_true",
                        help="serve /metrics over HTTP instead of printing")
    parser.add_argument("--port", type=int, default=9464,
                        help="HTTP port for --serve (default 9464; 0 = any)")
    parser.add_argument("--serve-seconds", type=float, default=0.0,
                        help="stop serving after this many seconds "
                             "(default: serve until interrupted)")

    sub = parser.add_subparsers(dest="command")
    audit = sub.add_parser(
        "audit",
        help="attach the live accuracy auditor and print its cycles",
        description="Drive a monitored stream with the shadow-truth "
                    "accuracy auditor attached; prints observed vs "
                    "predicted error per task and any drift alerts.",
    )
    audit.add_argument("--items", type=int, default=200_000,
                       help="stream length (default 200000)")
    audit.add_argument("--window", type=int, default=4096,
                       help="count window T in items (default 4096)")
    audit.add_argument("--memory", default="128KB",
                       help="monitor memory budget (default 128KB)")
    audit.add_argument("--undersized", action="store_true",
                       help="shrink the budget to 2KB to demonstrate "
                            "drift/budget alerts")
    audit.add_argument("--sample-rate", type=float, default=0.05,
                       help="shadow-sampled key fraction (default 0.05)")
    audit.add_argument("--every", type=int, default=None,
                       help="audit cadence in items (default: auto)")
    audit.add_argument("--chunk", type=int, default=4096,
                       help="insert_many chunk size (default 4096)")
    audit.add_argument("--dataset", default="caida",
                       choices=("caida", "criteo", "network"),
                       help="synthetic trace to replay (default caida)")
    audit.add_argument("--seed", type=int, default=1)
    audit.add_argument("--demo", action="store_true",
                       help="print every audit cycle as it completes")
    audit.add_argument("--watch", action="store_true",
                       help="redraw a live view per cycle (implies --demo)")
    return parser


def _quantile_line(registry) -> "str | None":
    """Latency/error quantile footer for the watch view."""
    cycle_h = registry.get(names.AUDIT_CYCLE_SECONDS)
    if cycle_h is None or cycle_h.count == 0:
        return None
    parts = [
        f"cycle p50={cycle_h.quantile(0.5) * 1e3:.2f}ms "
        f"p95={cycle_h.quantile(0.95) * 1e3:.2f}ms"
    ]
    for task in ("size", "span"):
        hist = registry.get(names.AUDIT_ABS_ERROR, {"task": task})
        if hist is not None and hist.count:
            parts.append(
                f"{task} |err| p50={hist.quantile(0.5):.3g} "
                f"p95={hist.quantile(0.95):.3g}"
            )
    return "  " + "  |  ".join(parts)


def _print_report(report, registry, watch: bool) -> None:
    if watch:
        sys.stdout.write("\x1b[2J\x1b[H")
    for line in report.lines():
        print(line)
    footer = _quantile_line(registry)
    if footer is not None:
        print(footer)
    if not watch:
        print()
    sys.stdout.flush()


def run_audit(args) -> int:
    from ..datasets import get_dataset

    registry = runtime.enable(fresh=True)
    memory = "2KB" if args.undersized else args.memory
    monitor = ItemBatchMonitor(count_window(args.window), memory=memory,
                               seed=args.seed)
    auditor = monitor.audited(sample_rate=args.sample_rate,
                              every_items=args.every)
    stream = get_dataset(args.dataset, n_items=args.items,
                         window_hint=args.window, seed=args.seed)
    keys = stream.keys
    verbose = args.demo or args.watch

    cycles_printed = 0
    for pos in range(0, len(keys), max(1, args.chunk)):
        monitor.observe_many(keys[pos:pos + args.chunk])
        report = auditor.last_report
        if (verbose and report is not None
                and report.cycle > cycles_printed):
            _print_report(report, registry, args.watch)
            cycles_printed = report.cycle

    # Always close with a final cycle over the full stream, so even a
    # stream shorter than the cadence produces one report.
    report = auditor.audit()
    _print_report(report, registry, args.watch)
    worst = {"info": 0, "warning": 1, "critical": 2}
    severity = max((worst[a.severity] for a in report.alerts), default=0)
    # Alerts are the tool's finding, not a failure of the tool.
    print(f"done: {report.cycle} audit cycles, "
          f"{len(report.alerts)} alerts in the final cycle"
          + (" (see above)" if severity else ""))
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "command", None) == "audit":
        return run_audit(args)

    # Import lazily: the dataset synthesizers pull in the heavier parts
    # of the library, which pure exposition users never need.
    from ..datasets import get_dataset

    registry = runtime.enable(fresh=True)
    monitor = ItemBatchMonitor(count_window(args.window),
                               memory=args.memory, seed=args.seed)
    stream = get_dataset(args.dataset, n_items=args.items,
                         window_hint=args.window, seed=args.seed)
    keys = stream.keys
    for pos in range(0, len(keys), max(1, args.chunk)):
        monitor.observe_many(keys[pos:pos + args.chunk])
    monitor.metrics()  # publish monitor/sketch gauges + occupancy

    if args.serve:
        from .http import MetricsServer
        server = MetricsServer(port=args.port).start()
        print(f"serving {server.url} (and /metrics.json)", file=sys.stderr)
        try:
            if args.serve_seconds > 0:
                time.sleep(args.serve_seconds)
            else:
                while True:
                    time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    elif args.fmt == "json":
        rings = runtime.rings_snapshot() if args.rings else None
        print(snapshot_json(registry, rings=rings))
    else:
        print(prometheus_text(registry), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
