"""``python -m repro.obs`` — drive a monitored stream and expose metrics.

Runs an :class:`~repro.monitor.ItemBatchMonitor` over a synthetic
dataset trace with observability enabled, then prints the registry in
the requested exposition format (or serves it over HTTP with
``--serve``). Doubles as a smoke test that every instrumentation point
emits, and as the quickest way to eyeball the metric catalogue::

    python -m repro.obs --items 100000 --format prometheus
    python -m repro.obs --serve --serve-seconds 30 &
    curl http://127.0.0.1:9464/metrics
"""

from __future__ import annotations

import argparse
import sys
import time

from ..monitor import ItemBatchMonitor
from ..timebase import count_window
from . import runtime
from .export import prometheus_text, snapshot_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run an instrumented ItemBatchMonitor over a "
                    "synthetic stream and expose its metrics.",
    )
    parser.add_argument("--items", type=int, default=100_000,
                        help="stream length (default 100000)")
    parser.add_argument("--window", type=int, default=4096,
                        help="count window T in items (default 4096)")
    parser.add_argument("--memory", default="64KB",
                        help="monitor memory budget (default 64KB)")
    parser.add_argument("--chunk", type=int, default=4096,
                        help="insert_many chunk size (default 4096)")
    parser.add_argument("--dataset", default="caida",
                        choices=("caida", "criteo", "network"),
                        help="synthetic trace to replay (default caida)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--format", dest="fmt", default="prometheus",
                        choices=("prometheus", "json"),
                        help="exposition printed to stdout")
    parser.add_argument("--serve", action="store_true",
                        help="serve /metrics over HTTP instead of printing")
    parser.add_argument("--port", type=int, default=9464,
                        help="HTTP port for --serve (default 9464; 0 = any)")
    parser.add_argument("--serve-seconds", type=float, default=0.0,
                        help="stop serving after this many seconds "
                             "(default: serve until interrupted)")
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    # Import lazily: the dataset synthesizers pull in the heavier parts
    # of the library, which pure exposition users never need.
    from ..datasets import get_dataset

    registry = runtime.enable(fresh=True)
    monitor = ItemBatchMonitor(count_window(args.window),
                               memory=args.memory, seed=args.seed)
    stream = get_dataset(args.dataset, n_items=args.items,
                         window_hint=args.window, seed=args.seed)
    keys = stream.keys
    for pos in range(0, len(keys), max(1, args.chunk)):
        monitor.observe_many(keys[pos:pos + args.chunk])
    monitor.metrics()  # publish monitor/sketch gauges + occupancy

    if args.serve:
        from .http import MetricsServer
        server = MetricsServer(port=args.port).start()
        print(f"serving {server.url} (and /metrics.json)", file=sys.stderr)
        try:
            if args.serve_seconds > 0:
                time.sleep(args.serve_seconds)
            else:
                while True:
                    time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    elif args.fmt == "json":
        print(snapshot_json(registry))
    else:
        print(prometheus_text(registry), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
