"""``python -m repro.obs`` — drive a monitored stream and expose metrics.

Runs an :class:`~repro.monitor.ItemBatchMonitor` over a synthetic
dataset trace with observability enabled, then prints the registry in
the requested exposition format (or serves it over HTTP with
``--serve``). Doubles as a smoke test that every instrumentation point
emits, and as the quickest way to eyeball the metric catalogue::

    python -m repro.obs --items 100000 --format prometheus
    python -m repro.obs --format json --rings
    python -m repro.obs --serve --serve-seconds 30 &
    curl http://127.0.0.1:9464/metrics

The ``audit`` subcommand attaches the live accuracy auditor
(:mod:`repro.obs.audit`) to the monitor and prints each cycle's
observed-vs-predicted error table::

    python -m repro.obs audit --demo
    python -m repro.obs audit --demo --undersized   # trips drift alerts
    python -m repro.obs audit --watch               # live redrawn view

The ``trace`` subcommand drives the same stream with span tracing on
(optionally sharded) and tails the span ring, exports a Perfetto-loadable
Chrome trace, or reads those back out of a flight-recorder bundle::

    python -m repro.obs trace --demo --tail 20
    python -m repro.obs trace --demo --shards 4 --router process \\
        --chrome trace.json
    python -m repro.obs trace --demo --crash --router process --shards 4
    python -m repro.obs trace --input flightdumps/flight-....json \\
        --chrome trace.json

The ``perf`` subcommand drives the persistent benchmark ledger and its
noise-aware regression gate (:mod:`repro.obs.perf`)::

    python -m repro.obs perf record --bench obs --quick
    python -m repro.obs perf baseline --bench obs --quick --last 5
    python -m repro.obs perf compare     # exit 1 on a real regression
    python -m repro.obs perf trend --bench obs --metric overhead_pct
"""

from __future__ import annotations

import argparse
import sys
import time

from ..monitor import ItemBatchMonitor
from ..timebase import count_window
from . import names, runtime
from .export import prometheus_text, snapshot_json


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run an instrumented ItemBatchMonitor over a "
                    "synthetic stream and expose its metrics.",
    )
    parser.add_argument("--items", type=int, default=100_000,
                        help="stream length (default 100000)")
    parser.add_argument("--window", type=int, default=4096,
                        help="count window T in items (default 4096)")
    parser.add_argument("--memory", default="64KB",
                        help="monitor memory budget (default 64KB)")
    parser.add_argument("--chunk", type=int, default=4096,
                        help="insert_many chunk size (default 4096)")
    parser.add_argument("--dataset", default="caida",
                        choices=("caida", "criteo", "network"),
                        help="synthetic trace to replay (default caida)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--format", dest="fmt", default="prometheus",
                        choices=("prometheus", "json"),
                        help="exposition printed to stdout")
    parser.add_argument("--rings", action="store_true",
                        help="embed the sweep-trace and event rings in "
                             "--format json output")
    parser.add_argument("--serve", action="store_true",
                        help="serve /metrics over HTTP instead of printing")
    parser.add_argument("--port", type=int, default=9464,
                        help="HTTP port for --serve (default 9464; 0 = any)")
    parser.add_argument("--serve-seconds", type=float, default=0.0,
                        help="stop serving after this many seconds "
                             "(default: serve until interrupted)")

    sub = parser.add_subparsers(dest="command")
    audit = sub.add_parser(
        "audit",
        help="attach the live accuracy auditor and print its cycles",
        description="Drive a monitored stream with the shadow-truth "
                    "accuracy auditor attached; prints observed vs "
                    "predicted error per task and any drift alerts.",
    )
    audit.add_argument("--items", type=int, default=200_000,
                       help="stream length (default 200000)")
    audit.add_argument("--window", type=int, default=4096,
                       help="count window T in items (default 4096)")
    audit.add_argument("--memory", default="128KB",
                       help="monitor memory budget (default 128KB)")
    audit.add_argument("--undersized", action="store_true",
                       help="shrink the budget to 2KB to demonstrate "
                            "drift/budget alerts")
    audit.add_argument("--sample-rate", type=float, default=0.05,
                       help="shadow-sampled key fraction (default 0.05)")
    audit.add_argument("--every", type=int, default=None,
                       help="audit cadence in items (default: auto)")
    audit.add_argument("--chunk", type=int, default=4096,
                       help="insert_many chunk size (default 4096)")
    audit.add_argument("--dataset", default="caida",
                       choices=("caida", "criteo", "network"),
                       help="synthetic trace to replay (default caida)")
    audit.add_argument("--seed", type=int, default=1)
    audit.add_argument("--demo", action="store_true",
                       help="print every audit cycle as it completes")
    audit.add_argument("--watch", action="store_true",
                       help="redraw a live view per cycle (implies --demo)")

    trace = sub.add_parser(
        "trace",
        help="drive a traced stream; tail spans or export a Chrome trace",
        description="Run a span-traced ItemBatchMonitor (optionally "
                    "sharded) and print the span ring, export it as a "
                    "Chrome trace-event file, or re-export spans from a "
                    "flight-recorder bundle.",
    )
    trace.add_argument("--items", type=int, default=100_000,
                       help="stream length (default 100000)")
    trace.add_argument("--window", type=int, default=4096,
                       help="count window T in items (default 4096)")
    trace.add_argument("--memory", default="64KB",
                       help="monitor memory budget (default 64KB)")
    trace.add_argument("--chunk", type=int, default=4096,
                       help="insert_many chunk size (default 4096)")
    trace.add_argument("--dataset", default="caida",
                       choices=("caida", "criteo", "network"),
                       help="synthetic trace to replay (default caida)")
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument("--shards", type=int, default=1,
                       help="shard the activeness sketch P ways (default 1)")
    trace.add_argument("--router", default="serial",
                       choices=("serial", "process"),
                       help="shard router for --shards > 1 (default serial)")
    trace.add_argument("--sample-every", type=int, default=1,
                       help="record 1 in N traces (default 1 = all)")
    trace.add_argument("--capacity", type=int, default=2048,
                       help="span ring capacity (default 2048)")
    trace.add_argument("--tail", type=int, default=10,
                       help="print the last N spans (default 10; 0 = none)")
    trace.add_argument("--chrome", metavar="PATH", default=None,
                       help="write a Chrome trace-event (Perfetto) file")
    trace.add_argument("--input", metavar="PATH", default=None,
                       help="read spans from a flight bundle instead of "
                            "driving a stream")
    trace.add_argument("--crash", action="store_true",
                       help="inject a worker crash (needs --router "
                            "process) and cut a flight bundle")
    trace.add_argument("--flight-dir", default=None,
                       help="flight-recorder dump directory "
                            "(default: $REPRO_FLIGHT_DIR or flightdumps)")
    trace.add_argument("--demo", action="store_true",
                       help="drive the synthetic stream (the default "
                            "action when --input is not given)")

    # Import here, not at module top: the perf tree pulls in the bench
    # experiment registry, which exposition users never need.
    from .perf.cli import add_perf_subparser
    add_perf_subparser(sub)
    return parser


def _quantile_line(registry) -> "str | None":
    """Latency/error quantile footer for the watch view."""
    cycle_h = registry.get(names.AUDIT_CYCLE_SECONDS)
    if cycle_h is None or cycle_h.count == 0:
        return None
    parts = [
        f"cycle p50={cycle_h.quantile(0.5) * 1e3:.2f}ms "
        f"p95={cycle_h.quantile(0.95) * 1e3:.2f}ms"
    ]
    for task in ("size", "span"):
        hist = registry.get(names.AUDIT_ABS_ERROR, {"task": task})
        if hist is not None and hist.count:
            parts.append(
                f"{task} |err| p50={hist.quantile(0.5):.3g} "
                f"p95={hist.quantile(0.95):.3g}"
            )
    return "  " + "  |  ".join(parts)


def _print_report(report, registry, watch: bool) -> None:
    if watch:
        sys.stdout.write("\x1b[2J\x1b[H")
    for line in report.lines():
        print(line)
    footer = _quantile_line(registry)
    if footer is not None:
        print(footer)
    if not watch:
        print()
    sys.stdout.flush()


def run_audit(args) -> int:
    from ..datasets import get_dataset

    registry = runtime.enable(fresh=True)
    memory = "2KB" if args.undersized else args.memory
    monitor = ItemBatchMonitor(count_window(args.window), memory=memory,
                               seed=args.seed)
    auditor = monitor.audited(sample_rate=args.sample_rate,
                              every_items=args.every)
    stream = get_dataset(args.dataset, n_items=args.items,
                         window_hint=args.window, seed=args.seed)
    keys = stream.keys
    verbose = args.demo or args.watch

    cycles_printed = 0
    for pos in range(0, len(keys), max(1, args.chunk)):
        monitor.observe_many(keys[pos:pos + args.chunk])
        report = auditor.last_report
        if (verbose and report is not None
                and report.cycle > cycles_printed):
            _print_report(report, registry, args.watch)
            cycles_printed = report.cycle

    # Always close with a final cycle over the full stream, so even a
    # stream shorter than the cadence produces one report.
    report = auditor.audit()
    _print_report(report, registry, args.watch)
    worst = {"info": 0, "warning": 1, "critical": 2}
    severity = max((worst[a.severity] for a in report.alerts), default=0)
    # Alerts are the tool's finding, not a failure of the tool.
    print(f"done: {report.cycle} audit cycles, "
          f"{len(report.alerts)} alerts in the final cycle"
          + (" (see above)" if severity else ""))
    return 0


def _print_span_tail(spans, tail: int) -> None:
    if tail <= 0 or not spans:
        return
    print(f"last {min(tail, len(spans))} of {len(spans)} spans:")
    for span in spans[-tail:]:
        parent = span.get("parent_id") or "-"
        attrs = span.get("attrs") or {}
        attr_text = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        print(f"  {span.get('duration', 0.0) * 1e3:9.3f}ms "
              f"{span.get('name', '?'):<22} trace={span.get('trace_id')} "
              f"span={span.get('span_id')} parent={parent} "
              f"[{span.get('status', 'ok')}] {attr_text}")


def _export_chrome(spans, path: str) -> None:
    import json

    from . import trace as trace_mod

    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace_mod.chrome_trace(spans), fh, indent=2, default=str)
    print(f"wrote Chrome trace ({len(spans)} spans) to {path} "
          "— load it at ui.perfetto.dev")


def run_trace(args) -> int:
    import json

    from . import flight
    from . import trace as trace_mod

    if args.input:
        with open(args.input, encoding="utf-8") as fh:
            bundle = json.load(fh)
        spans = bundle.get("trace", {}).get("spans", [])
        reason = bundle.get("reason", "?")
        error = bundle.get("error") or {}
        print(f"flight bundle: reason={reason} "
              f"error={error.get('type', '-')} pid={bundle.get('pid')}")
        _print_span_tail(spans, args.tail)
        if args.chrome:
            _export_chrome(spans, args.chrome)
        return 0

    from ..datasets import get_dataset

    runtime.enable(fresh=True)
    trace_mod.configure(capacity=args.capacity,
                        sample_every=args.sample_every)
    flight.install(args.flight_dir)
    if args.shards > 1:
        monitor = ItemBatchMonitor.sharded(
            count_window(args.window), memory=args.memory, seed=args.seed,
            shards=args.shards, router=args.router)
    else:
        monitor = ItemBatchMonitor(count_window(args.window),
                                   memory=args.memory, seed=args.seed)
    stream = get_dataset(args.dataset, n_items=args.items,
                         window_hint=args.window, seed=args.seed)
    keys = stream.keys
    try:
        for pos in range(0, len(keys), max(1, args.chunk)):
            monitor.observe_many(keys[pos:pos + args.chunk])
        if args.crash:
            if args.router != "process" or args.shards < 2:
                print("--crash needs --router process and --shards >= 2",
                      file=sys.stderr)
                return 2
            router = monitor._sketches[0].router
            router.inject(0, "crash")
            try:
                router.drain()
            except Exception as exc:
                print(f"injected crash surfaced as "
                      f"{type(exc).__name__}: {exc}")
    finally:
        monitor.close()
    if args.crash:
        path = flight.last_dump_path()
        if path is None:
            print("no flight bundle was written", file=sys.stderr)
            return 1
        print(f"flight bundle: {path}")
    snapshot = trace_mod.snapshot()
    spans = snapshot["spans"]
    print(f"span ring: {len(spans)} held / "
          f"{snapshot['total_pushed']} pushed "
          f"(capacity {snapshot['capacity']}, "
          f"sample_every {snapshot['sample_every']})")
    _print_span_tail(spans, args.tail)
    if args.chrome:
        _export_chrome(spans, args.chrome)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "command", None) == "audit":
        return run_audit(args)
    if getattr(args, "command", None) == "trace":
        return run_trace(args)
    if getattr(args, "command", None) == "perf":
        from .perf.cli import run_perf
        return run_perf(args)

    # Import lazily: the dataset synthesizers pull in the heavier parts
    # of the library, which pure exposition users never need.
    from ..datasets import get_dataset

    registry = runtime.enable(fresh=True)
    monitor = ItemBatchMonitor(count_window(args.window),
                               memory=args.memory, seed=args.seed)
    stream = get_dataset(args.dataset, n_items=args.items,
                         window_hint=args.window, seed=args.seed)
    keys = stream.keys
    for pos in range(0, len(keys), max(1, args.chunk)):
        monitor.observe_many(keys[pos:pos + args.chunk])
    monitor.metrics()  # publish monitor/sketch gauges + occupancy

    if args.serve:
        from .http import MetricsServer
        server = MetricsServer(port=args.port).start()
        print(f"serving {server.url} (and /metrics.json)", file=sys.stderr)
        try:
            if args.serve_seconds > 0:
                time.sleep(args.serve_seconds)
            else:
                while True:
                    time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    elif args.fmt == "json":
        rings = runtime.rings_snapshot() if args.rings else None
        print(snapshot_json(registry, rings=rings))
    else:
        print(prometheus_text(registry), end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
