"""Process-wide observability switchboard.

Hot-path instrumentation in ``core/``, ``engine/``, ``concurrent`` and
``monitor`` does::

    from ..obs import runtime as _obs
    ...
    if _obs.ENABLED:
        _obs.record_batch(...)

Disabled (the default), the cost is one module-attribute load and a
falsy branch — nothing is imported beyond this module, no objects are
allocated, and :func:`registry` hands back the shared
:data:`~repro.obs.registry.NULL_REGISTRY`. :func:`enable` swaps in a
real :class:`~repro.obs.registry.MetricsRegistry` plus a
:class:`~repro.obs.ring.SweepTraceRing`; :func:`observed` scopes that
to a ``with`` block. The enabled-mode overhead is measured by
``benchmarks/bench_obs_overhead.py`` against a documented <10% budget.

Sites must always re-read ``_obs.ENABLED`` (attribute access on the
module) rather than ``from`` -importing the flag, which would freeze
its value at import time.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Union

import numpy as np

from . import names
from .events import EventRing, ObsEvent
from .registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    SECONDS_BOUNDS,
)
from .ring import SweepTraceRing

__all__ = [
    "ENABLED",
    "enable",
    "disable",
    "enabled",
    "register_reset_hook",
    "observed",
    "registry",
    "sweep_ring",
    "event_ring",
    "rings_snapshot",
    "timed",
    "record_sweep",
    "record_sweep_deferral",
    "record_insert",
    "record_query",
    "record_batch",
    "record_lock",
    "publish_kernel_info",
    "record_event",
    "record_audit_ingest",
    "sample_clock",
    "publish_sketch",
    "publish_monitor",
    "record_serve_connection",
    "record_serve_command",
    "record_serve_error",
    "record_serve_quarantine",
    "record_serve_checkpoint",
    "record_serve_restore",
    "publish_serve_tenants",
]

DEFAULT_RING_CAPACITY = 1024
DEFAULT_EVENT_CAPACITY = 256

#: The master switch. Instrumentation sites read this through the
#: module (``_obs.ENABLED``) so toggling is visible everywhere at once.
ENABLED: bool = False

_REGISTRY: "Union[MetricsRegistry, NullRegistry]" = NULL_REGISTRY
_RING: SweepTraceRing = SweepTraceRing(1)
_EVENTS: EventRing = EventRing(1)

#: Hot-path recorder cache: key -> tuple of pre-interned metric objects.
#: Registry interning builds a label dict plus a sorted key per lookup;
#: recorders that fire per batch/sweep would pay that on every event, so
#: they memoise their series here. Invalidated whenever the switchboard
#: flips (enable/disable), which is the only time ``registry()`` can
#: start handing out different objects.
_SERIES: "Dict[Any, Any]" = {}

#: Callbacks run whenever ``enable(fresh=True)`` rebuilds the rings, so
#: satellite stores (e.g. the span ring in :mod:`repro.obs.trace`) can
#: start from empty too. Registered lazily to keep this module free of
#: imports of its dependents.
_RESET_HOOKS: "List[Callable[[], None]]" = []


def register_reset_hook(hook: "Callable[[], None]") -> None:
    """Run ``hook`` whenever a fresh enable rebuilds the rings."""
    _RESET_HOOKS.append(hook)


def enable(ring_capacity: int = DEFAULT_RING_CAPACITY,
           fresh: bool = True,
           event_capacity: int = DEFAULT_EVENT_CAPACITY) -> MetricsRegistry:
    """Turn instrumentation on; returns the live registry.

    ``fresh=True`` (default) starts from an empty registry, trace ring,
    and event ring; ``fresh=False`` resumes accumulating into the
    previous ones (if any survive from an earlier enable).
    """
    global ENABLED, _REGISTRY, _RING, _EVENTS
    if fresh or isinstance(_REGISTRY, NullRegistry):
        _REGISTRY = MetricsRegistry()
        _RING = SweepTraceRing(ring_capacity)
        _EVENTS = EventRing(event_capacity)
        for hook in _RESET_HOOKS:
            hook()
    _SERIES.clear()
    ENABLED = True
    assert isinstance(_REGISTRY, MetricsRegistry)
    return _REGISTRY


def disable() -> "Union[MetricsRegistry, NullRegistry]":
    """Turn instrumentation off; returns the (still readable) registry."""
    global ENABLED
    ENABLED = False
    _SERIES.clear()
    return _REGISTRY


def enabled() -> bool:
    """Is instrumentation currently on?"""
    return ENABLED


def registry() -> "Union[MetricsRegistry, NullRegistry]":
    """The live registry, or the shared no-op one while disabled."""
    return _REGISTRY if ENABLED else NULL_REGISTRY


def sweep_ring() -> SweepTraceRing:
    """The sweep-trace ring populated while instrumentation is on."""
    return _RING


def event_ring() -> EventRing:
    """The structured-event ring populated while instrumentation is on."""
    return _EVENTS


def rings_snapshot() -> "Dict[str, Any]":
    """JSON-friendly image of both rings (sweep trace + events).

    Embedded in ``/metrics.json`` responses and the CLI's ``--rings``
    output; read-only, never part of a registry round trip.
    """
    return {
        "sweep": {
            "capacity": _RING.capacity,
            "total_pushed": _RING.total_pushed,
            "events": _RING.events(),
        },
        "events": {
            "capacity": _EVENTS.capacity,
            "total_pushed": _EVENTS.total_pushed,
            "events": _EVENTS.dicts(),
        },
    }


@contextmanager
def observed(ring_capacity: int = DEFAULT_RING_CAPACITY) -> "Iterator[MetricsRegistry]":
    """``with observed() as reg:`` — enable for the block, then disable.

    Yields the fresh registry, which stays readable (snapshot, export)
    after the block exits.
    """
    reg = enable(ring_capacity=ring_capacity, fresh=True)
    try:
        yield reg
    finally:
        disable()


class timed:
    """Time a block or function into a log-scale seconds histogram.

    Usable as a context manager::

        with obs.timed(names.BENCH_STAGE_SECONDS, {"stage": "inserts"}):
            drive()

    or as a decorator (a fresh timer per call, so it is reentrant)::

        @obs.timed(names.BENCH_STAGE_SECONDS, {"stage": "query"})
        def query_all(...): ...

    While instrumentation is disabled the clock is never read.
    """

    __slots__ = ("name", "labels", "_t0", "_active")

    def __init__(self, name: str,
                 labels: "Optional[Mapping[str, str]]" = None):
        self.name = name
        self.labels: "Optional[Dict[str, str]]" = (
            dict(labels) if labels else None
        )
        self._t0 = 0.0
        self._active = False

    def __enter__(self) -> "timed":
        self._active = ENABLED
        if self._active:
            self._t0 = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._active:
            elapsed = perf_counter() - self._t0
            _REGISTRY.histogram(
                self.name, "Stage latency in seconds (log-2 buckets).",
                labels=self.labels, bounds=SECONDS_BOUNDS,
            ).observe(elapsed)
        return False

    def __call__(self, func: "Callable[..., Any]") -> "Callable[..., Any]":
        name, labels = self.name, self.labels

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with timed(name, labels):
                return func(*args, **kwargs)

        return wrapper


# ------------------------------------------------------------------ recorders
# Call sites guard with ``if _obs.ENABLED`` so none of this executes on
# the disabled path; the helpers also tolerate being called directly
# (they write into the null registry, a no-op).

def record_sweep(time: float, pointer: int, cleaned: int, steps: int,
                 lag: int = 0) -> None:
    """One executed cleaning sweep: counters plus a ring-trace event."""
    series = _SERIES.get("sweep")
    if series is None:
        reg = registry()
        series = (
            reg.counter(names.CLOCK_SWEEPS_TOTAL,
                        "Cleaning sweeps executed."),
            reg.counter(names.CLOCK_SWEEP_STEPS_TOTAL,
                        "Individual sweep steps (cell visits)."),
            reg.counter(names.CLOCK_CELLS_CLEANED_TOTAL,
                        "Cells expired (decremented to zero) by cleaning."),
            reg.gauge(names.CLOCK_SWEEP_LAG_STEPS,
                      "Cleaner lag behind the ideal cadence, in steps."),
        )
        _SERIES["sweep"] = series
    sweeps_c, steps_c, cleaned_c, lag_g = series
    sweeps_c.inc()
    steps_c.inc(steps)
    cleaned_c.inc(cleaned)
    lag_g.set(lag)
    if ENABLED:
        _RING.push(time, pointer, cleaned, steps)


def record_sweep_deferral(lag: int) -> None:
    """A deferred-mode clock skipped sweeping; publish its current lag."""
    gauge = _SERIES.get("sweep_lag")
    if gauge is None:
        gauge = registry().gauge(
            names.CLOCK_SWEEP_LAG_STEPS,
            "Cleaner lag behind the ideal cadence, in steps.",
        )
        _SERIES["sweep_lag"] = gauge
    gauge.set(lag)


def record_insert(sketch: str, count: int = 1) -> None:
    """Items inserted through a sketch's scalar path."""
    key = ("insert", sketch)
    counter = _SERIES.get(key)
    if counter is None:
        counter = registry().counter(
            names.SKETCH_INSERTS_TOTAL, "Items inserted.",
            labels={"sketch": sketch},
        )
        _SERIES[key] = counter
    counter.inc(count)


def record_query(sketch: str, count: int = 1) -> None:
    """Query operations resolved by a sketch."""
    key = ("query", sketch)
    counter = _SERIES.get(key)
    if counter is None:
        counter = registry().counter(
            names.SKETCH_QUERIES_TOTAL, "Query operations resolved.",
            labels={"sketch": sketch},
        )
        _SERIES[key] = counter
    counter.inc(count)


def record_batch(sketch: str, items: int, path: str, seconds: float) -> None:
    """One batch applied by the engine, with its path and wall time.

    Also counts the items into ``SKETCH_INSERTS_TOTAL`` — engine
    batches *are* inserts, and folding the two records into one cached
    series tuple keeps the per-batch cost to a single dict hit.
    """
    key = ("batch", sketch, path)
    series = _SERIES.get(key)
    if series is None:
        reg = registry()
        labels = {"sketch": sketch}
        series = (
            reg.counter(names.ENGINE_BATCH_ITEMS_TOTAL,
                        "Items ingested through the batch engine.",
                        labels=labels),
            reg.counter(names.ENGINE_BATCHES_TOTAL,
                        "Batches applied, by execution path.",
                        labels={"sketch": sketch, "path": path}),
            reg.histogram(names.ENGINE_BATCH_SIZE,
                          "Batch sizes handed to the engine (log-2 buckets).",
                          labels=labels),
            reg.histogram(names.ENGINE_BATCH_SECONDS,
                          "Wall-clock seconds per applied batch "
                          "(log-2 buckets).",
                          labels=labels, bounds=SECONDS_BOUNDS),
            reg.gauge(names.ENGINE_ITEMS_PER_SEC,
                      "Items/sec of the most recent batch.",
                      labels=labels),
            reg.counter(names.SKETCH_INSERTS_TOTAL, "Items inserted.",
                        labels=labels),
        )
        _SERIES[key] = series
    items_c, batches_c, size_h, seconds_h, ips_g, inserts_c = series
    items_c.inc(items)
    batches_c.inc()
    size_h.observe(items)
    seconds_h.observe(seconds)
    if seconds > 0.0:
        ips_g.set(items / seconds)
    inserts_c.inc(items)


def record_lock(wait_seconds: float, contended: bool) -> None:
    """One guarded lock acquisition (wait time only measured if contended)."""
    series = _SERIES.get("lock")
    if series is None:
        reg = registry()
        series = (
            reg.counter(names.LOCK_ACQUIRES_TOTAL,
                        "Guarded lock acquisitions."),
            reg.counter(names.LOCK_CONTENTION_TOTAL,
                        "Acquisitions that found the lock held."),
            reg.counter(names.LOCK_WAIT_SECONDS_TOTAL,
                        "Seconds spent blocked on the lock."),
        )
        _SERIES["lock"] = series
    acquires_c, contention_c, wait_c = series
    acquires_c.inc()
    if contended:
        contention_c.inc()
        wait_c.inc(wait_seconds)


def publish_kernel_info(backend: str, compiled: bool) -> None:
    """Publish the active kernel backend as an info-style gauge.

    The ``repro_kernel_info`` series carries its payload in labels
    (``backend``, ``compiled``) with value 1, the Prometheus ``_info``
    idiom; when the process default changes, the superseded label set
    is zeroed so exactly one series reads 1 at any time.
    """
    reg = registry()
    labels = {"backend": backend, "compiled": "true" if compiled else "false"}
    previous = _SERIES.get("kernel_info")
    if previous is not None and previous != labels:
        reg.gauge(names.KERNEL_INFO, "Active kernel backend (info gauge).",
                  labels=previous).set(0)
    _SERIES["kernel_info"] = labels
    reg.gauge(names.KERNEL_INFO, "Active kernel backend (info gauge).",
              labels=labels).set(1)


def sample_clock(clock: Any,
                 labels: "Optional[Mapping[str, str]]" = None) -> None:
    """Sample a ClockArray's occupancy into gauges plus a histogram.

    Duck-typed on ``clock.values`` / ``clock.s`` so this module never
    imports ``repro.core`` (instrumented modules import *us*).
    """
    reg = registry()
    values = clock.values
    nonzero = values[values > 0]
    n = int(values.size)
    fill = float(nonzero.size) / n if n else 0.0
    label_dict = dict(labels) if labels else None
    reg.gauge(names.CLOCK_FILL_RATIO,
              "Fraction of clock cells currently non-zero.",
              labels=label_dict).set(fill)
    reg.gauge(names.CLOCK_ZERO_CELLS,
              "Clock cells currently zero.",
              labels=label_dict).set(n - int(nonzero.size))
    bounds = np.power(2.0, np.arange(0, int(clock.s) + 1, dtype=np.float64))
    reg.histogram(names.CLOCK_CELL_VALUE,
                  "Non-zero clock cell values (log-2 buckets).",
                  labels=label_dict, bounds=bounds).observe_many(nonzero)


def publish_sketch(sketch: str, memory_bits: int,
                   fill_ratio: "Optional[float]" = None) -> None:
    """Publish a sketch's footprint and fill gauges."""
    reg = registry()
    labels = {"sketch": sketch}
    reg.gauge(names.SKETCH_MEMORY_BITS,
              "Accounted memory footprint in bits.",
              labels=labels).set(memory_bits)
    if fill_ratio is not None:
        reg.gauge(names.SKETCH_FILL_RATIO,
                  "Estimated fraction of live cells.",
                  labels=labels).set(fill_ratio)


def record_event(time: float, severity: str, kind: str, message: str,
                 fields: "Optional[Mapping[str, Any]]" = None) -> None:
    """Record one structured event: ring push plus a severity counter.

    Events always reach the counter (into the null registry while
    disabled, a no-op); the ring push is enabled-only, mirroring the
    sweep trace.
    """
    key = ("event", severity, kind)
    counter = _SERIES.get(key)
    if counter is None:
        counter = registry().counter(
            names.OBS_EVENTS_TOTAL, "Structured observability events.",
            labels={"severity": severity, "kind": kind},
        )
        _SERIES[key] = counter
    counter.inc()
    if ENABLED:
        _EVENTS.push(ObsEvent(time=time, severity=severity, kind=kind,
                              message=message, fields=dict(fields or {})))


def record_audit_ingest(sampled: int, shadow_keys: int) -> None:
    """Shadow-sampler intake: sampled item count plus tracker size."""
    series = _SERIES.get("audit_ingest")
    if series is None:
        reg = registry()
        series = (
            reg.counter(names.AUDIT_SAMPLED_ITEMS_TOTAL,
                        "Stream items folded into the shadow tracker."),
            reg.gauge(names.AUDIT_SHADOW_KEYS,
                      "Distinct keys held by the shadow tracker."),
        )
        _SERIES["audit_ingest"] = series
    sampled_c, keys_g = series
    sampled_c.inc(sampled)
    keys_g.set(shadow_keys)


def record_shard_route(shard: int, items: int, depth: int = 0) -> None:
    """One scatter batch dispatched to a shard, with its queue depth.

    ``depth`` is the number of commands already pending in the shard's
    worker queue at dispatch time (0 for the serial router, which
    applies batches inline).
    """
    key = ("shard_route", shard)
    series = _SERIES.get(key)
    if series is None:
        reg = registry()
        labels = {"shard": str(shard)}
        series = (
            reg.counter(names.SHARD_ITEMS_ROUTED_TOTAL,
                        "Items routed to this shard.", labels=labels),
            reg.counter(names.SHARD_BATCHES_ROUTED_TOTAL,
                        "Scatter batches dispatched to this shard.",
                        labels=labels),
            reg.gauge(names.SHARD_QUEUE_DEPTH,
                      "Commands pending in the shard's worker queue "
                      "at dispatch time.", labels=labels),
        )
        _SERIES[key] = series
    items_c, batches_c, depth_g = series
    items_c.inc(items)
    batches_c.inc()
    depth_g.set(depth)


def record_shard_merge(sketch: str, shards: int, seconds: float) -> None:
    """One merged global snapshot built from per-shard replicas."""
    key = ("shard_merge", sketch)
    series = _SERIES.get(key)
    if series is None:
        reg = registry()
        labels = {"sketch": sketch}
        series = (
            reg.counter(names.SHARD_MERGES_TOTAL,
                        "Merged global snapshots built.", labels=labels),
            reg.histogram(names.SHARD_MERGE_SECONDS,
                          "Wall-clock seconds per merged-snapshot build "
                          "(log-2 buckets).",
                          labels=labels, bounds=SECONDS_BOUNDS),
        )
        _SERIES[key] = series
    merges_c, seconds_h = series
    merges_c.inc()
    seconds_h.observe(seconds)


def record_serve_connection(delta: int, open_now: int) -> None:
    """A client connection opened (``delta=1``) or closed (``delta=-1``)."""
    series = _SERIES.get("serve_conn")
    if series is None:
        reg = registry()
        series = (
            reg.counter(names.SERVE_CONNECTIONS_TOTAL,
                        "Client connections accepted."),
            reg.gauge(names.SERVE_CONNECTIONS_OPEN,
                      "Client connections currently open."),
        )
        _SERIES["serve_conn"] = series
    total_c, open_g = series
    if delta > 0:
        total_c.inc(delta)
    open_g.set(open_now)


def record_serve_command(tenant: str, op: str, items: int = 0) -> None:
    """One successful protocol command (plus its ingested item count)."""
    key = ("serve_cmd", tenant, op)
    series = _SERIES.get(key)
    if series is None:
        reg = registry()
        series = (
            reg.counter(names.SERVE_COMMANDS_TOTAL,
                        "Protocol commands executed successfully.",
                        labels={"tenant": tenant, "op": op}),
            reg.counter(names.SERVE_ITEMS_TOTAL,
                        "Stream items ingested through the service.",
                        labels={"tenant": tenant}),
        )
        _SERIES[key] = series
    commands_c, items_c = series
    commands_c.inc()
    if items:
        items_c.inc(items)


def record_serve_error(code: str) -> None:
    """One typed error response sent on the wire, by error code."""
    key = ("serve_err", code)
    counter = _SERIES.get(key)
    if counter is None:
        counter = registry().counter(
            names.SERVE_ERRORS_TOTAL, "Error responses sent on the wire.",
            labels={"code": code})
        _SERIES[key] = counter
    counter.inc()


def record_serve_quarantine(tenant: str) -> None:
    """A tenant was quarantined after an engine failure."""
    key = ("serve_quarantine", tenant)
    counter = _SERIES.get(key)
    if counter is None:
        counter = registry().counter(
            names.SERVE_QUARANTINES_TOTAL,
            "Tenants quarantined after an engine failure.",
            labels={"tenant": tenant})
        _SERIES[key] = counter
    counter.inc()


def record_serve_checkpoint(tenant: str, seconds: float) -> None:
    """One checkpoint written for a tenant."""
    key = ("serve_ckpt", tenant)
    series = _SERIES.get(key)
    if series is None:
        reg = registry()
        series = (
            reg.counter(names.SERVE_CHECKPOINTS_TOTAL,
                        "Checkpoints written.", labels={"tenant": tenant}),
            reg.histogram(names.SERVE_CHECKPOINT_SECONDS,
                          "Wall-clock seconds per checkpoint write "
                          "(log-2 buckets).", bounds=SECONDS_BOUNDS),
        )
        _SERIES[key] = series
    checkpoints_c, seconds_h = series
    checkpoints_c.inc()
    seconds_h.observe(seconds)


def record_serve_restore(tenant: str, outcome: str) -> None:
    """One restore attempt resolved (restored / fallback / fresh)."""
    key = ("serve_restore", tenant, outcome)
    counter = _SERIES.get(key)
    if counter is None:
        counter = registry().counter(
            names.SERVE_RESTORES_TOTAL,
            "Restore attempts at service start, by outcome.",
            labels={"tenant": tenant, "outcome": outcome})
        _SERIES[key] = counter
    counter.inc()


def publish_serve_tenants(count: int) -> None:
    """Publish the number of resident tenants."""
    registry().gauge(names.SERVE_TENANTS,
                     "Tenants currently resident.").set(count)


def publish_monitor(memory_bits: int, split: "Mapping[str, float]") -> None:
    """Publish an ItemBatchMonitor's footprint and normalised split."""
    reg = registry()
    reg.gauge(names.MONITOR_MEMORY_BITS,
              "Total accounted monitor footprint in bits.").set(memory_bits)
    reg.gauge(names.MONITOR_TASKS, "Enabled measurement tasks.").set(len(split))
    for task, fraction in split.items():
        reg.gauge(names.MONITOR_SPLIT_RATIO,
                  "Configured memory split by task (sums to 1).",
                  labels={"task": task}).set(fraction)
