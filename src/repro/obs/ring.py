"""Fixed-size ring buffer for sweep traces.

Every cleaning sweep emits one event — wall-clock timestamp, pointer
position after the sweep, number of cells cleaned, and steps executed —
into pre-allocated parallel columns. Pushing is an index write (no
allocation, no list growth); when the ring is full the oldest events
are overwritten, so a long run keeps only the most recent ``capacity``
sweeps. The columns are plain Python lists, not numpy arrays: a push
happens on the instrumented hot path, and four list item writes are an
order of magnitude cheaper than four numpy scalar stores. Tests and
the bench harness read the events back in chronological order via
:meth:`SweepTraceRing.events` (or as numpy arrays via
:meth:`SweepTraceRing.arrays`, converted on demand).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import ConfigurationError

__all__ = ["SweepTraceRing", "SweepEvent"]

#: One decoded trace event (plain dict keys, JSON-friendly).
SweepEvent = Dict[str, float]


class SweepTraceRing:
    """Overwriting ring of the most recent ``capacity`` sweep events."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(
                f"ring capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._time = [0.0] * self.capacity
        self._pointer = [0] * self.capacity
        self._cleaned = [0] * self.capacity
        self._steps = [0] * self.capacity
        self._next = 0
        self._total = 0

    def push(self, time: float, pointer: int, cleaned: int, steps: int) -> None:
        """Record one sweep event, overwriting the oldest when full."""
        i = self._next
        self._time[i] = time
        self._pointer[i] = pointer
        self._cleaned[i] = cleaned
        self._steps[i] = steps
        self._next = (i + 1) % self.capacity
        self._total += 1

    def __len__(self) -> int:
        """Events currently held (≤ capacity)."""
        return min(self._total, self.capacity)

    @property
    def total_pushed(self) -> int:
        """Events ever pushed, including those already overwritten."""
        return self._total

    def _order(self) -> "List[int]":
        size = len(self)
        if self._total <= self.capacity:
            return list(range(size))
        # Full and wrapped: oldest surviving event sits at _next.
        return [(i + self._next) % self.capacity for i in range(size)]

    def arrays(self) -> "Dict[str, np.ndarray]":
        """Chronological copies of the event columns as numpy arrays."""
        order = self._order()
        return {
            "time": np.array([self._time[i] for i in order],
                             dtype=np.float64),
            "pointer": np.array([self._pointer[i] for i in order],
                                dtype=np.int64),
            "cleaned": np.array([self._cleaned[i] for i in order],
                                dtype=np.int64),
            "steps": np.array([self._steps[i] for i in order],
                              dtype=np.int64),
        }

    def events(self) -> "List[SweepEvent]":
        """Chronological list of events as plain dicts."""
        return [
            {
                "time": float(self._time[i]),
                "pointer": int(self._pointer[i]),
                "cleaned": int(self._cleaned[i]),
                "steps": int(self._steps[i]),
            }
            for i in self._order()
        ]

    def clear(self) -> None:
        """Drop all events (buffers stay allocated)."""
        self._next = 0
        self._total = 0

    def __repr__(self) -> str:
        return (
            f"SweepTraceRing(capacity={self.capacity}, "
            f"held={len(self)}, total_pushed={self._total})"
        )
