"""Deterministic per-key hash sampling for the shadow auditor.

The shadow tracker cannot afford exact state for every key, so it keeps
it for a hash-defined fraction of the key space: key ``x`` is sampled
iff ``h(x) < rate * 2^64`` for a seeded 64-bit hash ``h``. Two
properties make this the right sampling scheme for accuracy auditing:

- **per-key all-or-nothing** — every occurrence of a sampled key is
  sampled, so batch sizes, spans, and activeness of sampled keys are
  *exact*, not subsampled;
- **deterministic** — the same seed yields the same subset across the
  scalar and vectorized ingest paths, across processes, and across
  replays, so audits are reproducible.

Hashing rides the existing :mod:`repro.hashing` family machinery
(splitmix64 for integer key arrays, the family's ``hash_many`` for
arbitrary items), via a private single-cell :class:`IndexDeriver`.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError
from ...hashing import IndexDeriver

__all__ = ["ShadowSampler"]

_TWO64 = 1 << 64


class ShadowSampler:
    """Seeded hash-threshold sampler over stream keys.

    Parameters
    ----------
    rate:
        Sampled fraction of the key space, in ``(0, 1]``.
    seed:
        Hash seed. Use a seed independent of the sketches' so the
        sampled subset is uncorrelated with cell placement.
    family:
        Optional hash family for non-integer items (defaults to the
        library's default family at ``seed``).
    """

    __slots__ = ("rate", "seed", "_threshold", "_deriver")

    def __init__(self, rate: float, seed: int = 0, family=None):
        if not 0.0 < rate <= 1.0:
            raise ConfigurationError(
                f"sample rate must be in (0, 1], got {rate}"
            )
        self.rate = float(rate)
        self.seed = int(seed)
        threshold = int(round(self.rate * _TWO64))
        #: None means "sample everything" (rate rounds up to 2^64).
        self._threshold = None if threshold >= _TWO64 else threshold
        self._deriver = IndexDeriver(n=1, k=1, seed=self.seed, family=family)

    def mask(self, items) -> np.ndarray:
        """Boolean sample mask aligned with ``items`` (vectorized)."""
        hashes = self._deriver.base_hashes_many(items)
        if self._threshold is None:
            return np.ones(hashes.shape, dtype=bool)
        return hashes < np.uint64(self._threshold)

    def contains(self, item) -> bool:
        """Is this key in the sampled subset? (Scalar twin of :meth:`mask`.)"""
        if self._threshold is None:
            return True
        return self._deriver.base_hash(item) < self._threshold

    def __repr__(self) -> str:
        return f"ShadowSampler(rate={self.rate}, seed={self.seed})"
