"""Live accuracy auditing: shadow truth, analytic prediction, drift.

The audit plane answers "is the sketch as accurate as the paper says it
should be, on *this* stream, right now?" in three parts:

- :class:`ShadowSampler` — deterministic per-key hash sampling;
- :class:`ShadowAuditor` — exact :class:`BatchTracker` shadow of the
  sampled keys, replayed against the live sketches on a cadence to
  measure per-task error;
- :class:`AnalyticPredictor` + :class:`DriftDetector` — §5's
  closed-form error models as the reference, with structured alerts
  when observed error leaves the predicted band.

Entry point: ``monitor.audited(sample_rate=0.01)`` (see
:meth:`repro.monitor.ItemBatchMonitor.audited`), or
``python -m repro.obs audit --demo`` for a self-contained tour.
"""

from .drift import DEFAULT_BANDS, DriftAlert, DriftBand, DriftDetector
from .predictor import AnalyticPredictor, TaskPrediction
from .sampler import ShadowSampler
from .shadow import AuditReport, ShadowAuditor, TaskAudit

__all__ = [
    "ShadowSampler",
    "AnalyticPredictor",
    "TaskPrediction",
    "DriftBand",
    "DriftAlert",
    "DriftDetector",
    "DEFAULT_BANDS",
    "ShadowAuditor",
    "AuditReport",
    "TaskAudit",
]
