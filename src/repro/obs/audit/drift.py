"""Drift detection: observed error vs predicted error, with alerts.

Four alert kinds, from mild to severe:

- ``predicted-budget`` (info) — the *model itself* predicts error above
  the task's absolute ceiling: the sketch is undersized for its window
  no matter what the stream does.
- ``divergence`` (warning) — observed error exceeds the band around the
  prediction (``factor * predicted + slack + sampling noise``): the
  stream violates the analysis' assumptions (adversarial keys, load
  spikes, a lagging cleaner).
- ``budget`` (warning) — observed error exceeds the absolute ceiling,
  regardless of what was predicted. This is the operational symptom of
  an undersized sketch: a correct model predicts the high error, so
  divergence alone would stay silent.
- ``violation`` (critical) — a structural guarantee broke: activeness
  or span reported a false *negative* inside the window, or size
  underestimated an unsaturated batch. The clock construction makes
  these impossible, so any occurrence is a bug or corruption.

The sampling-noise term widens the divergence band by three standard
errors of the audited statistic, so small shadow samples do not page
anyone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ...errors import ConfigurationError

__all__ = ["DriftBand", "DriftAlert", "DriftDetector", "DEFAULT_BANDS"]


@dataclass(frozen=True)
class DriftBand:
    """Per-task tolerance: divergence factor, slack, absolute ceiling."""

    factor: float = 3.0
    slack: float = 0.05
    ceiling: float = 0.5

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ConfigurationError(
                f"band factor must be >= 1, got {self.factor}"
            )
        if self.slack < 0.0 or self.ceiling <= 0.0:
            raise ConfigurationError(
                f"band slack must be >= 0 and ceiling > 0, "
                f"got slack={self.slack}, ceiling={self.ceiling}"
            )


#: Default bands. Activeness predictions are sharp (fill^k), so its
#: band is tight; span/size models lean on §5's stream-model rates and
#: get wider ones.
DEFAULT_BANDS: "Dict[str, DriftBand]" = {
    "activeness": DriftBand(factor=3.0, slack=0.02, ceiling=0.25),
    "cardinality": DriftBand(factor=3.0, slack=0.05, ceiling=0.5),
    "size": DriftBand(factor=5.0, slack=0.05, ceiling=0.75),
    "span": DriftBand(factor=5.0, slack=0.05, ceiling=0.5),
}


@dataclass(frozen=True)
class DriftAlert:
    """One raised alert (also recorded as an obs event)."""

    task: str
    kind: str
    severity: str
    observed: float
    predicted: float
    threshold: float
    message: str
    fields: "Mapping[str, Any]" = field(default_factory=dict)


class DriftDetector:
    """Checks an :class:`AuditReport` against per-task drift bands.

    Parameters
    ----------
    bands:
        ``{task: DriftBand}`` overrides, merged over
        :data:`DEFAULT_BANDS`.
    sample_rate:
        The shadow sampler's rate — needed to size the cardinality
        statistic's sampling-noise allowance.
    """

    def __init__(self, bands: "Optional[Mapping[str, DriftBand]]" = None,
                 sample_rate: float = 1.0):
        merged = dict(DEFAULT_BANDS)
        if bands:
            merged.update(bands)
        self.bands = merged
        self.sample_rate = float(sample_rate)

    def band_for(self, task: str) -> DriftBand:
        return self.bands.get(task, DriftBand())

    def noise_allowance(self, task: str, predicted: float,
                        samples: int) -> float:
        """Three standard errors of the audited statistic.

        Rate statistics get the binomial standard error at the
        predicted rate plus a ``3/n`` floor (so one stray key in a tiny
        sample cannot alert); the cardinality relative error gets the
        binomial noise of scaling an ``n``-key sample by ``1/rate``.
        """
        if samples <= 0:
            return math.inf
        if task == "cardinality":
            return 3.0 * math.sqrt((1.0 - self.sample_rate) / samples)
        p = min(max(predicted, 0.0), 1.0)
        return 3.0 * math.sqrt(p * (1.0 - p) / samples) + 3.0 / samples

    def band_limit(self, task: str, predicted: float, samples: int) -> float:
        """The divergence threshold for one task's primary statistic."""
        band = self.band_for(task)
        return (band.factor * predicted + band.slack
                + self.noise_allowance(task, predicted, samples))

    def check(self, report) -> "List[DriftAlert]":
        """All alerts an :class:`AuditReport` warrants, worst first."""
        alerts: "List[DriftAlert]" = []
        for task, audit in report.tasks.items():
            band = self.band_for(task)
            for name, value in audit.violations.items():
                if value > 0:
                    alerts.append(DriftAlert(
                        task=task, kind="violation", severity="critical",
                        observed=float(value), predicted=0.0, threshold=0.0,
                        message=(f"{task}: guarantee violation "
                                 f"({name}={value:g})"),
                        fields={"stat": name},
                    ))
            limit = (audit.band_hi
                     if audit.band_hi is not None
                     else self.band_limit(task, audit.predicted,
                                          audit.samples))
            if audit.samples > 0 and audit.observed > limit:
                alerts.append(DriftAlert(
                    task=task, kind="divergence", severity="warning",
                    observed=audit.observed, predicted=audit.predicted,
                    threshold=limit,
                    message=(f"{task}: observed {audit.stat} "
                             f"{audit.observed:.4g} exceeds band "
                             f"{limit:.4g} around predicted "
                             f"{audit.predicted:.4g}"),
                    fields={"stat": audit.stat, "samples": audit.samples},
                ))
            # The budget check gets the same sampling-noise allowance as
            # divergence, so a handful of shadow keys cannot trip it.
            budget_limit = band.ceiling + self.noise_allowance(
                task, audit.predicted, audit.samples
            )
            if audit.samples > 0 and audit.observed > budget_limit:
                alerts.append(DriftAlert(
                    task=task, kind="budget", severity="warning",
                    observed=audit.observed, predicted=audit.predicted,
                    threshold=band.ceiling,
                    message=(f"{task}: observed {audit.stat} "
                             f"{audit.observed:.4g} exceeds the "
                             f"{band.ceiling:g} error budget"),
                    fields={"stat": audit.stat, "samples": audit.samples},
                ))
            if audit.predicted > band.ceiling:
                alerts.append(DriftAlert(
                    task=task, kind="predicted-budget", severity="info",
                    observed=audit.observed, predicted=audit.predicted,
                    threshold=band.ceiling,
                    message=(f"{task}: predicted {audit.stat} "
                             f"{audit.predicted:.4g} exceeds the "
                             f"{band.ceiling:g} error budget — "
                             f"sketch undersized for this window"),
                    fields={"stat": audit.stat},
                ))
        severity_rank = {"critical": 0, "warning": 1, "info": 2}
        alerts.sort(key=lambda a: (severity_rank[a.severity], a.task, a.kind))
        return alerts
