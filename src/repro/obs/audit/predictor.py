"""Analytic error prediction from the live sketch configuration.

:class:`AnalyticPredictor` turns the paper's closed-form error models
(:mod:`repro.analysis`, one per task) plus the *live* fill-rate gauges
into a per-task expected error — the reference the drift detector
compares observed error against.

Two kinds of prediction are combined:

- **configuration-level** (memory, window, ``s``, ``k``): the §5
  formulas evaluated at the monitor's actual parameters — what the
  error *should* be if the stream matches the analysis' load model;
- **state-level** (live fill ratio): for activeness, the empirical
  Bloom argument — a stale key's ``k`` probes each land in an occupied
  cell with probability ``fill``, so the live FP expectation is
  ``fill^k``, tracking the actual stream instead of the model's load.
  When a fill estimate is available it is the primary prediction
  (reading the published ``repro_sketch_fill_ratio`` gauge when obs is
  enabled, the sketch's own ``fill_ratio()`` otherwise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ...analysis import (
    cardinality_re_bound,
    membership_fpr,
    size_abs_error_threshold,
    size_exceed_probability,
    timespan_error,
)
from ...core.params import error_window_length
from .. import names
from .. import runtime as _obs

__all__ = ["AnalyticPredictor", "TaskPrediction"]


@dataclass(frozen=True)
class TaskPrediction:
    """One task's expected-error statement.

    ``expected`` predicts the observed statistic named by ``stat``
    (e.g. ``fp_rate`` for activeness); ``detail`` carries secondary
    model outputs the auditor needs (the size task's absolute-error
    threshold, the residual error-window length, the fill ratio used).
    """

    task: str
    stat: str
    expected: float
    detail: "Mapping[str, float]" = field(default_factory=dict)


def _live_fill(sketch) -> float:
    """Live fill ratio: published gauge if present, else direct sample."""
    gauge = _obs.registry().get(
        names.SKETCH_FILL_RATIO, {"sketch": type(sketch).__name__}
    )
    if gauge is not None:
        return float(gauge.value)
    return float(sketch.clock.fill_ratio())


class AnalyticPredictor:
    """Computes per-task expected error for an :class:`ItemBatchMonitor`.

    Parameters
    ----------
    monitor:
        Any object with the monitor's task attributes (``activeness``,
        ``cardinality``, ``size_sketch``, ``span_sketch`` — enabled
        ones non-None) and a ``window``.
    delta:
        Confidence parameter of the cardinality bound (eq 15).
    birth_rate, death_rate:
        §5.3/§5.4's stream-model rates (births per time unit and
        ``λ1``); defaults match the analysis modules' defaults.
    """

    def __init__(self, monitor, delta: float = 0.8,
                 birth_rate: float = 1.0,
                 death_rate: "Optional[float]" = None,
                 confidence: float = math.e):
        self.monitor = monitor
        self.delta = float(delta)
        self.birth_rate = float(birth_rate)
        self.death_rate = death_rate
        self.confidence = float(confidence)

    def predict(self) -> "Dict[str, TaskPrediction]":
        """Expected error for every enabled task, keyed by task name."""
        out: "Dict[str, TaskPrediction]" = {}
        monitor = self.monitor
        window_length = monitor.window.length

        sketch = monitor.activeness
        if sketch is not None:
            model_fpr = membership_fpr(sketch.memory_bits(), window_length,
                                       sketch.s, k=sketch.k)
            fill = _live_fill(sketch)
            live_fpr = fill ** sketch.k
            out["activeness"] = TaskPrediction(
                task="activeness", stat="fp_rate",
                expected=live_fpr if fill > 0.0 else model_fpr,
                detail={
                    "model_fpr": model_fpr,
                    "fill": fill,
                    "error_window": error_window_length(window_length,
                                                        sketch.s),
                },
            )

        sketch = monitor.cardinality
        if sketch is not None:
            out["cardinality"] = TaskPrediction(
                task="cardinality", stat="re",
                expected=cardinality_re_bound(sketch.memory_bits(), sketch.s,
                                              self.delta),
                detail={
                    "delta": self.delta,
                    "fill": _live_fill(sketch),
                    "error_window": error_window_length(window_length,
                                                        sketch.s),
                },
            )

        sketch = monitor.size_sketch
        if sketch is not None:
            threshold = size_abs_error_threshold(
                sketch.memory_bits(), window_length, sketch.s,
                k=sketch.depth, birth_rate=self.birth_rate,
                death_rate=self.death_rate,
                counter_bits=sketch.counter_bits, c=self.confidence,
            )
            out["size"] = TaskPrediction(
                task="size", stat="exceed_rate",
                expected=size_exceed_probability(
                    window_length, sketch.s, k=sketch.depth,
                    birth_rate=self.birth_rate, death_rate=self.death_rate,
                    c=self.confidence,
                ),
                detail={
                    "abs_threshold": threshold,
                    "fill": _live_fill(sketch),
                    "error_window": error_window_length(window_length,
                                                        sketch.s),
                },
            )

        sketch = monitor.span_sketch
        if sketch is not None:
            out["span"] = TaskPrediction(
                task="span", stat="err_rate",
                expected=timespan_error(sketch.memory_bits(), window_length,
                                        sketch.s, k=sketch.k,
                                        birth_rate=self.birth_rate,
                                        death_rate=self.death_rate),
                detail={
                    "fill": _live_fill(sketch),
                    "error_window": error_window_length(window_length,
                                                        sketch.s),
                },
            )
        return out

    def as_dict(self) -> "Dict[str, Any]":
        """JSON-friendly image of the current predictions."""
        return {
            task: {"stat": p.stat, "expected": p.expected,
                   "detail": dict(p.detail)}
            for task, p in self.predict().items()
        }
