"""Online accuracy auditing against a sampled exact shadow.

:class:`ShadowAuditor` closes the loop between the sketches and the
ground truth *while the stream runs*: a deterministic hash sampler
(:class:`~repro.obs.audit.sampler.ShadowSampler`) selects a small
fraction of the key space, an exact
:class:`~repro.streams.groundtruth.BatchTracker` shadows just those
keys, and on a cadence the auditor replays the sampled keys against the
live sketches to *measure* per-task error — activeness FP/FN rates,
cardinality relative error, size and span absolute/relative errors.
Observed error is published to the metrics registry next to the
:class:`~repro.obs.audit.predictor.AnalyticPredictor`'s expected error,
and a :class:`~repro.obs.audit.drift.DriftDetector` raises structured
events when the two diverge.

Sampling is per-key all-or-nothing, so the shadow's sizes and spans for
sampled keys are exact; only the cardinality estimate is scaled by
``1/rate`` (and its drift band widened by the binomial noise of that
scaling). The auditor hangs off the batch engine's ingest tap, which
fires outside the engine's timed section — audit intake never pollutes
the throughput histograms it is published beside.

Activeness subtlety: a key that expired less than one residual error
window ``T / (2^s - 2)`` ago may legitimately still test positive (the
clock guarantee only covers ``now - t < T``). The auditor therefore
measures the FP rate on *stale* keys (expired at least one error window
ago) and reports the residual stretch separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ...core.params import error_window_length
from ...errors import ConfigurationError
from ...streams.groundtruth import BatchTracker
from ...timebase import WindowKind, WindowSpec
from .. import names
from .. import runtime as _obs
from ..registry import SECONDS_BOUNDS
from .drift import DriftAlert, DriftDetector
from .predictor import AnalyticPredictor, TaskPrediction
from .sampler import ShadowSampler

__all__ = ["ShadowAuditor", "AuditReport", "TaskAudit"]

#: Offset added to the auditor's seed so the sampler hash is independent
#: of the monitor's sketch hashes even when both default to seed 0.
SAMPLER_SEED_OFFSET = 104729

#: Default audit cadence: items between cycles. At least a few windows
#: must pass for expired keys to exist, and a floor keeps tiny windows
#: from auditing every other batch.
DEFAULT_MIN_EVERY = 32768


@dataclass
class TaskAudit:
    """Observed-vs-predicted error for one task at one audit cycle.

    ``observed`` is the task's primary statistic (named by ``stat``,
    matching the predictor's); ``stats`` holds every measured rate,
    ``extra`` contextual counts/values, and ``violations`` counts of
    guarantee breaks (always expected to be zero). ``band_hi`` is the
    drift detector's divergence threshold for ``observed``.
    """

    task: str
    stat: str
    observed: float = 0.0
    predicted: float = 0.0
    samples: int = 0
    stats: "Dict[str, float]" = field(default_factory=dict)
    extra: "Dict[str, float]" = field(default_factory=dict)
    violations: "Dict[str, int]" = field(default_factory=dict)
    band_hi: "Optional[float]" = None
    prediction: "Optional[TaskPrediction]" = None

    def as_dict(self) -> "Dict[str, Any]":
        return {
            "task": self.task,
            "stat": self.stat,
            "observed": self.observed,
            "predicted": self.predicted,
            "samples": self.samples,
            "stats": dict(self.stats),
            "extra": dict(self.extra),
            "violations": dict(self.violations),
            "band_hi": self.band_hi,
        }


@dataclass
class AuditReport:
    """One full audit cycle: every task's numbers plus raised alerts."""

    now: float
    cycle: int
    items_seen: int
    sampled_items: int
    shadow_keys: int
    sample_rate: float
    tasks: "Dict[str, TaskAudit]" = field(default_factory=dict)
    alerts: "List[DriftAlert]" = field(default_factory=list)
    duration_seconds: float = 0.0

    def as_dict(self) -> "Dict[str, Any]":
        return {
            "now": self.now,
            "cycle": self.cycle,
            "items_seen": self.items_seen,
            "sampled_items": self.sampled_items,
            "shadow_keys": self.shadow_keys,
            "sample_rate": self.sample_rate,
            "tasks": {t: a.as_dict() for t, a in self.tasks.items()},
            "alerts": [
                {"task": a.task, "kind": a.kind, "severity": a.severity,
                 "observed": a.observed, "predicted": a.predicted,
                 "threshold": a.threshold, "message": a.message}
                for a in self.alerts
            ],
            "duration_seconds": self.duration_seconds,
        }

    def lines(self) -> "List[str]":
        """Human-readable rendering (the CLI's audit view)."""
        out = [
            f"audit cycle {self.cycle} @ t={self.now:g}  "
            f"(items={self.items_seen}, sampled={self.sampled_items}, "
            f"shadow keys={self.shadow_keys}, rate={self.sample_rate:g})"
        ]
        header = (f"  {'task':<12} {'stat':<12} {'observed':>10} "
                  f"{'predicted':>10} {'band':>10} {'samples':>8}")
        out.append(header)
        for task, audit in self.tasks.items():
            band = (f"{audit.band_hi:.4g}"
                    if audit.band_hi is not None else "-")
            out.append(
                f"  {task:<12} {audit.stat:<12} {audit.observed:>10.4g} "
                f"{audit.predicted:>10.4g} {band:>10} {audit.samples:>8}"
            )
        if self.alerts:
            for alert in self.alerts:
                out.append(f"  [{alert.severity.upper()}] {alert.message}")
        else:
            out.append("  no drift alerts")
        return out


class ShadowAuditor:
    """Live accuracy auditor for an :class:`~repro.monitor.ItemBatchMonitor`.

    Parameters
    ----------
    monitor:
        The monitor under audit. Install via
        :meth:`ItemBatchMonitor.audited`, which wires the batch-engine
        tap and cadence automatically.
    sample_rate:
        Fraction of the key space shadowed exactly, in ``(0, 1]``.
    every_items:
        Audit cadence in stream items (default: a few windows' worth,
        at least :data:`DEFAULT_MIN_EVERY`).
    seed:
        Sampler seed (offset internally so the sampled subset is
        uncorrelated with sketch cell placement).
    predictor, detector:
        Injectable for custom error models or drift bands.
    """

    def __init__(self, monitor, sample_rate: float = 0.01,
                 every_items: "Optional[int]" = None, seed: int = 0,
                 predictor: "Optional[AnalyticPredictor]" = None,
                 detector: "Optional[DriftDetector]" = None):
        self.monitor = monitor
        self.sample_rate = float(sample_rate)
        self.sampler = ShadowSampler(sample_rate,
                                     seed=seed + SAMPLER_SEED_OFFSET)
        # The shadow is always time-based, fed the engine's *resolved*
        # float arrival times: for count-based windows those are the
        # global item counts, which a count-based tracker (counting only
        # sampled observations) could not reproduce.
        self.tracker = BatchTracker(
            WindowSpec(monitor.window.length, WindowKind.TIME)
        )
        self.predictor = predictor if predictor is not None else \
            AnalyticPredictor(monitor)
        self.detector = detector if detector is not None else \
            DriftDetector(sample_rate=self.sample_rate)
        if every_items is None:
            every_items = max(8 * int(monitor.window.length),
                              DEFAULT_MIN_EVERY)
        if every_items < 1:
            raise ConfigurationError(
                f"audit cadence must be >= 1 item, got {every_items}"
            )
        self.every_items = int(every_items)
        self.cycles = 0
        self.items_seen = 0
        self.sampled_items = 0
        self.last_report: "Optional[AuditReport]" = None
        self._since_audit = 0
        # The tracker's own clock only advances on *sampled* items, so
        # the auditor keeps the true stream time itself.
        self._stream_now = 0.0

    # ------------------------------------------------------------- intake

    def ingest(self, items, times) -> None:
        """Batch-engine tap: fold the sampled slice of a batch in.

        ``times`` is the engine's resolved float64 arrival-time array
        aligned with ``items`` (item counts for count-based windows).
        """
        count = len(times)
        if count == 0:
            return
        self.items_seen += count
        self._since_audit += count
        self._stream_now = float(times[-1])
        mask = self.sampler.mask(items)
        picked = np.flatnonzero(mask)
        if picked.size:
            observe = self.tracker.observe
            if isinstance(items, np.ndarray):
                for i in picked:
                    observe(int(items[i]), float(times[i]))
            else:
                for i in picked:
                    observe(items[i], float(times[i]))
            self.sampled_items += int(picked.size)
        if _obs.ENABLED:
            _obs.record_audit_ingest(int(picked.size),
                                     self.tracker.keys_seen())

    def ingest_one(self, key, t: float) -> None:
        """Scalar twin of :meth:`ingest` (monitor's per-item path)."""
        self.items_seen += 1
        self._since_audit += 1
        self._stream_now = float(t)
        sampled = self.sampler.contains(key)
        if sampled:
            self.tracker.observe(int(key) if isinstance(key, np.integer)
                                 else key, float(t))
            self.sampled_items += 1
        if _obs.ENABLED:
            _obs.record_audit_ingest(1 if sampled else 0,
                                     self.tracker.keys_seen())

    @property
    def due(self) -> bool:
        """Has a full cadence of items arrived since the last audit?"""
        return self._since_audit >= self.every_items

    # -------------------------------------------------------------- audit

    def audit(self, now: "Optional[float]" = None) -> AuditReport:
        """Run one audit cycle and publish/alert on its results."""
        started = perf_counter()
        if now is None:
            now = self._stream_now
        monitor = self.monitor
        # Publishes the live fill gauges the predictor prefers to read.
        monitor.metrics()
        predictions = self.predictor.predict()

        self.cycles += 1
        report = AuditReport(
            now=now, cycle=self.cycles, items_seen=self.items_seen,
            sampled_items=self.sampled_items,
            shadow_keys=self.tracker.keys_seen(),
            sample_rate=self.sample_rate,
        )
        auditors = {
            "activeness": self._audit_activeness,
            "cardinality": self._audit_cardinality,
            "size": self._audit_size,
            "span": self._audit_span,
        }
        for task, run in auditors.items():
            prediction = predictions.get(task)
            if prediction is None:
                continue
            audit = run(now, prediction)
            audit.predicted = prediction.expected
            audit.prediction = prediction
            audit.band_hi = self.detector.band_limit(
                task, audit.predicted, audit.samples
            )
            report.tasks[task] = audit

        report.alerts = self.detector.check(report)
        report.duration_seconds = perf_counter() - started
        self._publish(report)
        self.last_report = report
        self._since_audit = 0
        return report

    # ---------------------------------------------------- per-task audits

    def _audit_activeness(self, now: float,
                          prediction: TaskPrediction) -> TaskAudit:
        sketch = self.monitor.activeness
        residual = prediction.detail.get(
            "error_window", error_window_length(self.monitor.window.length,
                                                sketch.s)
        )
        active, residual_keys, stale = self.tracker.partition_keys(
            now, residual=residual
        )
        fp_rate = self._positive_rate(sketch, stale)
        fn_count = 0
        fn_rate = 0.0
        if active:
            hits = sketch.contains_many(active)
            fn_count = int(np.count_nonzero(~hits))
            fn_rate = fn_count / len(active)
        residual_rate = self._positive_rate(sketch, residual_keys)
        return TaskAudit(
            task="activeness", stat="fp_rate", observed=fp_rate,
            samples=len(stale),
            stats={"fp_rate": fp_rate, "fn_rate": fn_rate,
                   "residual_active_rate": residual_rate},
            extra={"active_keys": len(active),
                   "residual_keys": len(residual_keys),
                   "stale_keys": len(stale)},
            violations={"false_negatives": fn_count},
        )

    @staticmethod
    def _positive_rate(sketch, keys) -> float:
        if not keys:
            return 0.0
        return float(np.count_nonzero(sketch.contains_many(keys))) / len(keys)

    def _audit_cardinality(self, now: float,
                           prediction: TaskPrediction) -> TaskAudit:
        sketch = self.monitor.cardinality
        estimate = sketch.estimate()
        sampled_active = self.tracker.active_cardinality(now)
        truth = sampled_active / self.sample_rate
        re = (abs(estimate.value - truth) / max(truth, 1.0)
              if sampled_active else 0.0)
        return TaskAudit(
            task="cardinality", stat="re", observed=re,
            samples=sampled_active,
            stats={"re": re},
            extra={"estimate": estimate.value, "truth_scaled": truth,
                   "sampled_active": float(sampled_active),
                   "saturated": float(estimate.saturated)},
        )

    def _audit_size(self, now: float,
                    prediction: TaskPrediction) -> TaskAudit:
        sketch = self.monitor.size_sketch
        active, _, _ = self.tracker.partition_keys(now)
        if not active:
            return TaskAudit(task="size", stat="exceed_rate",
                             violations={"underestimates": 0})
        estimates = sketch.query_many(active).astype(np.float64)
        truth = np.array(
            [self.tracker.state(key).size for key in active],
            dtype=np.float64,
        )
        err = estimates - truth
        abs_err = np.abs(err)
        # Saturated counters are the one sanctioned way a Count-Min
        # answer can fall below the truth; anything else is a violation.
        saturated = estimates >= sketch.counter_max
        underestimates = int(np.count_nonzero((err < 0) & ~saturated))
        threshold = prediction.detail.get("abs_threshold", np.inf)
        exceed_rate = float(np.mean(abs_err > threshold))
        audit = TaskAudit(
            task="size", stat="exceed_rate", observed=exceed_rate,
            samples=len(active),
            stats={"exceed_rate": exceed_rate,
                   "are": float(np.mean(abs_err / np.maximum(truth, 1.0))),
                   "aae": float(np.mean(abs_err))},
            extra={"abs_threshold": float(threshold),
                   "saturated": float(np.count_nonzero(saturated))},
            violations={"underestimates": underestimates},
        )
        self._record_abs_errors("size", abs_err)
        return audit

    def _audit_span(self, now: float,
                    prediction: TaskPrediction) -> TaskAudit:
        sketch = self.monitor.span_sketch
        active, _, _ = self.tracker.partition_keys(now)
        if not active:
            return TaskAudit(task="span", stat="err_rate",
                             violations={"false_negatives": 0,
                                         "underestimates": 0})
        result = sketch.query_many(active)
        truth = np.array(
            [now - self.tracker.state(key).start for key in active],
            dtype=np.float64,
        )
        fn_count = int(np.count_nonzero(~result.active))
        hit = result.active
        err = result.span[hit] - truth[hit]
        abs_err = np.abs(err)
        tolerance = 1e-9 * self.monitor.window.length
        wrong = int(np.count_nonzero(abs_err > tolerance)) + fn_count
        err_rate = wrong / len(active)
        underestimates = int(np.count_nonzero(err < -tolerance))
        audit = TaskAudit(
            task="span", stat="err_rate", observed=err_rate,
            samples=len(active),
            stats={"err_rate": err_rate,
                   "fn_rate": fn_count / len(active),
                   "are": float(np.mean(abs_err / np.maximum(truth[hit], 1.0)))
                   if abs_err.size else 0.0,
                   "aae": float(np.mean(abs_err)) if abs_err.size else 0.0},
            extra={"active_keys": float(len(active))},
            violations={"false_negatives": fn_count,
                        "underestimates": underestimates},
        )
        self._record_abs_errors("span", abs_err)
        return audit

    # ---------------------------------------------------------- publishing

    @staticmethod
    def _record_abs_errors(task: str, abs_err: np.ndarray) -> None:
        if not _obs.ENABLED or abs_err.size == 0:
            return
        _obs.registry().histogram(
            names.AUDIT_ABS_ERROR,
            "Absolute estimation error of audited answers (log-2 buckets).",
            labels={"task": task},
        ).observe_many(abs_err)

    def _publish(self, report: AuditReport) -> None:
        """Push the cycle's numbers into the registry and event ring."""
        if not _obs.ENABLED:
            return
        for alert in report.alerts:
            _obs.record_event(
                time=report.now, severity=alert.severity,
                kind=f"audit-{alert.kind}", message=alert.message,
                fields={"task": alert.task, "observed": alert.observed,
                        "predicted": alert.predicted,
                        "threshold": alert.threshold},
            )
        reg = _obs.registry()
        for task, audit in report.tasks.items():
            labels = {"task": task, "stat": audit.stat}
            reg.gauge(names.AUDIT_OBSERVED_ERROR,
                      "Shadow-measured error of the live sketch.",
                      labels=labels).set(audit.observed)
            reg.gauge(names.AUDIT_PREDICTED_ERROR,
                      "Analytically predicted error at this configuration.",
                      labels=labels).set(audit.predicted)
            if audit.predicted > 0.0:
                reg.gauge(names.AUDIT_ERROR_RATIO,
                          "Observed error over predicted error.",
                          labels=labels).set(audit.observed / audit.predicted)
            error_window = (audit.prediction.detail.get("error_window")
                            if audit.prediction is not None else None)
            if error_window is not None:
                reg.gauge(names.AUDIT_ERROR_WINDOW_LENGTH,
                          "Residual error-window length T/(2^s - 2).",
                          labels={"task": task}).set(error_window)
        for alert in report.alerts:
            reg.counter(names.AUDIT_ALERTS_TOTAL,
                        "Drift alerts raised by the accuracy auditor.",
                        labels={"task": alert.task,
                                "kind": alert.kind}).inc()
        reg.counter(names.AUDIT_CYCLES_TOTAL,
                    "Audit cycles completed.").inc()
        reg.histogram(names.AUDIT_CYCLE_SECONDS,
                      "Wall-clock seconds per audit cycle (log-2 buckets).",
                      bounds=SECONDS_BOUNDS).observe(report.duration_seconds)
