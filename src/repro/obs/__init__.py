"""``repro.obs`` — metrics, sweep tracing, and profiling hooks.

A low-overhead observability layer for the clock-sketch stack:

- a registry of counters, gauges, and log-scale histograms
  (:mod:`repro.obs.registry`) with Prometheus text and JSON snapshot
  exposition (:mod:`repro.obs.export`);
- a fixed-size sweep-trace ring (:mod:`repro.obs.ring`) recording
  every cleaning sweep's timestamp, pointer position, and cells
  cleaned;
- a structured-event ring (:mod:`repro.obs.events`) carrying the
  audit plane's drift alerts and other severity-tagged events;
- the process-wide switchboard (:mod:`repro.obs.runtime`):
  instrumentation in ``core/``, ``engine/``, ``concurrent`` and
  ``monitor`` is nil-cost until :func:`enable` (or the
  :func:`observed` context manager) turns it on;
- profiling hooks (:class:`timed`) used by the bench harness;
- the live accuracy-auditing plane (:mod:`repro.obs.audit`, imported
  lazily): shadow-truth sampling, analytic error prediction, and
  drift alerts — entry point ``ItemBatchMonitor.audited()`` or
  ``python -m repro.obs audit --demo``;
- sampled end-to-end span tracing (:mod:`repro.obs.trace`, imported
  lazily): context-managed spans threaded monitor → engine → shard
  workers, stitched across processes, exportable as Chrome
  trace-event JSON — ``python -m repro.obs trace --demo``;
- a crash flight recorder (:mod:`repro.obs.flight`, imported lazily):
  JSON bundles of the last-N spans, both rings, and a full metrics
  snapshot cut automatically on shard-worker / backpressure /
  sanitizer errors;
- performance observability (:mod:`repro.obs.perf`, imported lazily):
  a persistent JSONL benchmark ledger, committed baselines with
  MAD-noise-band regression verdicts, and explanatory metric deltas —
  ``python -m repro.obs perf {record,compare,trend,report}``;
- an optional stdlib HTTP endpoint (:class:`MetricsServer`, imported
  lazily — see :mod:`repro.obs.http`) and a CLI
  (``python -m repro.obs``).

Metric names are registered constants in :mod:`repro.obs.names`
(enforced by sketch-lint rule SK106). The full catalogue, exposition
formats, and the <10% enabled-overhead budget are documented in
``docs/observability.md``.

Examples
--------
>>> from repro import obs
>>> with obs.observed() as reg:
...     pass  # run instrumented workload here
>>> print(obs.prometheus_text(reg))  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Any

from . import names
from .events import SEVERITIES, EventRing, ObsEvent
from .export import (
    parse_prometheus,
    prometheus_text,
    registry_from_snapshot,
    snapshot_json,
)
from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SECONDS_BOUNDS,
    SIZE_BOUNDS,
)
from .ring import SweepTraceRing
from .runtime import (
    disable,
    enable,
    enabled,
    event_ring,
    observed,
    record_event,
    registry,
    rings_snapshot,
    sweep_ring,
    timed,
)

__all__ = [
    "names",
    # switchboard
    "enable",
    "disable",
    "enabled",
    "observed",
    "registry",
    "sweep_ring",
    "event_ring",
    "rings_snapshot",
    "record_event",
    "timed",
    # primitives
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "SweepTraceRing",
    "EventRing",
    "ObsEvent",
    "SEVERITIES",
    "SECONDS_BOUNDS",
    "SIZE_BOUNDS",
    # exposition
    "prometheus_text",
    "parse_prometheus",
    "snapshot_json",
    "registry_from_snapshot",
    # lazy
    "MetricsServer",
    "audit",
    "trace",
    "flight",
    "perf",
]


def __getattr__(name: str) -> Any:
    # MetricsServer pulls in http.server, and the audit plane pulls in
    # the monitor/analysis stack; load either only on first use so
    # importing repro.obs (which every instrumented module does) stays
    # cheap. Submodules load through importlib, not ``from . import``:
    # the latter re-enters this __getattr__ via its hasattr check and
    # recurses.
    if name == "MetricsServer":
        from .http import MetricsServer
        return MetricsServer
    if name in ("audit", "trace", "flight", "perf"):
        import importlib
        return importlib.import_module(f"{__name__}.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
