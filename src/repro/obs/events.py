"""Structured observability events: severities and a fixed-size ring.

Where the sweep-trace ring records *regular* telemetry (one event per
cleaning sweep), this module records *irregular* operational events —
drift alerts from the accuracy auditor, guarantee violations, lifecycle
notices. Each event carries a severity (``info`` / ``warning`` /
``critical``), a machine-readable ``kind``, the stream time it refers
to, and a small free-form payload.

Events land in an :class:`EventRing` (same overwriting semantics and
read-back surface as :class:`~repro.obs.ring.SweepTraceRing`) and are
also counted into the ``repro_obs_events_total`` counter, labelled by
severity and kind, so alert rates are visible on ``/metrics`` even
after the ring has wrapped. The ring itself is exported through
``/metrics.json`` and ``python -m repro.obs --rings``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["ObsEvent", "EventRing", "SEVERITIES"]

#: Legal event severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class ObsEvent:
    """One structured observability event.

    Attributes
    ----------
    time:
        Stream time the event refers to (item count or timestamp —
        whatever the emitting subsystem's window uses), *not* wall
        clock: events must be reproducible across replays.
    severity:
        One of :data:`SEVERITIES`.
    kind:
        Machine-readable event class (``"divergence"``, ``"budget"``,
        ``"violation"``, ...). Used as a counter label, so keep the
        vocabulary small.
    message:
        Human-readable one-liner.
    fields:
        Small JSON-friendly payload (task name, observed/predicted
        values, ...).
    """

    time: float
    severity: str
    kind: str
    message: str
    fields: "Mapping[str, Any]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ConfigurationError(
                f"event severity must be one of {SEVERITIES}, "
                f"got {self.severity!r}"
            )

    def as_dict(self) -> "Dict[str, Any]":
        """JSON-friendly image of the event."""
        return {
            "time": float(self.time),
            "severity": self.severity,
            "kind": self.kind,
            "message": self.message,
            "fields": dict(self.fields),
        }


class EventRing:
    """Overwriting ring of the most recent ``capacity`` events.

    Same shape as :class:`~repro.obs.ring.SweepTraceRing`: pushes
    overwrite the oldest entry once full, ``total_pushed`` keeps
    counting, and read-back is chronological. Events are irregular and
    orders of magnitude rarer than sweeps, so entries are stored as the
    :class:`ObsEvent` objects themselves rather than parallel columns.

    Unlike the single-writer sweep ring, events can arrive from many
    threads at once (auditor thread, lock waiters, flight recorder), so
    pushes are serialised under a lock and each entry carries a
    monotonic sequence number assigned at push time — lost or torn
    records would show up as gaps or inversions in the read-back.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ConfigurationError(
                f"ring capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._entries: "List[Optional[Tuple[int, ObsEvent]]]" = \
            [None] * self.capacity
        self._next = 0
        self._total = 0
        self._lock = threading.Lock()

    def push(self, event: ObsEvent) -> None:
        """Record one event, overwriting the oldest when full."""
        with self._lock:
            i = self._next
            self._entries[i] = (self._total, event)
            self._next = (i + 1) % self.capacity
            self._total += 1

    def __len__(self) -> int:
        """Events currently held (≤ capacity)."""
        return min(self._total, self.capacity)

    @property
    def total_pushed(self) -> int:
        """Events ever pushed, including those already overwritten."""
        return self._total

    def _snapshot(self) -> "List[Tuple[int, ObsEvent]]":
        with self._lock:
            size = min(self._total, self.capacity)
            if self._total <= self.capacity:
                order = range(size)
            else:
                order = ((i + self._next) % self.capacity
                         for i in range(size))
            return [entry for i in order
                    if (entry := self._entries[i]) is not None]

    def events(self) -> "List[ObsEvent]":
        """Chronological list of the held events."""
        return [event for _seq, event in self._snapshot()]

    def dicts(self) -> "List[Dict[str, Any]]":
        """Chronological events as JSON-friendly dicts, each carrying
        its push-time ``seq`` number."""
        out: "List[Dict[str, Any]]" = []
        for seq, event in self._snapshot():
            d = event.as_dict()
            d["seq"] = seq
            out.append(d)
        return out

    def clear(self) -> None:
        """Drop all events (buffer stays allocated)."""
        with self._lock:
            self._entries = [None] * self.capacity
            self._next = 0
            self._total = 0

    def __repr__(self) -> str:
        return (
            f"EventRing(capacity={self.capacity}, held={len(self)}, "
            f"total_pushed={self._total})"
        )
