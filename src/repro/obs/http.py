"""Optional stdlib-only HTTP exposition endpoint.

:class:`MetricsServer` serves the live registry at ``/metrics``
(Prometheus text) and ``/metrics.json`` (JSON snapshot) from a daemon
thread — no third-party dependency, no framework — plus three
operational endpoints:

- ``/healthz`` — liveness: ``{"status": "ok", "uptime_seconds": ...}``;
- ``/statusz`` — one JSON page of process vitals (uptime, registry
  size, ring fill, tracer state, last flight-recorder dump path);
- ``/trace.json`` — the live span ring
  (:func:`repro.obs.trace.snapshot`); ``?format=chrome`` renders it as
  a Chrome trace-event document loadable in Perfetto;
- ``/perf.json`` — the performance ledger tail and the last
  current-vs-baseline comparison
  (:func:`repro.obs.perf.perf_payload`).

Intended for local scraping and the ``examples/metrics_endpoint.py``
snippet; it is not a hardened production server.

Kept out of ``repro.obs``'s module-level imports so the hot path never
pays for ``http.server``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import monotonic
from typing import Any, Callable, Dict, Optional

from .export import prometheus_text, snapshot_json
from . import runtime
from . import trace as _trace

__all__ = ["MetricsServer"]


class _MetricsHandler(BaseHTTPRequestHandler):
    # The owning MetricsServer is attached to the server instance by
    # MetricsServer.start() (handlers are re-created per request).

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        owner: "MetricsServer" = self.server.owner  # type: ignore[attr-defined]
        path, _, query = self.path.partition("?")
        if path == "/metrics":
            body = prometheus_text(owner.registry()).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = snapshot_json(
                owner.registry(), rings=runtime.rings_snapshot()
            ).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        elif path == "/trace.json":
            if "format=chrome" in query:
                payload: "Dict[str, Any]" = _trace.chrome_trace()
            else:
                payload = _trace.snapshot()
            body = json.dumps(payload, indent=2, default=str).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        elif path == "/perf.json":
            from . import perf as _perf
            body = json.dumps(_perf.perf_payload(), indent=2,
                              default=str).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        elif path == "/healthz":
            body = json.dumps({
                "status": "ok",
                "uptime_seconds": owner.uptime_seconds(),
            }).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        elif path == "/statusz":
            body = json.dumps(owner.status(), indent=2,
                              default=str).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        elif path in owner.pages:
            body = json.dumps(owner.pages[path](), indent=2,
                              default=str).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        else:
            known = ", ".join(
                ["/metrics", "/metrics.json", "/trace.json", "/perf.json",
                 "/healthz", "/statusz"] + sorted(owner.pages))
            self.send_error(404, f"try {known}")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Silence per-request stderr chatter; scrapes can be frequent.
        pass


class MetricsServer:
    """Background HTTP server exposing the observability registry.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` — handy for tests and examples).
    registry_provider:
        Zero-arg callable returning the registry to expose on each
        scrape; defaults to :func:`repro.obs.runtime.registry`, i.e.
        whatever is currently enabled.

    Examples
    --------
    >>> from repro import obs
    >>> reg = obs.enable()
    >>> server = obs.MetricsServer(port=0)
    >>> server.start()                                   # doctest: +SKIP
    >>> # curl http://127.0.0.1:{server.port}/metrics
    >>> server.stop()                                    # doctest: +SKIP
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry_provider: "Optional[Callable[[], Any]]" = None):
        self.host = host
        self._requested_port = port
        self._provider = registry_provider or runtime.registry
        self._server: "Optional[ThreadingHTTPServer]" = None
        self._thread: "Optional[threading.Thread]" = None
        self._started_at: "Optional[float]" = None
        #: Extra JSON pages: absolute path -> zero-arg payload provider.
        #: Subsystems extend the exposition surface here (e.g. the
        #: ingestion service registers ``/serve.json``).
        self.pages: "Dict[str, Callable[[], Any]]" = {}

    def add_json_page(self, path: str,
                      provider: "Callable[[], Any]") -> "MetricsServer":
        """Expose ``provider()`` as JSON at ``path`` (must start with /)."""
        if not path.startswith("/"):
            raise ValueError(f"page path must start with '/', got {path!r}")
        self.pages[path] = provider
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None:
            return int(self._server.server_address[1])
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def registry(self) -> Any:
        """The registry currently being exposed."""
        return self._provider()

    def uptime_seconds(self) -> float:
        """Seconds since :meth:`start`; 0.0 while stopped."""
        if self._started_at is None:
            return 0.0
        return monotonic() - self._started_at

    def status(self) -> "Dict[str, Any]":
        """The ``/statusz`` payload: uptime, registry and ring vitals."""
        reg = self.registry()
        sweep = runtime.sweep_ring()
        events = runtime.event_ring()
        tracer = _trace.tracer()
        from . import flight
        return {
            "status": "ok",
            "uptime_seconds": self.uptime_seconds(),
            "obs_enabled": runtime.ENABLED,
            "registry_series": len(reg),
            "rings": {
                "sweep": {"held": len(sweep), "capacity": sweep.capacity,
                          "total_pushed": sweep.total_pushed},
                "events": {"held": len(events), "capacity": events.capacity,
                           "total_pushed": events.total_pushed},
                "spans": {"held": len(tracer.ring),
                          "capacity": tracer.ring.capacity,
                          "total_pushed": tracer.ring.total_pushed},
            },
            "trace_sample_every": tracer.sample_every,
            "flight_recorder_installed": flight.recorder() is not None,
            "last_flight_dump": flight.last_dump_path(),
            "extra_pages": sorted(self.pages),
        }

    def start(self) -> "MetricsServer":
        """Bind and serve from a daemon thread; returns self."""
        if self._server is not None:
            return self
        server = ThreadingHTTPServer(
            (self.host, self._requested_port), _MetricsHandler
        )
        server.daemon_threads = True
        server.owner = self  # type: ignore[attr-defined]
        self._server = server
        self._started_at = monotonic()
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-obs-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None
        self._started_at = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
