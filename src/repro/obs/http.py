"""Optional stdlib-only HTTP exposition endpoint.

:class:`MetricsServer` serves the live registry at ``/metrics``
(Prometheus text) and ``/metrics.json`` (JSON snapshot) from a daemon
thread — no third-party dependency, no framework. Intended for local
scraping and the ``examples/metrics_endpoint.py`` snippet; it is not a
hardened production server.

Kept out of ``repro.obs``'s module-level imports so the hot path never
pays for ``http.server``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Optional

from .export import prometheus_text, snapshot_json
from . import runtime

__all__ = ["MetricsServer"]


class _MetricsHandler(BaseHTTPRequestHandler):
    # The registry provider is attached to the server instance by
    # MetricsServer (handlers are re-created per request).

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        provider: "Callable[[], Any]" = self.server.registry_provider  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            body = prometheus_text(provider()).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/metrics.json":
            body = snapshot_json(
                provider(), rings=runtime.rings_snapshot()
            ).encode("utf-8")
            content_type = "application/json; charset=utf-8"
        else:
            self.send_error(404, "try /metrics or /metrics.json")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        # Silence per-request stderr chatter; scrapes can be frequent.
        pass


class MetricsServer:
    """Background HTTP server exposing the observability registry.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`port` — handy for tests and examples).
    registry_provider:
        Zero-arg callable returning the registry to expose on each
        scrape; defaults to :func:`repro.obs.runtime.registry`, i.e.
        whatever is currently enabled.

    Examples
    --------
    >>> from repro import obs
    >>> reg = obs.enable()
    >>> server = obs.MetricsServer(port=0)
    >>> server.start()                                   # doctest: +SKIP
    >>> # curl http://127.0.0.1:{server.port}/metrics
    >>> server.stop()                                    # doctest: +SKIP
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 registry_provider: "Optional[Callable[[], Any]]" = None):
        self.host = host
        self._requested_port = port
        self._provider = registry_provider or runtime.registry
        self._server: "Optional[ThreadingHTTPServer]" = None
        self._thread: "Optional[threading.Thread]" = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None:
            return int(self._server.server_address[1])
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        """Bind and serve from a daemon thread; returns self."""
        if self._server is not None:
            return self
        server = ThreadingHTTPServer(
            (self.host, self._requested_port), _MetricsHandler
        )
        server.daemon_threads = True
        server.registry_provider = self._provider  # type: ignore[attr-defined]
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-obs-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
