"""Exception hierarchy for the Clock-Sketch reproduction library.

All exceptions raised on purpose by :mod:`repro` derive from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` et al.)
propagate unchanged.
"""

from __future__ import annotations

import sys


def _notify_flight(reason: str, error: BaseException) -> None:
    """Tell the flight recorder (if armed) that a crash-class error exists.

    Looked up through ``sys.modules`` so that merely raising an
    exception never imports the observability plane; the hook fires
    only when ``repro.obs.flight`` is already loaded and installed.
    Best-effort by contract — it must never mask the error being built.
    """
    flight = sys.modules.get("repro.obs.flight")
    if flight is None:
        return
    try:
        flight.notify_crash(reason, error)
    except Exception:
        pass


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An object was constructed with invalid or inconsistent parameters.

    Examples: a clock-cell width outside ``2..64`` bits, a memory budget
    too small to hold a single cell, or a window length that is not
    positive.
    """


class MemoryBudgetError(ConfigurationError):
    """A memory budget cannot accommodate the requested structure."""


class TimeError(ReproError, ValueError):
    """A time value violated the stream contract.

    Raised when a sketch or tracker is asked to move backwards in time,
    or when a time-based structure receives an item without a timestamp.
    """


class EstimatorSaturatedError(ReproError, RuntimeError):
    """An estimator was queried in a state where no estimate exists.

    Linear-counting estimators saturate when every cell is occupied. By
    default the library clamps instead of raising; structures raise this
    only when explicitly configured with ``strict=True``.
    """


class DatasetError(ReproError, ValueError):
    """A dataset name was unknown or generator parameters were invalid."""


class ShardError(ReproError, RuntimeError):
    """Base class for shard-router failures (see :mod:`repro.shard`)."""


class ShardBackpressureError(ShardError):
    """A shard worker's command queue stayed full past the send timeout.

    The stream is outrunning a worker; the batch that could not be
    enqueued has not been applied anywhere.
    """

    def __init__(self, *args: object) -> None:
        super().__init__(*args)
        _notify_flight("shard-backpressure", self)


class ShardWorkerError(ShardError):
    """A shard worker failed or died mid-stream.

    Carries the partial-result picture: ``failed`` maps shard ids to
    the failure reason, ``pending`` maps shard ids to the number of
    commands that were dispatched but never acknowledged. Shards absent
    from both mappings completed all their work.
    """

    def __init__(self, message: str, failed=None, pending=None):
        super().__init__(message)
        self.failed = dict(failed or {})
        self.pending = dict(pending or {})
        _notify_flight("shard-worker", self)


class ServeError(ReproError):
    """Base class for ingestion-service failures (see :mod:`repro.serve`)."""


class ProtocolError(ServeError):
    """A request violated the line protocol; maps to a typed wire error.

    Every protocol error carries a stable machine-readable ``code``
    (part of the wire contract, see ``docs/serving.md``) and a
    ``retryable`` flag telling well-behaved clients whether the same
    request may succeed later.
    """

    code = "bad-request"
    retryable = False

    def __init__(self, message: str, *, code: "str | None" = None,
                 retryable: "bool | None" = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        if retryable is not None:
            self.retryable = retryable


class BadFrameError(ProtocolError):
    """A frame was not a parseable protocol line (bad JSON, oversized,
    or not a JSON object). The connection cannot be resynchronised."""

    code = "bad-frame"


class UnknownTenantError(ProtocolError):
    """The request named a tenant that does not exist (and auto-create
    is disabled for it)."""

    code = "unknown-tenant"


class AdmissionError(ProtocolError):
    """Admission control rejected the request (tenant limit reached or
    a batch beyond the tenant's configured maximum)."""

    code = "admission"


class TenantQuarantinedError(ProtocolError):
    """The tenant's engine failed earlier and was quarantined.

    Commands against a quarantined tenant fail fast with this error
    (the original failure is preserved in the message) instead of
    wedging the connection; other tenants are unaffected.
    """

    code = "quarantined"

    def __init__(self, message: str, *, code: "str | None" = None,
                 retryable: "bool | None" = None) -> None:
        super().__init__(message, code=code, retryable=retryable)
        _notify_flight("tenant-quarantined", self)


class CheckpointError(ServeError):
    """A checkpoint could not be written or no intact one could be read."""
