"""Saving and restoring sketch state.

Long-running deployments snapshot their sketches across restarts; the
merge extension ships sketches between workers. This module serialises
any of the four Clock-sketch structures to (and from) an ``.npz``
payload: configuration plus the raw cell arrays and the cleaner's exact
position, so a restored sketch continues bit-for-bit where it stopped.
"""

from __future__ import annotations

import io
import os
from typing import IO, Any, Mapping, Union

import numpy as np

from .core import ClockBitmap, ClockBloomFilter, ClockCountMin, ClockTimeSpanSketch
from .errors import ConfigurationError
from .timebase import WindowKind, WindowSpec

__all__ = ["dump_sketch", "dumps_sketch", "load_sketch", "loads_sketch"]

#: The union of serialisable sketch types.
Sketch = Union[ClockBloomFilter, ClockBitmap, ClockCountMin, ClockTimeSpanSketch]

_KINDS: "dict[str, type]" = {
    "ClockBloomFilter": ClockBloomFilter,
    "ClockBitmap": ClockBitmap,
    "ClockCountMin": ClockCountMin,
    "ClockTimeSpanSketch": ClockTimeSpanSketch,
}

_PathOrFile = Union[str, "os.PathLike[str]", IO[bytes]]


def _window_fields(window: WindowSpec) -> "tuple[float, str]":
    return window.length, window.kind.value


def _build_window(length: float, kind: str) -> WindowSpec:
    return WindowSpec(length=length, kind=WindowKind(kind))


def _payload(sketch: Sketch) -> "dict[str, Any]":
    kind = type(sketch).__name__
    if kind not in _KINDS:
        raise ConfigurationError(f"cannot serialise {kind}")
    length, wkind = _window_fields(sketch.window)
    payload: "dict[str, Any]" = {
        "kind": np.array(kind),
        "window_length": np.array(length),
        "window_kind": np.array(wkind),
        "seed": np.array(sketch.seed),
        "sweep_mode": np.array(sketch.clock.sweep_mode),
        "clock_values": sketch.clock.values,
        "steps_done": np.array(sketch.clock.steps_done),
        "now": np.array(sketch.now),
        "items_inserted": np.array(sketch.items_inserted),
        "s": np.array(sketch.s),
        "engine_min_fused": np.array(sketch.engine.min_fused),
    }
    if isinstance(sketch, ClockBloomFilter):
        payload["k"] = np.array(sketch.k)
        payload["n"] = np.array(sketch.n)
    elif isinstance(sketch, ClockBitmap):
        payload["n"] = np.array(sketch.n)
    elif isinstance(sketch, ClockCountMin):
        payload["width"] = np.array(sketch.width)
        payload["depth"] = np.array(sketch.depth)
        payload["counter_bits"] = np.array(sketch.counter_bits)
        payload["conservative"] = np.array(sketch.conservative)
        payload["counters"] = sketch.counters
    elif isinstance(sketch, ClockTimeSpanSketch):
        payload["k"] = np.array(sketch.k)
        payload["n"] = np.array(sketch.n)
        payload["timestamps"] = sketch.timestamps
    return payload


def _restore(payload: "Mapping[str, Any]") -> Sketch:
    kind = str(payload["kind"])
    window = _build_window(float(payload["window_length"]),
                           str(payload["window_kind"]))
    seed = int(payload["seed"])
    sweep_mode = str(payload["sweep_mode"])
    s = int(payload["s"])
    sketch: Sketch
    if kind == "ClockBloomFilter":
        sketch = ClockBloomFilter(n=int(payload["n"]), k=int(payload["k"]),
                                  s=s, window=window, seed=seed,
                                  sweep_mode=sweep_mode)
    elif kind == "ClockBitmap":
        sketch = ClockBitmap(n=int(payload["n"]), s=s, window=window,
                             seed=seed, sweep_mode=sweep_mode)
    elif kind == "ClockCountMin":
        conservative = bool(payload["conservative"]) \
            if "conservative" in payload else False
        sketch = ClockCountMin(width=int(payload["width"]),
                               depth=int(payload["depth"]), s=s,
                               window=window,
                               counter_bits=int(payload["counter_bits"]),
                               seed=seed, sweep_mode=sweep_mode,
                               conservative=conservative)
        sketch.counters[:] = payload["counters"]
    elif kind == "ClockTimeSpanSketch":
        sketch = ClockTimeSpanSketch(n=int(payload["n"]), k=int(payload["k"]),
                                     s=s, window=window, seed=seed,
                                     sweep_mode=sweep_mode)
        sketch.timestamps[:] = payload["timestamps"]
    else:
        raise ConfigurationError(f"cannot restore sketch kind {kind!r}")
    sketch.clock.load_values(payload["clock_values"])
    sketch.clock._steps_done = int(payload["steps_done"])
    sketch.clock._now = float(payload["now"])
    sketch._now = float(payload["now"])
    sketch._items_inserted = int(payload["items_inserted"])
    if "engine_min_fused" in payload:  # absent in pre-engine payloads
        sketch.engine.min_fused = int(payload["engine_min_fused"])
    return sketch


def dump_sketch(sketch: Sketch, path: _PathOrFile) -> None:
    """Serialise a sketch to an ``.npz`` file."""
    np.savez_compressed(path, **_payload(sketch))


def dumps_sketch(sketch: Sketch) -> bytes:
    """Serialise a sketch to bytes (for network transfer)."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **_payload(sketch))
    return buffer.getvalue()


def load_sketch(path: _PathOrFile) -> Sketch:
    """Restore a sketch from an ``.npz`` file."""
    with np.load(path, allow_pickle=False) as payload:
        return _restore(payload)


def loads_sketch(data: bytes) -> Sketch:
    """Restore a sketch from bytes produced by :func:`dumps_sketch`."""
    with np.load(io.BytesIO(data), allow_pickle=False) as payload:
        return _restore(payload)
