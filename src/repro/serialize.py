"""Saving and restoring sketch state.

Long-running deployments snapshot their sketches across restarts; the
merge extension ships sketches between workers. This module serialises
any of the four Clock-sketch structures to (and from) an ``.npz``
payload: configuration plus the raw cell arrays and the cleaner's exact
position, so a restored sketch continues bit-for-bit where it stopped.

Payloads are backend-agnostic: kernel backends (:mod:`repro.kernels`)
are process configuration, not state, so they are never written to a
payload. A restored sketch resolves the *restoring* process's default
backend — a sketch saved under numba loads fine on a host without
numba, and vice versa, with bit-identical cell state either way.
"""

from __future__ import annotations

import io
import os
from typing import IO, TYPE_CHECKING, Any, Mapping, Union

if TYPE_CHECKING:  # runtime import would be circular (shard imports us)
    from .shard import ShardedSketch

import numpy as np

from .core import ClockBitmap, ClockBloomFilter, ClockCountMin, ClockTimeSpanSketch
from .errors import ConfigurationError
from .timebase import WindowKind, WindowSpec

__all__ = ["dump_sketch", "dumps_sketch", "load_sketch", "loads_sketch"]

#: The union of serialisable plain sketch types.
Sketch = Union[ClockBloomFilter, ClockBitmap, ClockCountMin, ClockTimeSpanSketch]

#: Everything the dump/load entry points accept: plain sketches plus
#: the sharded facade (flattened to per-shard payloads).
AnySketch = Union[Sketch, "ShardedSketch"]

_KINDS: "dict[str, type]" = {
    "ClockBloomFilter": ClockBloomFilter,
    "ClockBitmap": ClockBitmap,
    "ClockCountMin": ClockCountMin,
    "ClockTimeSpanSketch": ClockTimeSpanSketch,
}

_PathOrFile = Union[str, "os.PathLike[str]", IO[bytes]]


def _window_fields(window: WindowSpec) -> "tuple[float, str]":
    return window.length, window.kind.value


def _build_window(length: float, kind: str) -> WindowSpec:
    return WindowSpec(length=length, kind=WindowKind(kind))


def _payload_any(sketch: AnySketch) -> "dict[str, Any]":
    """Payload for any serialisable sketch, sharded facades included."""
    from .shard import ShardedSketch  # local: shard imports this module

    if isinstance(sketch, ShardedSketch):
        return _payload_sharded(sketch)
    return _payload(sketch)


def _payload_sharded(sketch: Any) -> "dict[str, Any]":
    """Flatten a sharded facade: header plus ``shard{i}__``-prefixed
    replica payloads. Live worker pools are synchronised (barrier) so
    the parent-side replicas hold each shard's final state."""
    if not getattr(sketch.router, "_closed", False):
        sketch.router.barrier(sketch.now)
    payload: "dict[str, Any]" = {
        "kind": np.array("ShardedSketch"),
        "shards": np.array(sketch.shards),
        "router_kind": np.array(sketch.router.kind),
        "now": np.array(sketch.now),
        "items_inserted": np.array(sketch.items_inserted),
    }
    for i, replica in enumerate(sketch.router.replicas):
        for key, value in _payload(replica).items():
            payload[f"shard{i}__{key}"] = value
    return payload


def _payload(sketch: Sketch) -> "dict[str, Any]":
    kind = type(sketch).__name__
    if kind not in _KINDS:
        raise ConfigurationError(f"cannot serialise {kind}")
    length, wkind = _window_fields(sketch.window)
    payload: "dict[str, Any]" = {
        "kind": np.array(kind),
        "window_length": np.array(length),
        "window_kind": np.array(wkind),
        "seed": np.array(sketch.seed),
        "sweep_mode": np.array(sketch.clock.sweep_mode),
        "clock_values": sketch.clock.values,
        "steps_done": np.array(sketch.clock.steps_done),
        "now": np.array(sketch.now),
        "items_inserted": np.array(sketch.items_inserted),
        "s": np.array(sketch.s),
        "engine_min_fused": np.array(sketch.engine.min_fused),
    }
    if isinstance(sketch, ClockBloomFilter):
        payload["k"] = np.array(sketch.k)
        payload["n"] = np.array(sketch.n)
    elif isinstance(sketch, ClockBitmap):
        payload["n"] = np.array(sketch.n)
    elif isinstance(sketch, ClockCountMin):
        payload["width"] = np.array(sketch.width)
        payload["depth"] = np.array(sketch.depth)
        payload["counter_bits"] = np.array(sketch.counter_bits)
        payload["conservative"] = np.array(sketch.conservative)
        payload["counters"] = sketch.counters
    elif isinstance(sketch, ClockTimeSpanSketch):
        payload["k"] = np.array(sketch.k)
        payload["n"] = np.array(sketch.n)
        payload["timestamps"] = sketch.timestamps
    return payload


def _restore_any(payload: "Mapping[str, Any]") -> AnySketch:
    if str(payload["kind"]) == "ShardedSketch":
        return _restore_sharded(payload)
    return _restore(payload)


def _restore_sharded(payload: "Mapping[str, Any]") -> Any:
    """Rebuild a sharded facade from its flattened payload.

    Replicas restore individually (each through the validating
    ``load_values`` path), then reassemble under the router kind the
    facade was saved with — a ``"process"`` facade restarts its worker
    pool, each worker rehydrating from its shard's saved state.
    """
    from .shard import ShardedSketch  # local: shard imports this module

    facade: Any = ShardedSketch
    shards = int(payload["shards"])
    replicas = []
    for i in range(shards):
        prefix = f"shard{i}__"
        sub = {key[len(prefix):]: payload[key]
               for key in payload.keys() if key.startswith(prefix)}
        replicas.append(_restore(sub))
    sketch = facade(None, shards=shards,
                    router=str(payload["router_kind"]),
                    _replicas=replicas)
    sketch._now = float(payload["now"])
    sketch._items_inserted = int(payload["items_inserted"])
    return sketch


def _restore(payload: "Mapping[str, Any]") -> Sketch:
    kind = str(payload["kind"])
    window = _build_window(float(payload["window_length"]),
                           str(payload["window_kind"]))
    seed = int(payload["seed"])
    sweep_mode = str(payload["sweep_mode"])
    s = int(payload["s"])
    sketch: Sketch
    if kind == "ClockBloomFilter":
        sketch = ClockBloomFilter(n=int(payload["n"]), k=int(payload["k"]),
                                  s=s, window=window, seed=seed,
                                  sweep_mode=sweep_mode)
    elif kind == "ClockBitmap":
        sketch = ClockBitmap(n=int(payload["n"]), s=s, window=window,
                             seed=seed, sweep_mode=sweep_mode)
    elif kind == "ClockCountMin":
        conservative = bool(payload["conservative"]) \
            if "conservative" in payload else False
        sketch = ClockCountMin(width=int(payload["width"]),
                               depth=int(payload["depth"]), s=s,
                               window=window,
                               counter_bits=int(payload["counter_bits"]),
                               seed=seed, sweep_mode=sweep_mode,
                               conservative=conservative)
        sketch.counters[:] = payload["counters"]
    elif kind == "ClockTimeSpanSketch":
        sketch = ClockTimeSpanSketch(n=int(payload["n"]), k=int(payload["k"]),
                                     s=s, window=window, seed=seed,
                                     sweep_mode=sweep_mode)
        sketch.timestamps[:] = payload["timestamps"]
    else:
        raise ConfigurationError(f"cannot restore sketch kind {kind!r}")
    sketch.clock.load_values(payload["clock_values"])
    sketch.clock._steps_done = int(payload["steps_done"])
    sketch.clock._now = float(payload["now"])
    sketch._now = float(payload["now"])
    sketch._items_inserted = int(payload["items_inserted"])
    if "engine_min_fused" in payload:  # absent in pre-engine payloads
        sketch.engine.min_fused = int(payload["engine_min_fused"])
    return sketch


def dump_sketch(sketch: AnySketch, path: _PathOrFile) -> None:
    """Serialise a sketch (plain or sharded) to an ``.npz`` file."""
    np.savez_compressed(path, **_payload_any(sketch))


def dumps_sketch(sketch: AnySketch) -> bytes:
    """Serialise a sketch (plain or sharded) to bytes."""
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **_payload_any(sketch))
    return buffer.getvalue()


def load_sketch(path: _PathOrFile) -> AnySketch:
    """Restore a sketch from an ``.npz`` file."""
    with np.load(path, allow_pickle=False) as payload:
        return _restore_any(payload)


def loads_sketch(data: bytes) -> AnySketch:
    """Restore a sketch from bytes produced by :func:`dumps_sketch`."""
    with np.load(io.BytesIO(data), allow_pickle=False) as payload:
        return _restore_any(payload)
