"""Shared benchmark statistics: robust estimators and noise-aware verdicts.

Two concerns live here, both previously scattered across the benchmark
suite:

**The interleaved median-of-per-chunk-ratios estimator.** The three
overhead experiments (``obs_overhead``, ``audit_overhead``,
``trace_overhead``) measure a treated pipeline against a baseline one.
A whole quick-mode run lasts only milliseconds, so run-level timings
are at the mercy of scheduler preemptions, GC pauses, machine-wide
load spikes and frequency ramps. The shared estimator therefore:

- times every *full-size* chunk individually (:func:`chunked_times`;
  the trailing partial chunk is ingested but untimed, so every sample
  measures identical work);
- interleaves the two sides with the order **alternating every
  repeat** (base-other, other-base, ...) after one unmeasured warmup
  run each (:func:`interleaved_times`), so drift cancels per pair and
  any bias that systematically penalises whichever side runs second
  cancels by alternation;
- reports the **median of the pairwise ratios** ``other_i / base_i``
  (:func:`median_ratio` / :func:`overhead_pct`), pairing each chunk
  with the same chunk of the temporally adjacent run of the other
  side, so the chunks that straddled a load spike become discarded
  outliers.

**Noise-aware regression verdicts.** :func:`classify` compares a
current headline scalar against a committed baseline sample set and
returns a :class:`Verdict` — ``improved`` / ``flat`` / ``regressed``,
or an honest ``insufficient`` when the baseline carries too few
samples to estimate its own noise. The decision band is MAD-based
(:func:`mad` / :func:`noise_band_pct`): the median absolute deviation
scales to a robust sigma (×1.4826 under normality), the band is a few
sigmas wide, and a configurable floor keeps near-noiseless baselines
from flagging every run. The performance-observability plane
(:mod:`repro.obs.perf`) builds its comparator on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, List, Sequence, Tuple

__all__ = [
    "median",
    "mad",
    "median_ratio",
    "overhead_pct",
    "chunked_times",
    "interleaved_times",
    "noise_band_pct",
    "classify",
    "Verdict",
    "IMPROVED",
    "FLAT",
    "REGRESSED",
    "INSUFFICIENT",
]

#: MAD -> sigma scale under a normal noise model.
MAD_SIGMA = 1.4826

#: Default band half-width, in robust sigmas of the baseline samples.
DEFAULT_SIGMAS = 4.0

#: Default band floor: deltas inside this are always "flat" (relative
#: percent for ratio-like metrics, absolute points for percent ones).
DEFAULT_BAND_FLOOR_PCT = 10.0

#: Minimum baseline samples before a verdict is considered meaningful.
DEFAULT_MIN_SAMPLES = 3

IMPROVED = "improved"
FLAT = "flat"
REGRESSED = "regressed"
INSUFFICIENT = "insufficient"


# ----------------------------------------------------------------------
# Robust scalar statistics
# ----------------------------------------------------------------------

def median(values: Sequence[float]) -> float:
    """The sample median (mean of the middle pair for even sizes)."""
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(float(v) for v in values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def mad(values: Sequence[float]) -> float:
    """Median absolute deviation from the median (unscaled)."""
    centre = median(values)
    return median([abs(float(v) - centre) for v in values])


def median_ratio(base: Sequence[float], other: Sequence[float]) -> float:
    """Median of the pairwise ratios ``other_i / base_i``.

    The pairing is positional: callers align the two sample lists so
    that index ``i`` on both sides measured the same chunk of work in
    temporally adjacent runs, which cancels drift at the one-run time
    scale.
    """
    if len(base) != len(other):
        raise ValueError(
            f"ratio sides must pair up: {len(base)} base vs "
            f"{len(other)} other samples"
        )
    return median([o / b for o, b in zip(other, base)])


def overhead_pct(base: Sequence[float], other: Sequence[float]) -> float:
    """Overhead of ``other`` vs ``base``: median pairwise ratio, in %.

    Clamped at zero — the estimator answers "how much does the treated
    side cost", and sub-noise negative ratios are not a speedup claim.
    """
    return max(0.0, (median_ratio(base, other) - 1.0) * 100.0)


# ----------------------------------------------------------------------
# The interleaved chunk estimator
# ----------------------------------------------------------------------

def chunked_times(ingest: "Callable[[Any], None]", keys: Any,
                  chunk: int) -> "List[float]":
    """Feed ``keys`` through ``ingest`` in chunks; time each full chunk.

    Returns the wall time of every *full-size* chunk; the trailing
    partial chunk (if any) is ingested but not timed, so every sample
    measures identical work.
    """
    times: "List[float]" = []
    total = len(keys)
    pos = 0
    while pos + chunk <= total:
        part = keys[pos:pos + chunk]
        started = perf_counter()
        ingest(part)
        times.append(perf_counter() - started)
        pos += chunk
    if pos < total:
        ingest(keys[pos:])
    return times


def interleaved_times(run_base: "Callable[[], List[float]]",
                      run_other: "Callable[[], List[float]]",
                      repeats: int,
                      warmup: bool = True,
                      ) -> "Tuple[List[float], List[float]]":
    """Pool per-chunk samples from order-alternating interleaved runs.

    One unmeasured warmup run per side first (unless ``warmup=False``),
    then ``repeats`` measured runs of each side with the order
    alternating every repeat (base-other, other-base, ...). Returns the
    pooled ``(base_samples, other_samples)`` lists, positionally
    aligned for :func:`median_ratio`.
    """
    if warmup:
        run_base()
        run_other()
    base: "List[float]" = []
    other: "List[float]" = []
    for r in range(repeats):
        if r % 2 == 0:
            base.extend(run_base())
            other.extend(run_other())
        else:
            other.extend(run_other())
            base.extend(run_base())
    return base, other


# ----------------------------------------------------------------------
# Noise-aware regression verdicts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Verdict:
    """The outcome of one current-vs-baseline comparison.

    ``delta_pct`` and ``band_pct`` share a scale: relative percent of
    the baseline median for ratio-like metrics, absolute percentage
    points when ``classify`` ran with ``absolute=True`` (percent-unit
    metrics, where relative deltas explode near zero).
    """

    status: str           # improved | flat | regressed | insufficient
    delta_pct: float      # signed current-vs-baseline-median delta
    band_pct: float       # noise band half-width on the same scale
    n_baseline: int       # baseline samples the band was fitted on
    baseline_median: float
    detail: str           # one human-readable sentence

    @property
    def ok(self) -> bool:
        """True unless the verdict is an actionable regression."""
        return self.status != REGRESSED


def noise_band_pct(samples: Sequence[float],
                   floor_pct: float = DEFAULT_BAND_FLOOR_PCT,
                   sigmas: float = DEFAULT_SIGMAS,
                   absolute: bool = False) -> float:
    """Half-width of the baseline's noise band, with a floor.

    ``sigmas`` robust sigmas (MAD × 1.4826) of the baseline samples,
    relative to the baseline median unless ``absolute=True``, never
    narrower than ``floor_pct``. The floor is what keeps a suspiciously
    quiet baseline (2 near-identical samples) from flagging ordinary
    run-to-run jitter as a regression.
    """
    sigma = MAD_SIGMA * mad(samples)
    if not absolute:
        centre = abs(median(samples))
        if centre == 0.0:
            return floor_pct
        sigma = 100.0 * sigma / centre
    return max(floor_pct, sigmas * sigma)


def classify(current: float, baseline: Sequence[float],
             higher_is_better: bool = True,
             min_samples: int = DEFAULT_MIN_SAMPLES,
             floor_pct: float = DEFAULT_BAND_FLOOR_PCT,
             sigmas: float = DEFAULT_SIGMAS,
             absolute: bool = False) -> Verdict:
    """Classify ``current`` against a baseline sample set.

    Returns :data:`INSUFFICIENT` when fewer than ``min_samples``
    baseline samples exist — an honest refusal, not a pass: noise
    bands fitted on one or two points are fiction. Otherwise the delta
    of ``current`` from the baseline median is measured against the
    MAD-based noise band; deltas inside the band are :data:`FLAT`,
    deltas beyond it are :data:`IMPROVED` or :data:`REGRESSED`
    according to ``higher_is_better``.

    ``absolute=True`` switches delta and band to absolute percentage
    points — the right scale for metrics that are themselves percents
    (an overhead going 0.5% -> 1.5% is a 200% relative change but a
    meaningless one).
    """
    n = len(baseline)
    if n < min_samples:
        return Verdict(
            status=INSUFFICIENT, delta_pct=0.0, band_pct=0.0,
            n_baseline=n, baseline_median=median(baseline) if n else 0.0,
            detail=f"insufficient baseline samples ({n} < {min_samples}); "
                   "no verdict",
        )
    centre = median(baseline)
    if absolute or centre == 0.0:
        delta = current - centre
        band = noise_band_pct(baseline, floor_pct, sigmas, absolute=True)
        if not absolute:
            # Relative scale requested but undefined at a zero median;
            # fall back to absolute points with the same floor.
            band = max(band, floor_pct)
        unit = "pts"
    else:
        delta = 100.0 * (current - centre) / abs(centre)
        band = noise_band_pct(baseline, floor_pct, sigmas, absolute=False)
        unit = "%"
    if abs(delta) <= band:
        status = FLAT
    elif (delta > 0.0) == higher_is_better:
        status = IMPROVED
    else:
        status = REGRESSED
    direction = "higher" if delta > 0 else "lower"
    detail = (f"{status}: current {current:g} vs baseline median "
              f"{centre:g} ({delta:+.1f}{unit} {direction}, noise band "
              f"±{band:.1f}{unit} over {n} samples)")
    return Verdict(status=status, delta_pct=delta, band_pct=band,
                   n_baseline=n, baseline_median=centre, detail=detail)
