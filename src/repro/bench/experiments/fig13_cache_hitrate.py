"""Figure 13 — cache hit rate: LFU vs the BF+clock-assisted cache.

Paper setup: hit rate across cache sizes 10*2^2 .. 10*2^9 (40-5120
entries); the BF+clock cache uses a window of twice the cache size and
victimises inactive residents. Expected shape: BF+clock above LFU, most
clearly at small cache sizes (LFU pins stale-but-frequent items; the
clock evicts items whose batches have ended).
"""

from __future__ import annotations

from ...cache import ClockAssistedCache, LFUCache, simulate
from ..harness import ExperimentResult, cached_trace

DEFAULT_SIZES = tuple(10 * (1 << e) for e in range(2, 10))
DEFAULT_ITEMS = 150_000
#: Trace batch scale: batches of this characteristic window give both
#: policies recency structure to exploit.
TRACE_WINDOW_HINT = 2048


def run(quick: bool = False, seed: int = 1,
        cache_sizes=DEFAULT_SIZES,
        n_items: int = DEFAULT_ITEMS) -> ExperimentResult:
    """Reproduce Figure 13."""
    if quick:
        cache_sizes = (40, 160, 640)
        n_items = 30_000
    result = ExperimentResult(
        title="Figure 13: cache hit rate, LFU vs BF+clock-assisted",
        columns=["cache_size", "lfu_hit_rate", "bf_clock_hit_rate"],
        notes=[
            f"CAIDA-like trace, {n_items} accesses, sketch window = "
            "2x cache size",
            "expected shape: bf_clock above lfu, most at small caches",
        ],
    )
    stream = cached_trace("caida", n_items=n_items,
                          window_hint=TRACE_WINDOW_HINT, seed=seed)
    warmup = min(n_items // 10, 10_000)
    for capacity in cache_sizes:
        lfu = simulate(LFUCache(capacity), stream, warmup=warmup)
        clock = simulate(ClockAssistedCache(capacity, seed=seed), stream,
                         warmup=warmup)
        result.add(cache_size=capacity, lfu_hit_rate=lfu.hit_rate,
                   bf_clock_hit_rate=clock.hit_rate)
    return result
