"""Figure 6 — activeness accuracy: BF+clock vs SWAMP / TOBF / TBF / Ideal.

Paper setup: window T = 2^16, memory swept 16-512 KB (2^4..2^9),
count-based on three datasets plus time-based CAIDA. BF+clock uses
s = 2 and the optimal k; TBF uses 18-bit counters and 8 hashes; TOBF
64-bit timestamps; SWAMP its ISMEMBER estimator; "Ideal" is a Bloom
filter over exactly the in-window items.

Expected shape: BF+clock below every baseline (about two orders of
magnitude below TBF/TOBF/SWAMP when memory is small) and closest to the
ideal curve; SWAMP collapses entirely below its T-bits memory floor.
"""

from __future__ import annotations

from ...timebase import WindowKind, WindowSpec
from ...units import kb_to_bits
from ..harness import (
    ACTIVENESS_ALGORITHMS,
    ExperimentResult,
    activeness_fpr,
    cached_trace,
)

DEFAULT_WINDOW = 1 << 16
DEFAULT_MEMORIES_KB = (16, 32, 64, 128, 256, 512)
DEFAULT_DATASETS = ("caida", "criteo", "network")
WINDOWS_PER_STREAM = 10


def run(quick: bool = False, seed: int = 1,
        window_length: int = DEFAULT_WINDOW,
        memories_kb=DEFAULT_MEMORIES_KB,
        datasets=DEFAULT_DATASETS,
        algorithms=ACTIVENESS_ALGORITHMS,
        include_time_based: bool = True) -> ExperimentResult:
    """Reproduce Figure 6 (a-d)."""
    if quick:
        window_length = 1 << 12
        memories_kb = (4, 16)
        datasets = ("caida",)
        include_time_based = False

    result = ExperimentResult(
        title="Figure 6: item batch activeness accuracy (FPR vs memory)",
        columns=["panel", "dataset", "mode", "memory_kb", "algorithm", "fpr"],
        notes=[
            f"T={window_length}; BF+clock s=2 optimal k; TBF 18-bit/8-hash; "
            "TOBF 64-bit; SWAMP ISMEMBER; '-' = not constructible",
            "expected shape: bf_clock < tbf/tobf/swamp, closest to ideal",
        ],
    )

    n_items = WINDOWS_PER_STREAM * window_length
    modes = [("count", WindowKind.COUNT, d, p)
             for d, p in zip(datasets, ("a", "b", "c"))]
    if include_time_based:
        modes.append(("time", WindowKind.TIME, "caida", "d"))

    for mode_name, kind, dataset, panel in modes:
        window = WindowSpec(length=window_length, kind=kind)
        stream = cached_trace(dataset, n_items=n_items,
                              window_hint=window_length, seed=seed)
        for memory_kb in memories_kb:
            bits = kb_to_bits(memory_kb)
            for algorithm in algorithms:
                fpr = activeness_fpr(algorithm, stream, window, bits,
                                     seed=seed)
                result.add(panel=panel, dataset=dataset, mode=mode_name,
                           memory_kb=memory_kb, algorithm=algorithm, fpr=fpr)
    return result
