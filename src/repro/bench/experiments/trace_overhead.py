"""Span-tracing overhead: traced vs untraced monitored ingestion.

Not a paper figure — this guards :mod:`repro.obs.trace`'s promise: at
the default sampling rate (every trace recorded), end-to-end span
tracing must add at most :data:`OVERHEAD_BUDGET_PCT` (<10%) on top of a
metrics-enabled monitored pipeline.

Both sides run with the metrics switchboard **on** — the baseline for
tracing is an instrumented pipeline, not a bare one (the metrics layer
has its own budget, guarded by ``obs_overhead``). The only difference
between the sides is the tracer's sampling rate: ``sample_every=0``
(tracing off) vs ``sample_every=1`` (the default — every batch becomes
a monitor-root trace with engine children, and the sharded variant adds
scatter/ingest/merge spans).

The estimator is the shared interleaved median-of-ratios from
:mod:`repro.bench.stats` (also used by ``obs_overhead`` and
``audit_overhead``): chunked ``ItemBatchMonitor.observe_many`` calls, one
unmeasured warmup per side, ``repeats`` order-alternating runs, each
full-size chunk timed individually, overhead = median of pairwise
``traced_chunk_i / base_chunk_i`` ratios (drift cancels per pair, order
bias cancels by alternation, load spikes become discarded outliers).

Variants: ``monitor`` (plain four-task monitor — root + engine spans)
and ``sharded2`` (activeness and friends sharded P=2 over the serial
router — adds the scatter/merge span layer on the same thread).
"""

from __future__ import annotations

from ...monitor import ItemBatchMonitor
from ...obs import runtime as _obs
from ...obs import trace as _trace
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace
from ..stats import chunked_times, interleaved_times, median, overhead_pct

#: Documented ceiling for default-sampling tracing overhead.
OVERHEAD_BUDGET_PCT = 10.0

DEFAULT_ITEMS = 1_000_000
DEFAULT_CHUNK = 4096
DEFAULT_REPEATS = 3
DEFAULT_WINDOW = 4096

VARIANTS = ("monitor", "sharded2")


def _build(variant: str, seed: int) -> ItemBatchMonitor:
    window = count_window(DEFAULT_WINDOW)
    if variant == "monitor":
        return ItemBatchMonitor(window, memory="64KB", seed=seed)
    return ItemBatchMonitor.sharded(window, memory="64KB", seed=seed,
                                    shards=2, router="serial")


def _measure_variant(variant: str, seed: int, keys, chunk: int,
                     repeats: int) -> "tuple[list[float], list[float]]":
    """Interleaved per-chunk times: tracing off vs on, metrics on.

    Warmup, order alternation, and per-chunk timing come from the
    shared estimator in :mod:`repro.bench.stats`.
    """

    def ingest(sample_every: int) -> "list[float]":
        _trace.configure(sample_every=sample_every)
        monitor = _build(variant, seed)
        try:
            return chunked_times(monitor.observe_many, keys, chunk)
        finally:
            monitor.close()

    return interleaved_times(lambda: ingest(0), lambda: ingest(1), repeats)


def run(quick: bool = False, seed: int = 1, n_items: int = DEFAULT_ITEMS,
        chunk: int = DEFAULT_CHUNK,
        repeats: int = DEFAULT_REPEATS) -> ExperimentResult:
    """Measure traced-vs-untraced monitored ingest for every variant."""
    if quick:
        n_items = 100_000
        repeats = 5
    result = ExperimentResult(
        title="repro.obs.trace overhead: monitored ingest, "
              "spans on vs off (metrics on both sides)",
        columns=["variant", "n_items", "base_ips", "traced_ips",
                 "overhead_pct"],
        notes=[
            f"chunked observe_many ({chunk} items/batch; one root span "
            "+ engine children per chunk, plus scatter/merge spans for "
            "the sharded variant)",
            "overhead = median of per-chunk traced/base time ratios "
            f"over {repeats} order-alternating interleaved runs per "
            "side, both sides metrics-enabled; budget "
            f"{OVERHEAD_BUDGET_PCT:.0f}% at the default sampling rate",
        ],
    )
    was_enabled = _obs.ENABLED
    spans_recorded = 0
    try:
        _obs.enable(fresh=True)
        for variant in VARIANTS:
            stream = cached_trace("caida", n_items=n_items,
                                  window_hint=DEFAULT_WINDOW, seed=seed)
            keys = stream.keys
            base_secs, traced_secs = _measure_variant(
                variant, seed, keys, chunk, repeats)
            spans_recorded = max(spans_recorded,
                                 _trace.tracer().ring.total_pushed)
            result.add(variant=variant, n_items=len(keys),
                       base_ips=chunk / median(base_secs),
                       traced_ips=chunk / median(traced_secs),
                       overhead_pct=overhead_pct(base_secs, traced_secs))
    finally:
        _trace.configure()  # back to defaults (fresh ring, sample all)
        if was_enabled:
            _obs.enable(fresh=False)
        else:
            _obs.disable()
    result.extras["budget_pct"] = OVERHEAD_BUDGET_PCT
    result.extras["spans_recorded"] = spans_recorded
    return result
