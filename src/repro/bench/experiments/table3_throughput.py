"""Table 3 — throughput and accuracy of all four Clock-sketch variants.

Paper columns: single-thread, multi-thread, and multi-thread+SIMD
throughput, plus single- and multi-thread accuracy. The reproduction's
mapping (DESIGN.md §4):

- "single-thread"      → ``sweep_mode="scalar"`` (per-cell Python sweep
  inline with inserts);
- "multi-thread"       → ``sweep_mode="deferred-scalar"`` (cleaning
  batched a full circle at a time, still per-cell — the unsynchronised
  background thread without SIMD; total cleaning work is unchanged, so
  throughput stays near single-thread, as in the paper);
- "multi-thread+SIMD"  → ``sweep_mode="deferred"`` (batched numpy range
  sweeps, and the activeness/cardinality variants chunk-vectorise their
  inserts too).

Expected shape: simd >> single ≈ multi throughput for every variant,
and deferred accuracy within a whisker of exact — the paper's
"cancelling synchronization will barely affect accuracy".
"""

from __future__ import annotations

from ...core import (
    ClockBitmap,
    ClockBloomFilter,
    ClockCountMin,
    ClockTimeSpanSketch,
)
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace, drive_inserts, true_cardinality
from ..incremental import size_are, timespan_error_rate
from ..metrics import measure_throughput

#: Paper configurations per row of Table 3.
CONFIGS = {
    "bf_clock": dict(memory="8KB", window=4096, s=2),
    "bm_clock": dict(memory="8KB", window=8192, s=8),
    "cm_clock": dict(memory="512KB", window=16384, s=8),
    "bf_ts_clock": dict(memory="128KB", window=4096, s=8),
}

#: (column, sweep_mode, scalar_driver). The single-thread column
#: replays the per-item ``insert`` hot path — the paper's inline
#: processing — while the threaded columns ingest through the batch
#: engine, whose deferred chunked path stands in for the paper's
#: unsynchronised cleaning thread.
MODES = (
    ("single", "scalar", True),
    ("multi", "deferred-scalar", False),
    ("simd", "deferred", False),
)


def _build(name: str, sweep_mode: str, seed: int):
    cfg = CONFIGS[name]
    window = count_window(cfg["window"])
    if name == "bf_clock":
        return ClockBloomFilter.from_memory(cfg["memory"], window,
                                            s=cfg["s"], seed=seed,
                                            sweep_mode=sweep_mode)
    if name == "bm_clock":
        return ClockBitmap.from_memory(cfg["memory"], window, s=cfg["s"],
                                       seed=seed, sweep_mode=sweep_mode)
    if name == "cm_clock":
        return ClockCountMin.from_memory(cfg["memory"], window, s=cfg["s"],
                                         seed=seed, sweep_mode=sweep_mode)
    if name == "bf_ts_clock":
        return ClockTimeSpanSketch.from_memory(cfg["memory"], window,
                                               s=cfg["s"], seed=seed,
                                               sweep_mode=sweep_mode)
    raise ValueError(name)


def _accuracy(name: str, sweep_mode: str, stream, seed: int):
    """The per-variant accuracy metric of Table 3 (RE / ARE / error rate)."""
    cfg = CONFIGS[name]
    window = count_window(cfg["window"])
    if name == "bf_clock":
        return None  # the paper reports no accuracy for BF+clock here
    sketch = _build(name, sweep_mode, seed)
    if name == "bm_clock":
        sketch.insert_many(stream.keys)
        truth = true_cardinality(stream, window)
        if truth == 0:
            return None
        return abs(sketch.estimate().value - truth) / truth
    if name == "cm_clock":
        return size_are(sketch, stream, window, seed=seed)
    return timespan_error_rate(sketch, stream, window, seed=seed)


def run(quick: bool = False, seed: int = 1, n_items: int = 50_000,
        scalar: bool = False) -> ExperimentResult:
    """Reproduce Table 3.

    ``scalar=True`` forces every mode through the per-item ``insert``
    loop (no batch engine anywhere), for hot-path regression tracking.
    """
    if quick:
        n_items = 10_000
    result = ExperimentResult(
        title="Table 3: throughput and accuracy of the Clock-sketch variants",
        columns=["variant", "s", "single_mops", "multi_mops", "simd_mops",
                 "query_mops", "accuracy_single", "accuracy_multi", "metric"],
        notes=[
            "single=scalar sweep, multi=deferred cleaning, simd=numpy "
            "sweep (DESIGN.md mapping); pure-Python Mops",
            "expected shape: simd >> single; multi accuracy ~= single",
        ],
    )
    metric_names = {"bf_clock": "-", "bm_clock": "RE", "cm_clock": "ARE",
                    "bf_ts_clock": "error_rate"}

    import numpy as np

    for name, cfg in CONFIGS.items():
        stream = cached_trace("caida", n_items=n_items,
                              window_hint=cfg["window"], seed=seed)
        mops = {}
        sketch = None
        for mode_name, sweep_mode, scalar_driver in MODES:
            sketch = _build(name, sweep_mode, seed)
            res = measure_throughput(
                lambda: drive_inserts(sketch, stream.keys,
                                      scalar=scalar or scalar_driver),
                len(stream),
            )
            mops[mode_name] = res.mops
        # Query throughput, on the last (simd) sketch, per the paper's
        # per-variant query numbers.
        rng = np.random.default_rng(seed)
        query_keys = rng.permutation(stream.keys)[:20_000]
        if name == "bf_clock":
            op = lambda: sketch.contains_many(query_keys)  # noqa: E731
        elif name == "bm_clock":
            op = lambda: [sketch.estimate()  # noqa: E731
                          for _ in range(len(query_keys) // 1000)]
        elif name == "cm_clock":
            op = lambda: sketch.query_many(query_keys)  # noqa: E731
        else:
            sample = query_keys[:2000]
            op = lambda: [sketch.query(int(key)) for key in sample]  # noqa: E731
        n_ops = (len(query_keys) if name in ("bf_clock", "cm_clock")
                 else (len(query_keys) // 1000 if name == "bm_clock" else 2000))
        query_mops = measure_throughput(op, n_ops).mops

        acc_single = _accuracy(name, "scalar", stream, seed)
        acc_multi = _accuracy(name, "deferred", stream, seed)  # the threaded runs share accuracy
        result.add(variant=name, s=cfg["s"], single_mops=mops["single"],
                   multi_mops=mops["multi"], simd_mops=mops["simd"],
                   query_mops=query_mops,
                   accuracy_single=acc_single, accuracy_multi=acc_multi,
                   metric=metric_names[name])
    return result
