"""Batch-engine speedup: ``insert_many`` vs the per-item ``insert`` loop.

Not a paper figure — this is the library's own performance experiment
for the batch-ingestion engine. For each Clock-sketch variant (exact
``vector`` sweep mode, Table 3's configurations) it measures items/sec
through the per-item ``insert`` hot path and through the fused
``insert_many`` path on the same synthetic trace, and reports the
speedup. Both paths leave the sketch in bit-identical state (see
:mod:`repro.engine`), so the speedup is a pure implementation win.

The scalar loop is measured on a bounded prefix of the stream (pure
Python at ~10^5 items/sec would otherwise dominate the run) — items/sec
is rate-based, so the ratio is unaffected.
"""

from __future__ import annotations

from ...core import (
    ClockBitmap,
    ClockBloomFilter,
    ClockCountMin,
    ClockTimeSpanSketch,
)
from ...kernels import use_backend
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace, drive_inserts
from ..metrics import measure_throughput

#: Table 3's per-variant configurations, reused for comparability.
CONFIGS = {
    "bf_clock": dict(memory="8KB", window=4096, s=2),
    "bm_clock": dict(memory="8KB", window=8192, s=8),
    "cm_clock": dict(memory="512KB", window=16384, s=8),
    "bf_ts_clock": dict(memory="128KB", window=4096, s=8),
}

DEFAULT_ITEMS = 1_000_000

#: Items replayed through the scalar loop (per variant).
DEFAULT_SCALAR_CAP = 50_000


def _build(name: str, seed: int):
    cfg = CONFIGS[name]
    window = count_window(cfg["window"])
    if name == "bf_clock":
        return ClockBloomFilter.from_memory(cfg["memory"], window,
                                            s=cfg["s"], seed=seed)
    if name == "bm_clock":
        return ClockBitmap.from_memory(cfg["memory"], window, s=cfg["s"],
                                       seed=seed)
    if name == "cm_clock":
        return ClockCountMin.from_memory(cfg["memory"], window, s=cfg["s"],
                                         seed=seed)
    if name == "bf_ts_clock":
        return ClockTimeSpanSketch.from_memory(cfg["memory"], window,
                                               s=cfg["s"], seed=seed)
    raise ValueError(name)


def run(quick: bool = False, seed: int = 1, n_items: int = DEFAULT_ITEMS,
        scalar_cap: int = DEFAULT_SCALAR_CAP,
        kernel=None) -> ExperimentResult:
    """Measure scalar vs batch ingestion throughput for every variant.

    ``kernel`` pins a kernel backend for the run (a name from
    :data:`repro.kernels.KERNEL_CHOICES` or a backend instance; None
    keeps the process default).
    """
    with use_backend(kernel):
        return _run(quick, seed, n_items, scalar_cap)


def _run(quick: bool, seed: int, n_items: int,
         scalar_cap: int) -> ExperimentResult:
    if quick:
        n_items = 20_000
        scalar_cap = 4_000
    result = ExperimentResult(
        title="Batch engine: insert_many vs per-item insert (items/sec)",
        columns=["variant", "n_items", "scalar_ips", "batch_ips", "speedup"],
        notes=[
            "exact (vector) sweep mode; both paths are bit-identical, "
            "the speedup is pure implementation",
            f"scalar loop measured on a {scalar_cap}-item prefix "
            "(rate-based comparison)",
        ],
    )
    for name in CONFIGS:
        stream = cached_trace("caida", n_items=n_items,
                              window_hint=CONFIGS[name]["window"], seed=seed)
        prefix = stream.keys[: min(scalar_cap, len(stream.keys))]
        scalar_sketch = _build(name, seed)
        scalar_res = measure_throughput(
            lambda: drive_inserts(scalar_sketch, prefix, scalar=True),
            len(prefix),
        )
        batch_sketch = _build(name, seed)
        batch_res = measure_throughput(
            lambda: drive_inserts(batch_sketch, stream.keys),
            len(stream.keys),
        )
        scalar_ips = scalar_res.mops * 1e6
        batch_ips = batch_res.mops * 1e6
        result.add(variant=name, n_items=len(stream.keys),
                   scalar_ips=scalar_ips, batch_ips=batch_ips,
                   speedup=batch_ips / scalar_ips)
    return result
