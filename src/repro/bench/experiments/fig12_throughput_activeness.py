"""Figure 12 — activeness throughput: BF+clock vs TBF / TOBF / SWAMP.

Paper setup: memory 8 KB, window 4096; insert and query throughput in
Mops over the real incremental structures. Following §6.1 ("we only
test time consumed to insert into each sketch cell because the clock
cell traversal can be performed by another thread"), BF+clock runs with
the deferred cleaner so inserts do not pay for cleaning inline.

Absolute numbers are pure-Python and 1-2 orders below the paper's C++
(see EXPERIMENTS.md); the comparison across algorithms is the result.
"""

from __future__ import annotations

import numpy as np

from ...baselines import Swamp, TimeOutBloomFilter, TimingBloomFilter
from ...core import ClockBloomFilter
from ...timebase import count_window
from ...units import kb_to_bits
from ..harness import ExperimentResult, cached_trace, drive_inserts
from ..metrics import measure_throughput

DEFAULT_WINDOW = 4096
DEFAULT_MEMORY_KB = 8
DEFAULT_ITEMS = 60_000
REPEATS = 3


def _build(name: str, window, memory_bits: int, seed: int):
    if name == "bf_clock":
        return ClockBloomFilter.from_memory(memory_bits // 8, window,
                                            seed=seed, sweep_mode="deferred")
    if name == "tbf":
        return TimingBloomFilter.from_memory(memory_bits // 8, window,
                                             seed=seed)
    if name == "tobf":
        return TimeOutBloomFilter.from_memory(memory_bits // 8, window,
                                              seed=seed)
    if name == "swamp":
        return Swamp.from_memory(memory_bits // 8,
                                 window_items=int(window.length), seed=seed)
    raise ValueError(name)


def run(quick: bool = False, seed: int = 1,
        window_length: int = DEFAULT_WINDOW,
        memory_kb: float = DEFAULT_MEMORY_KB,
        n_items: int = DEFAULT_ITEMS,
        scalar: bool = False) -> ExperimentResult:
    """Reproduce Figure 12.

    ``scalar=True`` replays per-item ``insert`` loops instead of the
    batch engine, for hot-path regression tracking.
    """
    if quick:
        n_items = 10_000
    result = ExperimentResult(
        title="Figure 12: activeness throughput (Mops, pure Python)",
        columns=["algorithm", "insert_mops", "query_mops"],
        notes=[
            f"memory={memory_kb}KB, T={window_length}, {n_items} items, "
            f"best of {REPEATS} runs",
            "absolute Mops are 1-2 orders below the paper's C++; the "
            "cross-algorithm comparison is the reproduced result",
        ],
    )

    window = count_window(window_length)
    stream = cached_trace("caida", n_items=n_items,
                          window_hint=window_length, seed=seed)
    rng = np.random.default_rng(seed)
    query_keys = rng.permutation(stream.keys)[: min(n_items, 20_000)]
    memory_bits = kb_to_bits(memory_kb)

    for name in ("bf_clock", "tbf", "tobf", "swamp"):
        insert_best = 0.0
        query_best = 0.0
        for _ in range(REPEATS):
            sketch = _build(name, window, memory_bits, seed)
            res = measure_throughput(
                lambda: drive_inserts(sketch, stream.keys, scalar=scalar),
                len(stream),
            )
            insert_best = max(insert_best, res.mops)
            if name == "swamp":
                op = lambda: sketch.ismember_many(query_keys)  # noqa: E731
            else:
                op = lambda: sketch.contains_many(query_keys)  # noqa: E731
            res = measure_throughput(op, len(query_keys))
            query_best = max(query_best, res.mops)
        result.add(algorithm=name, insert_mops=insert_best,
                   query_mops=query_best)
    return result
