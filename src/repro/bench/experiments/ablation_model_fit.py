"""Ablation A4 — §5's closed forms against measured error.

The analytical models of §5 drive parameter choices (optimal k and s);
this ablation checks how well they track reality on the synthetic
workloads:

- membership: eq (3)'s FPR prediction vs the measured BF+clock FPR.
  Eq (1) assumes every one of the T window items is a distinct active
  element; real streams carry far fewer distinct active keys, so the
  prediction is a (often very loose) *upper envelope* — the measured
  column must sit below the predicted one, with both falling as memory
  grows.
- cardinality: eq (15)'s high-probability RE bound vs measured RE —
  again measured <= bound, and the bound's arg-min should land near
  the measured arg-min over s.
"""

from __future__ import annotations

from ...analysis import cardinality_re_bound, membership_fpr
from ...core.params import cells_for_memory, optimal_k_membership
from ...timebase import count_window
from ...units import kb_to_bits
from ..harness import (
    ExperimentResult,
    activeness_fpr,
    cached_trace,
    cardinality_estimate,
    true_cardinality,
)


def run(quick: bool = False, seed: int = 1,
        window_length: int = 1 << 14,
        memories_kb=(8, 16, 32, 64, 128),
        s_values=(2, 3, 4, 6, 8)) -> ExperimentResult:
    """Run the model-vs-measured ablation."""
    if quick:
        memories_kb = (8, 64)
        s_values = (2, 8)

    result = ExperimentResult(
        title="Ablation A4: analytical model (Section 5) vs measured error",
        columns=["task", "memory_kb", "s", "k", "predicted", "measured"],
        notes=[
            f"T={window_length}, CAIDA-like",
            "expected: both fall with memory, and measured <= predicted "
            "wherever the prediction is above ~1e-3 (the model assumes a "
            "full window of distinct elements; once that pessimism drives "
            "the prediction below the error-window floor, the measured "
            "rate bottoms out above it)",
        ],
    )

    window = count_window(window_length)
    stream = cached_trace("caida", 10 * window_length, window_length, seed)

    # Membership: eq (3) vs measured, s = 2, across memory.
    for memory_kb in memories_kb:
        bits = kb_to_bits(memory_kb)
        n = cells_for_memory(bits, 2)
        k = optimal_k_membership(n, window_length, 2)
        predicted = membership_fpr(bits, window_length, 2, k=k)
        measured = activeness_fpr("bf_clock", stream, window, bits, s=2,
                                  k=k, seed=seed)
        result.add(task="membership", memory_kb=memory_kb, s=2, k=k,
                   predicted=predicted, measured=measured)

    # Cardinality: eq (15) bound vs measured RE across s at 8 KB.
    truth = true_cardinality(stream, window)
    for s in s_values:
        bits = kb_to_bits(8)
        predicted = cardinality_re_bound(bits, s)
        estimate = cardinality_estimate("bm_clock", stream, window, bits,
                                        s=s, seed=seed)
        measured = abs(estimate - truth) / truth if truth else None
        result.add(task="cardinality", memory_kb=8, s=s,
                   predicted=predicted, measured=measured)
    return result
