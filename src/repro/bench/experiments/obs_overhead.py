"""Observability overhead: batch ingestion with metrics on vs off.

Not a paper figure — this guards :mod:`repro.obs`'s core promise. The
instrumentation must be nil-cost while disabled (a module-flag check on
the hot path) and cheap while enabled; the documented budget for the
enabled mode is :data:`OVERHEAD_BUDGET_PCT` (<10%) on the 1M-item
batch-ingest workload of ``batch_throughput`` (Table 3 configurations,
exact vector sweep mode).

The stream is ingested in chunks (default 4096 items) rather than one
giant batch: per-batch instrumentation fires once per engine call, so
chunking makes the measurement reflect a realistic steady-state
pipeline instead of amortising the obs work over a single call.

The two sides are *interleaved*, with the order **alternating every
repeat** (base-obs, obs-base, base-obs, ...) after one unmeasured
warmup run each, and every full-size chunk is timed individually; the
reported overhead is the **median of the pairwise ratios**
``obs_chunk_i / base_chunk_i``, pairing each chunk with the same chunk
of the temporally adjacent run of the other side. A whole quick-mode
run of the fastest variant lasts only a few milliseconds, so run-level
timings are at the mercy of scheduler preemptions, GC pauses,
machine-wide load spikes and frequency ramps; pairing cancels drift at
the one-run time scale, alternating the order cancels any bias that
systematically penalises whichever side runs second, and the median
over ``repeats × (n_items // chunk)`` pair ratios discards the chunks
that straddled a spike. The estimator is shared with the other
overhead guards — it lives in :mod:`repro.bench.stats`. The
``base_ips``/``obs_ips`` columns report each side's median per-chunk
throughput for context.

``run`` also captures a full registry snapshot from the final
instrumented run into ``result.extras["snapshot"]`` so the benchmark
can archive it (and CI can upload it as an artifact).
"""

from __future__ import annotations

from ...obs import runtime as _obs
from ..harness import ExperimentResult, cached_trace
from ..stats import chunked_times, interleaved_times, median, overhead_pct
from .batch_throughput import CONFIGS, _build

#: Documented ceiling for enabled-mode overhead on batch ingest.
OVERHEAD_BUDGET_PCT = 10.0

DEFAULT_ITEMS = 1_000_000
DEFAULT_CHUNK = 4096
DEFAULT_REPEATS = 3


def _measure_variant(name: str, seed: int, keys, chunk: int,
                     repeats: int) -> "tuple[list[float], list[float], object]":
    """Interleaved per-chunk times plus the final instrumented sketch.

    The estimator lives in :mod:`repro.bench.stats`: one unmeasured
    warmup run per side, then ``repeats`` order-alternating measured
    runs pooling every run's per-chunk samples. The registry is made
    fresh once up front so warmup and measured instrumented runs
    accumulate into the snapshot the caller archives.
    """
    _obs.enable(fresh=True)
    _obs.disable()
    sketch = None

    def run_base() -> "list[float]":
        _obs.disable()
        return chunked_times(_build(name, seed).insert_many, keys, chunk)

    def run_obs() -> "list[float]":
        nonlocal sketch
        _obs.enable(fresh=False)
        sketch = _build(name, seed)
        return chunked_times(sketch.insert_many, keys, chunk)

    base_secs, obs_secs = interleaved_times(run_base, run_obs, repeats)
    return base_secs, obs_secs, sketch


def run(quick: bool = False, seed: int = 1, n_items: int = DEFAULT_ITEMS,
        chunk: int = DEFAULT_CHUNK,
        repeats: int = DEFAULT_REPEATS) -> ExperimentResult:
    """Measure enabled-vs-disabled ingest throughput for every variant."""
    if quick:
        n_items = 100_000
        repeats = 5
    result = ExperimentResult(
        title="repro.obs overhead: chunked insert_many, metrics on vs off",
        columns=["variant", "n_items", "base_ips", "obs_ips", "overhead_pct"],
        notes=[
            f"chunked ingestion ({chunk} items/batch: per-batch "
            "instrumentation fires once per chunk)",
            "overhead = median of per-chunk obs/base time ratios over "
            f"{repeats} order-alternating interleaved runs per side "
            "(drift and order bias cancel per pair, load spikes become "
            "discarded outliers); budget "
            f"{OVERHEAD_BUDGET_PCT:.0f}% enabled-mode overhead",
        ],
    )
    snapshot = None
    was_enabled = _obs.ENABLED
    try:
        for name in CONFIGS:
            stream = cached_trace("caida", n_items=n_items,
                                  window_hint=CONFIGS[name]["window"],
                                  seed=seed)
            keys = stream.keys

            base_secs, obs_secs, sketch = _measure_variant(
                name, seed, keys, chunk, repeats)
            # Sample state gauges + occupancy so the archived snapshot
            # carries every metric kind the stack can produce.
            registry = _obs.enable(fresh=False)
            sketch.metrics()
            snapshot = registry.snapshot()
            _obs.disable()

            result.add(variant=name, n_items=len(keys),
                       base_ips=chunk / median(base_secs),
                       obs_ips=chunk / median(obs_secs),
                       overhead_pct=overhead_pct(base_secs, obs_secs))
    finally:
        if was_enabled:
            _obs.enable(fresh=False)
        else:
            _obs.disable()
    result.extras["snapshot"] = snapshot
    result.extras["budget_pct"] = OVERHEAD_BUDGET_PCT
    return result
