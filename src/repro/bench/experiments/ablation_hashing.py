"""Ablation A2 — Kirsch-Mitzenmacher double hashing vs independent hashes.

The paper evaluates ``k`` independently-seeded Bob Hashes per item; this
reproduction derives the ``k`` cell indexes from one 64-bit base hash
via double hashing (DESIGN.md). Kirsch & Mitzenmacher proved the
substitution preserves Bloom-filter asymptotics; this ablation verifies
it empirically on the actual workload: the measured BF+clock FPR under
both schemes should agree within sampling noise at every budget.
"""

from __future__ import annotations

import numpy as np

from ...core.clockarray import ClockArray
from ...core.params import cells_for_memory, optimal_k_membership
from ...hashing import bulk_base_hashes
from ...timebase import count_window
from ...units import kb_to_bits
from ..harness import ExperimentResult, cached_trace, membership_query_keys


def _independent_index_matrix(keys: np.ndarray, n: int, k: int,
                              seed: int) -> np.ndarray:
    """k index columns from k independently-seeded base hashes."""
    columns = [
        (bulk_base_hashes(keys, seed=seed * 1000 + i) % np.uint64(n))
        .astype(np.int64)
        for i in range(k)
    ]
    return np.stack(columns, axis=1)


def _membership_with_matrix(index_matrix, query_matrix, set_steps, probe,
                            n, query_steps):
    last_set = np.full(n, -1, dtype=np.int64)
    k = index_matrix.shape[1]
    np.maximum.at(last_set, index_matrix.ravel(), np.repeat(set_steps, k))
    values = np.zeros(n, dtype=np.int64)
    touched = np.flatnonzero(last_set >= 0)
    values[touched] = probe.kernels.snapshot_values(
        last_set[touched], touched, n, probe.max_value, query_steps)
    return np.all(values[query_matrix] > 0, axis=1)


def run(quick: bool = False, seed: int = 1,
        window_length: int = 1 << 14,
        memories_kb=(8, 16, 32, 64),
        s: int = 2) -> ExperimentResult:
    """Run the hashing-scheme ablation."""
    if quick:
        window_length = 1 << 12
        memories_kb = (8, 32)

    result = ExperimentResult(
        title="Ablation A2: double hashing vs independent hash functions",
        columns=["memory_kb", "k", "fpr_double_hashing", "fpr_independent"],
        notes=[
            f"T={window_length}, s={s}, CAIDA-like; same query set",
            "expected: the two columns agree within sampling noise",
        ],
    )

    window = count_window(window_length)
    stream = cached_trace("caida", 10 * window_length, window_length, seed)
    keys = stream.keys
    times = np.arange(1, len(keys) + 1, dtype=np.float64)
    t_query = float(len(keys))
    query_keys, _ = membership_query_keys(keys, times, t_query, window)

    from ...hashing import IndexDeriver

    for memory_kb in memories_kb:
        bits = kb_to_bits(memory_kb)
        n = cells_for_memory(bits, s)
        k = optimal_k_membership(n, window_length, s)
        probe = ClockArray(n, s, window)
        insert_times = np.arange(1, len(keys) + 1, dtype=np.int64)
        set_steps = (
            insert_times * np.int64(n) * np.int64(probe.circles_per_window)
        ) // np.int64(window_length)
        query_steps = probe.total_steps_at(t_query)

        deriver = IndexDeriver(n=n, k=k, seed=seed)
        double = _membership_with_matrix(
            deriver.bulk(keys), deriver.bulk(query_keys), set_steps, probe,
            n, query_steps,
        )
        independent = _membership_with_matrix(
            _independent_index_matrix(keys, n, k, seed),
            _independent_index_matrix(query_keys, n, k, seed),
            set_steps, probe, n, query_steps,
        )
        result.add(
            memory_kb=memory_kb, k=k,
            fpr_double_hashing=float(np.mean(double)),
            fpr_independent=float(np.mean(independent)),
        )
    return result
