"""Ablation A1 — decomposing BF+clock's false positives.

§3.3 says errors come from two sources: hash collisions (a Bloom-filter
intrinsic) and the error window (recently-expired items whose clocks
have not yet drained). This ablation separates them by querying three
disjoint all-negative populations at several clock widths:

- ``recently_expired`` — seen keys whose batch expired within the last
  error window ``T/(2^s - 2)``: eligible for *both* error sources;
- ``long_expired`` — seen keys expired for more than ``2T``: their
  clocks have provably drained, so only collisions remain;
- ``never_seen`` — fresh keys: pure collision rate.

Expected shape: the ``recently_expired`` FPR exceeds the other two, and
the excess shrinks as ``s`` grows (the error window is ``T/(2^s-2)``),
while the pure-collision FPRs *rise* with ``s`` (fewer cells per bit) —
exactly the trade-off §5.1 optimises.
"""

from __future__ import annotations

import numpy as np

from ...core.activeness import snapshot_membership
from ...core.params import cells_for_memory, optimal_k_membership
from ...streams import last_occurrences
from ...timebase import count_window
from ...units import kb_to_bits
from ..harness import ExperimentResult, cached_trace


def run(quick: bool = False, seed: int = 1,
        window_length: int = 1 << 14,
        memory_kb: float = 32,
        s_values=(2, 3, 4, 6, 8)) -> ExperimentResult:
    """Run the FPR-decomposition ablation."""
    if quick:
        window_length = 1 << 12
        s_values = (2, 4, 8)

    result = ExperimentResult(
        title="Ablation A1: BF+clock FPR by query population",
        columns=["s", "k", "population", "queries", "fpr"],
        notes=[
            f"T={window_length}, memory={memory_kb}KB, CAIDA-like",
            "expected: recently_expired > long_expired ~= never_seen; "
            "the excess shrinks with s, the collision floor grows",
        ],
    )

    window = count_window(window_length)
    stream = cached_trace("caida", 10 * window_length, window_length, seed)
    keys = stream.keys
    times = np.arange(1, len(keys) + 1, dtype=np.float64)
    t_query = float(len(keys))
    bits = kb_to_bits(memory_kb)

    unique, last = last_occurrences(keys, times)
    age = t_query - last
    populations = {
        "long_expired": unique[age >= 2 * window_length],
        "never_seen": 10**15 + np.arange(100_000, dtype=np.int64),
    }

    for s in s_values:
        n = cells_for_memory(bits, s)
        k = optimal_k_membership(n, window_length, s)
        error_window = window_length / ((1 << s) - 2)
        recently = unique[(age >= window_length)
                          & (age < window_length + error_window)]
        pops = dict(populations)
        pops["recently_expired"] = recently
        for name, query_keys in pops.items():
            if len(query_keys) == 0:
                result.add(s=s, k=k, population=name, queries=0, fpr=None)
                continue
            positives = snapshot_membership(
                keys, None, query_keys, t_query, n=n, k=k, s=s,
                window=window, seed=seed,
            )
            result.add(s=s, k=k, population=name, queries=len(query_keys),
                       fpr=float(np.count_nonzero(positives)) / len(query_keys))
    return result
