"""Figure 7 — stability of BF+clock over time.

Paper setup: FPR of BF+clock measured at 6, 7, 8, 9, 10 windows into
the stream, for T ∈ {2^15, 2^16, 2^17}, on all four dataset/mode
panels. Expected shape: the FPR stays flat across query times — the
clock's cleaning keeps the structure in steady state, making it "suit
for enduring operation".
"""

from __future__ import annotations

from ...timebase import WindowKind, WindowSpec
from ...units import kb_to_bits
from ..harness import ExperimentResult, activeness_fpr, cached_trace

DEFAULT_WINDOWS = (1 << 15, 1 << 16, 1 << 17)
DEFAULT_QUERY_WINDOWS = (6, 7, 8, 9, 10)
DEFAULT_MEMORY_KB = 32
DEFAULT_DATASETS = ("caida", "criteo", "network")


def run(quick: bool = False, seed: int = 1,
        window_lengths=DEFAULT_WINDOWS,
        query_windows=DEFAULT_QUERY_WINDOWS,
        memory_kb: float = DEFAULT_MEMORY_KB,
        datasets=DEFAULT_DATASETS,
        include_time_based: bool = True) -> ExperimentResult:
    """Reproduce Figure 7 (a-d)."""
    if quick:
        window_lengths = (1 << 12,)
        query_windows = (6, 8, 10)
        datasets = ("caida",)
        include_time_based = False

    result = ExperimentResult(
        title="Figure 7: BF+clock stability (FPR vs query time)",
        columns=["panel", "dataset", "mode", "window", "query_at_windows",
                 "fpr"],
        notes=[
            f"memory={memory_kb}KB, s=2, optimal k",
            "expected shape: flat FPR across query times per window size",
        ],
    )

    bits = kb_to_bits(memory_kb)
    modes = [("count", WindowKind.COUNT, d, p)
             for d, p in zip(datasets, ("a", "b", "c"))]
    if include_time_based:
        modes.append(("time", WindowKind.TIME, "caida", "d"))

    max_windows = max(query_windows)
    for mode_name, kind, dataset, panel in modes:
        for window_length in window_lengths:
            window = WindowSpec(length=window_length, kind=kind)
            stream = cached_trace(dataset, n_items=max_windows * window_length,
                                  window_hint=window_length, seed=seed)
            for at in query_windows:
                fpr = activeness_fpr(
                    "bf_clock", stream, window, bits,
                    t_query=float(at * window_length), seed=seed,
                )
                result.add(panel=panel, dataset=dataset, mode=mode_name,
                           window=window_length, query_at_windows=at, fpr=fpr)
    return result
