"""Serve-throughput: the network front door vs the in-process engine.

Not a paper figure — this measures what the :mod:`repro.serve` layer
costs: one synthetic trace is ingested (a) directly through
``ItemBatchMonitor.observe_many`` and (b) through a live
:class:`~repro.serve.IngestService` over loopback TCP by ``P``
concurrent load-generator clients, each driving its own tenant with
newline-delimited ``INSERT_BATCH`` frames. The ``overhead`` column is
the honest ratio ``direct_ips / served_ips`` — JSON framing, socket
hops, per-tenant locking and the event loop, all included.

Two served shapes are driven: a ``serial``-router tenant (sketch work
runs inline on the event loop — the single-core floor) and a
``process``-router tenant (sketch work fans out to shard workers, so
on a multi-core host the load generator can saturate the sharded
engine through the network layer). As with the shard-scaling bench,
process-router numbers only mean parallelism when the host has the
cores; ``cpus`` rides along so the ledger can tell.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter

from ...serve import TenantConfig
from ...serve.testing import LineClient, ServiceThread
from ..harness import ExperimentResult, cached_trace

#: Table 3's activeness configuration, reused for comparability.
MEMORY = "64KB"
WINDOW = 4096

DEFAULT_ITEMS = 400_000
#: Keys per INSERT_BATCH frame — the protocol's amortisation knob.
BATCH = 2_000

_SERIAL = TenantConfig(window_length=WINDOW, memory=MEMORY, seed=1)
_PROCESS = TenantConfig(window_length=WINDOW, memory=MEMORY, seed=1,
                        tasks=("activeness", "size"), shards=2,
                        router="process", timeout=60.0)


def _direct_ips(keys, batch: int) -> float:
    monitor = _SERIAL.build_monitor()
    try:
        started = perf_counter()
        for lo in range(0, len(keys), batch):
            monitor.observe_many(keys[lo:lo + batch])
        return len(keys) / (perf_counter() - started)
    finally:
        monitor.close()


def _client_worker(hosted, tenant, keys, batch, go, failures):
    try:
        with LineClient.for_service(hosted, timeout=600.0) as client:
            go.wait()
            for lo in range(0, len(keys), batch):
                response = client.request(
                    {"op": "INSERT_BATCH", "tenant": tenant,
                     "keys": keys[lo:lo + batch]})
                if not response.get("ok"):
                    failures.append(response)
                    return
    except Exception as exc:  # noqa: BLE001 - report, don't hang the bench
        failures.append({"error": repr(exc)})


def _served_ips(config: TenantConfig, keys, clients: int,
                batch: int) -> float:
    with ServiceThread(default_config=config) as hosted:
        share = (len(keys) + clients - 1) // clients
        go = threading.Event()
        failures: list = []
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(hosted, f"load-{i}", keys[i * share:(i + 1) * share],
                      batch, go, failures))
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        started = perf_counter()
        go.set()
        for thread in threads:
            thread.join()
        elapsed = perf_counter() - started
        if failures:
            raise RuntimeError(f"load generator hit errors: {failures[:3]}")
    return len(keys) / elapsed


def run(quick: bool = False, seed: int = 1, n_items: int = DEFAULT_ITEMS,
        client_counts: "tuple[int, ...]" = (1, 2), batch: int = BATCH,
        ) -> ExperimentResult:
    """Measure served vs direct ingestion throughput."""
    if quick:
        n_items = 30_000
        batch = 1_000
    cpus = os.cpu_count() or 1
    result = ExperimentResult(
        title="Serve throughput: loopback NDJSON ingest vs direct "
              "observe_many",
        columns=["mode", "router", "clients", "batch", "n_items", "ips",
                 "overhead", "cpus"],
        notes=[
            "overhead = direct_ips / served_ips (JSON framing + sockets "
            "+ event loop included)",
            "each client drives its own tenant; served ips is the "
            "aggregate across clients",
            f"host has {cpus} cpu(s); process-router saturation needs "
            "one core per shard worker plus the event loop",
        ],
    )
    stream = cached_trace("caida", n_items=n_items, window_hint=WINDOW,
                          seed=seed)
    # JSON-framable python scalars, shared by both paths for fairness.
    keys = [str(key) for key in stream.keys]
    direct = _direct_ips(keys, batch)
    result.add(mode="direct", router="serial", clients=0, batch=batch,
               n_items=len(keys), ips=direct, overhead=1.0, cpus=cpus)
    for config, router in ((_SERIAL, "serial"), (_PROCESS, "process")):
        for clients in client_counts:
            ips = _served_ips(config, keys, clients, batch)
            result.add(mode="served", router=router, clients=clients,
                       batch=batch, n_items=len(keys), ips=ips,
                       overhead=direct / ips, cpus=cpus)
    return result
