"""Figure 8 — BF+clock FPR across window sizes and memory budgets.

Paper setup: memory 16-128 KB, windows T ∈ {2^15, 2^16, 2^17}, four
dataset/mode panels. Expected shape: FPR falls as memory grows or the
window shrinks (fewer active batches per cell).
"""

from __future__ import annotations

from ...timebase import WindowKind, WindowSpec
from ...units import kb_to_bits
from ..harness import ExperimentResult, activeness_fpr, cached_trace

DEFAULT_WINDOWS = (1 << 15, 1 << 16, 1 << 17)
DEFAULT_MEMORIES_KB = (16, 32, 64, 128)
DEFAULT_DATASETS = ("caida", "criteo", "network")
WINDOWS_PER_STREAM = 10


def run(quick: bool = False, seed: int = 1,
        window_lengths=DEFAULT_WINDOWS,
        memories_kb=DEFAULT_MEMORIES_KB,
        datasets=DEFAULT_DATASETS,
        include_time_based: bool = True) -> ExperimentResult:
    """Reproduce Figure 8 (a-d)."""
    if quick:
        window_lengths = (1 << 11, 1 << 12)
        memories_kb = (8, 32)
        datasets = ("caida",)
        include_time_based = False

    result = ExperimentResult(
        title="Figure 8: BF+clock window size evaluation (FPR vs memory)",
        columns=["panel", "dataset", "mode", "window", "memory_kb", "fpr"],
        notes=[
            "s=2, optimal k per configuration",
            "expected shape: FPR falls with memory, rises with window",
        ],
    )

    modes = [("count", WindowKind.COUNT, d, p)
             for d, p in zip(datasets, ("a", "b", "c"))]
    if include_time_based:
        modes.append(("time", WindowKind.TIME, "caida", "d"))

    for mode_name, kind, dataset, panel in modes:
        for window_length in window_lengths:
            window = WindowSpec(length=window_length, kind=kind)
            stream = cached_trace(
                dataset, n_items=WINDOWS_PER_STREAM * window_length,
                window_hint=window_length, seed=seed,
            )
            for memory_kb in memories_kb:
                fpr = activeness_fpr(
                    "bf_clock", stream, window, kb_to_bits(memory_kb),
                    seed=seed,
                )
                result.add(panel=panel, dataset=dataset, mode=mode_name,
                           window=window_length, memory_kb=memory_kb, fpr=fpr)
    return result
