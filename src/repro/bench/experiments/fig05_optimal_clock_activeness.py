"""Figure 5 — optimal clock cell size for BF+clock.

Paper setup: window T = 2^16 (count-based on CAIDA/Criteo/Network plus
time-based on CAIDA), memory 16-128 KB, clock size s swept over 2..8
with the optimal k per (s, memory). Expected shape: FPR is minimised at
s = 2 for every memory budget, and panel (a) shows the cell count
halving as s doubles (the collision-vs-error-window trade-off of §3.3).
"""

from __future__ import annotations

from ...core.params import cells_for_memory, optimal_k_membership
from ...timebase import WindowKind, WindowSpec
from ...units import kb_to_bits
from ..harness import ExperimentResult, activeness_fpr, cached_trace

DEFAULT_WINDOW = 1 << 16
DEFAULT_MEMORIES_KB = (16, 32, 64, 128)
DEFAULT_S_VALUES = tuple(range(2, 9))
DEFAULT_DATASETS = ("caida", "criteo", "network")
#: Stream length: enough windows that expired batches populate the
#: query set (the paper streams ~30 M items; we scale to 10 windows).
WINDOWS_PER_STREAM = 10


def run(quick: bool = False, seed: int = 1,
        window_length: int = DEFAULT_WINDOW,
        memories_kb=DEFAULT_MEMORIES_KB,
        s_values=DEFAULT_S_VALUES,
        datasets=DEFAULT_DATASETS,
        include_time_based: bool = True) -> ExperimentResult:
    """Reproduce Figure 5 (a-e)."""
    if quick:
        window_length = 1 << 12
        memories_kb = (16, 64)
        s_values = (2, 4, 8)
        datasets = ("caida",)
        include_time_based = False

    result = ExperimentResult(
        title="Figure 5: optimal clock cell size for BF+clock (FPR vs s)",
        columns=["panel", "dataset", "mode", "memory_kb", "s", "k",
                 "cells", "fpr"],
        notes=[
            f"T={window_length}, optimal k per (s, memory) as in §5.1",
            "expected shape: FPR minimised at s=2 in every column",
        ],
    )

    n_items = WINDOWS_PER_STREAM * window_length
    modes = [("count", WindowKind.COUNT, d) for d in datasets]
    if include_time_based:
        modes.append(("time", WindowKind.TIME, "caida"))

    panel_names = {("count", "caida"): "b", ("count", "criteo"): "c",
                   ("count", "network"): "d", ("time", "caida"): "e"}
    for mode_name, kind, dataset in modes:
        window = WindowSpec(length=window_length, kind=kind)
        stream = cached_trace(dataset, n_items=n_items,
                              window_hint=window_length, seed=seed)
        for memory_kb in memories_kb:
            bits = kb_to_bits(memory_kb)
            for s in s_values:
                n = cells_for_memory(bits, s)
                k = optimal_k_membership(n, window_length, s)
                fpr = activeness_fpr(
                    "bf_clock", stream, window, bits, s=s, k=k, seed=seed
                )
                result.add(
                    panel=panel_names.get((mode_name, dataset), "b"),
                    dataset=dataset, mode=mode_name, memory_kb=memory_kb,
                    s=s, k=k, cells=n, fpr=fpr,
                )
    return result
