"""One experiment module per paper figure/table.

Each module exposes ``run(quick=False, seed=1, ...) -> ExperimentResult``
with defaults matching the paper's configuration (scaled stream lengths
— see EXPERIMENTS.md). ``EXPERIMENTS`` maps CLI names to runners.
"""

from . import (
    ablation_conservative,
    ablation_deferred,
    ablation_model_fit,
    ablation_error_window,
    ablation_hashing,
    audit_overhead,
    fig05_optimal_clock_activeness,
    fig06_accuracy_activeness,
    fig07_stability_activeness,
    fig08_window_activeness,
    fig09_cardinality,
    fig10_timespan,
    fig11_size,
    fig12_throughput_activeness,
    batch_throughput,
    fig13_cache_hitrate,
    fig13x_cache_policies,
    obs_overhead,
    serve_throughput,
    shard_scaling,
    table3_throughput,
)

EXPERIMENTS = {
    "fig5": fig05_optimal_clock_activeness.run,
    "fig6": fig06_accuracy_activeness.run,
    "fig7": fig07_stability_activeness.run,
    "fig8": fig08_window_activeness.run,
    "fig9": fig09_cardinality.run,
    "fig10": fig10_timespan.run,
    "fig11": fig11_size.run,
    "fig12": fig12_throughput_activeness.run,
    "fig13": fig13_cache_hitrate.run,
    "fig13x": fig13x_cache_policies.run,
    "table3": table3_throughput.run,
    "batch": batch_throughput.run,
    "obs": obs_overhead.run,
    "serve": serve_throughput.run,
    "shard": shard_scaling.run,
    "audit": audit_overhead.run,
    "ablation1": ablation_error_window.run,
    "ablation2": ablation_hashing.run,
    "ablation3": ablation_deferred.run,
    "ablation4": ablation_model_fit.run,
    "ablation5": ablation_conservative.run,
}

__all__ = ["EXPERIMENTS"]
