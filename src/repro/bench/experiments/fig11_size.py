"""Figure 11 — item batch size (CM+clock).

Four panels, CAIDA count-based, ARE over all active batches:

- (a) optimal clock size: ARE vs s ∈ {2..8} for memory 8-64 KB at
  W = 2^14; §5.4 expects s = 3-4 at small memory, growing to 8 at
  64 KB.
- (b) accuracy vs the naive 64-bit-timestamp baseline, memory
  64-512 KB. Expected: clocked wins below ~256 KB.
- (c) stability over time (W ∈ {2^10, 2^12, 2^14}).
- (d) window sweep (W ∈ {2^10, 2^12, 2^14}) across memory, s = 2.
"""

from __future__ import annotations

from ...baselines import NaiveSizeSketch
from ...core import ClockCountMin
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace
from ..incremental import size_are

DATASET = "caida"
WINDOWS_PER_STREAM = 8
DEFAULT_DEPTH = 3


def _clock_are(stream, window, memory_kb, s, seed, limit=None):
    sketch = ClockCountMin.from_memory(
        f"{memory_kb}KB", window, depth=DEFAULT_DEPTH, s=s, seed=seed
    )
    return size_are(sketch, stream, window, limit=limit, seed=seed)


def _naive_are(stream, window, memory_kb, seed, limit=None):
    sketch = NaiveSizeSketch.from_memory(
        f"{memory_kb}KB", window, depth=DEFAULT_DEPTH, seed=seed
    )
    return size_are(sketch, stream, window, limit=limit, seed=seed)


def run(quick: bool = False, seed: int = 1) -> ExperimentResult:
    """Reproduce Figure 11 (a-d)."""
    result = ExperimentResult(
        title="Figure 11: item batch size (ARE)",
        columns=["panel", "window", "memory_kb", "s", "algorithm",
                 "query_at_windows", "are"],
        notes=[
            "CAIDA-like, count-based, d=3 rows, 16-bit counters",
            "expected shapes: (a) optimum s=3-4 small memory, 8 at 64KB; "
            "(b) clocked beats naive at small memory; (c) flat; "
            "(d) improves with memory",
        ],
    )

    # Panel (a): optimal clock size at W = 2^14.
    length_a = 1 << 14
    window_a = count_window(length_a)
    stream_a = cached_trace(DATASET, WINDOWS_PER_STREAM * length_a,
                            length_a, seed)
    memories_a = (8, 64) if quick else (8, 16, 32, 64)
    s_values = (2, 4, 8) if quick else tuple(range(2, 9))
    for memory_kb in memories_a:
        for s in s_values:
            are = _clock_are(stream_a, window_a, memory_kb, s, seed)
            result.add(panel="a", window=length_a, memory_kb=memory_kb,
                       s=s, algorithm="cm_clock", are=are)

    # Panel (b): clocked vs naive across memory (s = 8 as in §6.5);
    # extended below the paper's 64 KB floor to show the clocked
    # advantage growing as memory shrinks.
    memories_b = (32, 256) if quick else (16, 32, 64, 128, 256, 512)
    for memory_kb in memories_b:
        are = _clock_are(stream_a, window_a, memory_kb, 8, seed)
        result.add(panel="b", window=length_a, memory_kb=memory_kb, s=8,
                   algorithm="cm_clock", are=are)
        are = _naive_are(stream_a, window_a, memory_kb, seed)
        result.add(panel="b", window=length_a, memory_kb=memory_kb,
                   algorithm="naive", are=are)

    # Panel (c): stability over time at 32 KB, s = 4.
    lengths_c = (1 << 12,) if quick else (1 << 10, 1 << 12, 1 << 14)
    query_at = (6, 8) if quick else (6, 7, 8)
    for length in lengths_c:
        window = count_window(length)
        stream = cached_trace(DATASET, max(query_at) * length, length, seed)
        for at in query_at:
            are = _clock_are(stream, window, 32, 4, seed, limit=at * length)
            result.add(panel="c", window=length, memory_kb=32, s=4,
                       algorithm="cm_clock", query_at_windows=at, are=are)

    # Panel (d): window sweep across memory at s = 2 (paper's note).
    lengths_d = (1 << 12,) if quick else (1 << 10, 1 << 12, 1 << 14)
    memories_d = (8, 64) if quick else (2, 4, 8, 16, 32, 64, 128)
    for length in lengths_d:
        window = count_window(length)
        stream = cached_trace(DATASET, WINDOWS_PER_STREAM * length, length,
                              seed)
        for memory_kb in memories_d:
            are = _clock_are(stream, window, memory_kb, 2, seed)
            result.add(panel="d", window=length, memory_kb=memory_kb, s=2,
                       algorithm="cm_clock", are=are)
    return result
