"""Figure 10 — item batch time span (BF-ts+clock).

Four panels, CAIDA count-based, error rate per §6.1's RE-for-spans
metric (fraction of active batches not answered exactly — the sketch
either answers exactly or overestimates):

- (a) optimal clock size: error vs s ∈ {2..16} for memory 16-128 KB at
  W = 4096; §5.3 puts the optimum around s = 8 at 128 KB, growing
  with memory.
- (b) accuracy vs the naive 64-bit-timestamp baseline, memory
  64-512 KB. Expected: clocked wins below ~256 KB.
- (c) stability over time (W ∈ {2^12, 2^14, 2^16}).
- (d) window sweep (W ∈ {2^10, 2^12, 2^14}) across memory.
"""

from __future__ import annotations

from ...baselines import NaiveTimeSpanSketch
from ...core import ClockTimeSpanSketch
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace
from ..incremental import timespan_error_rate

DATASET = "caida"
WINDOWS_PER_STREAM = 8
DEFAULT_S = 8
DEFAULT_K = 2


def _clock_error(stream, window, memory_kb, s, seed, limit=None):
    sketch = ClockTimeSpanSketch.from_memory(
        f"{memory_kb}KB", window, k=DEFAULT_K, s=s, seed=seed
    )
    return timespan_error_rate(sketch, stream, window, limit=limit, seed=seed)


def _naive_error(stream, window, memory_kb, seed, limit=None):
    sketch = NaiveTimeSpanSketch.from_memory(
        f"{memory_kb}KB", window, k=DEFAULT_K, seed=seed
    )
    return timespan_error_rate(sketch, stream, window, limit=limit, seed=seed)


def run(quick: bool = False, seed: int = 1) -> ExperimentResult:
    """Reproduce Figure 10 (a-d)."""
    result = ExperimentResult(
        title="Figure 10: item batch time span (error rate)",
        columns=["panel", "window", "memory_kb", "s", "algorithm",
                 "query_at_windows", "error_rate"],
        notes=[
            "CAIDA-like, count-based, k=2; error = batch not answered "
            "exactly",
            "expected shapes: (a) optimum near s=8 at 128KB; (b) clocked "
            "beats naive at small memory; (c) flat; (d) improves with "
            "memory",
        ],
    )

    # Panel (a): optimal clock size at W = 4096.
    length_a = 4096
    window_a = count_window(length_a)
    stream_a = cached_trace(DATASET, WINDOWS_PER_STREAM * length_a,
                            length_a, seed)
    memories_a = (16, 128) if quick else (16, 32, 64, 128)
    s_values = (2, 8) if quick else (2, 4, 6, 8, 10, 12, 14, 16)
    for memory_kb in memories_a:
        for s in s_values:
            err = _clock_error(stream_a, window_a, memory_kb, s, seed)
            result.add(panel="a", window=length_a, memory_kb=memory_kb,
                       s=s, algorithm="bf_ts_clock", error_rate=err)

    # Panel (b): clocked vs naive across memory; the sweep reaches down
    # to 8 KB so the crossover (clocked wins at small memory, naive
    # catches up once collisions vanish) is visible.
    memories_b = (16, 256) if quick else (8, 16, 32, 64, 128, 256, 512)
    for memory_kb in memories_b:
        err = _clock_error(stream_a, window_a, memory_kb, DEFAULT_S, seed)
        result.add(panel="b", window=length_a, memory_kb=memory_kb,
                   s=DEFAULT_S, algorithm="bf_ts_clock", error_rate=err)
        err = _naive_error(stream_a, window_a, memory_kb, seed)
        result.add(panel="b", window=length_a, memory_kb=memory_kb,
                   algorithm="naive", error_rate=err)

    # Panel (c): stability over time at 128 KB.
    lengths_c = (1 << 12,) if quick else (1 << 12, 1 << 14)
    query_at = (6, 8) if quick else (6, 7, 8)
    for length in lengths_c:
        window = count_window(length)
        stream = cached_trace(DATASET, max(query_at) * length, length, seed)
        for at in query_at:
            err = _clock_error(stream, window, 128, DEFAULT_S, seed,
                               limit=at * length)
            result.add(panel="c", window=length, memory_kb=128, s=DEFAULT_S,
                       algorithm="bf_ts_clock", query_at_windows=at,
                       error_rate=err)

    # Panel (d): window sweep across memory.
    lengths_d = (1 << 10,) if quick else (1 << 10, 1 << 12, 1 << 14)
    memories_d = (32, 256) if quick else (32, 64, 128, 256, 512)
    for length in lengths_d:
        window = count_window(length)
        stream = cached_trace(DATASET, WINDOWS_PER_STREAM * length, length,
                              seed)
        for memory_kb in memories_d:
            err = _clock_error(stream, window, memory_kb, DEFAULT_S, seed)
            result.add(panel="d", window=length, memory_kb=memory_kb,
                       s=DEFAULT_S, algorithm="bf_ts_clock", error_rate=err)
    return result
