"""Accuracy-audit overhead: monitored ingest with the auditor on vs off.

Not a paper figure — this guards the audit plane's core promise: at the
default 1% shadow sample rate, attaching :class:`ShadowAuditor` to an
:class:`~repro.monitor.ItemBatchMonitor` costs at most
:data:`OVERHEAD_BUDGET_PCT` (≤10%) on the 1M-item chunked ingest
workload. Both sides run with :mod:`repro.obs` *enabled* — the baseline
is the already-instrumented monitor, so the measured delta is the audit
plane alone (sampler hashing, shadow-tracker upkeep, and the periodic
audit cycles that fire inside ``observe_many``).

Methodology matches :mod:`~repro.bench.experiments.obs_overhead`: the
two sides are interleaved with the order alternating every repeat after
an unmeasured warmup each, every full-size chunk is timed individually,
and the reported overhead is the median of the pairwise per-chunk time
ratios — robust to scheduler/GC spikes and to the minority of chunks
that carry a full audit cycle (the cadence puts a cycle in roughly one
chunk in eight at the default sizes; the median reflects the steady
state while the ``audit_cycles`` column reports how many ran).
"""

from __future__ import annotations

from ...monitor import ItemBatchMonitor
from ...obs import runtime as _obs
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace
from ..stats import chunked_times, interleaved_times, median, overhead_pct

#: Documented ceiling for audit-enabled ingest overhead at 1% sampling.
OVERHEAD_BUDGET_PCT = 10.0

DEFAULT_ITEMS = 1_000_000
DEFAULT_CHUNK = 4096
DEFAULT_REPEATS = 3
DEFAULT_WINDOW = 4096
DEFAULT_MEMORY = "128KB"
DEFAULT_SAMPLE_RATE = 0.01


def _build_monitor(seed: int, window: int,
                   sample_rate: "float | None") -> ItemBatchMonitor:
    monitor = ItemBatchMonitor(count_window(window), memory=DEFAULT_MEMORY,
                               seed=seed)
    if sample_rate is not None:
        monitor.audited(sample_rate=sample_rate)
    return monitor


def _measure(seed: int, window: int, sample_rate: float, keys, chunk: int,
             repeats: int) -> "tuple[list[float], list[float], object]":
    """Interleaved per-chunk times: (base, audited, final auditor).

    The shared estimator (:mod:`repro.bench.stats`) handles the warmup
    runs, the order alternation, and the per-chunk timing.
    """
    auditor = None

    def run_base() -> "list[float]":
        monitor = _build_monitor(seed, window, None)
        return chunked_times(monitor.observe_many, keys, chunk)

    def run_audited() -> "list[float]":
        nonlocal auditor
        monitor = _build_monitor(seed, window, sample_rate)
        auditor = monitor.auditor
        return chunked_times(monitor.observe_many, keys, chunk)

    base_secs, audit_secs = interleaved_times(run_base, run_audited, repeats)
    return base_secs, audit_secs, auditor


def run(quick: bool = False, seed: int = 1, n_items: int = DEFAULT_ITEMS,
        chunk: int = DEFAULT_CHUNK, repeats: int = DEFAULT_REPEATS,
        window: int = DEFAULT_WINDOW,
        sample_rate: float = DEFAULT_SAMPLE_RATE) -> ExperimentResult:
    """Measure audited-vs-plain monitored ingest throughput."""
    if quick:
        n_items = 100_000
        repeats = 5
    result = ExperimentResult(
        title="accuracy-audit overhead: monitored insert_many, "
              "auditor on vs off (obs enabled on both sides)",
        columns=["sample_rate", "n_items", "base_ips", "audit_ips",
                 "overhead_pct", "audit_cycles"],
        notes=[
            f"chunked ingestion ({chunk} items/batch); baseline is the "
            "obs-enabled monitor, so the delta is the audit plane alone",
            "overhead = median of per-chunk audited/base time ratios over "
            f"{repeats} order-alternating interleaved runs per side; "
            f"budget {OVERHEAD_BUDGET_PCT:.0f}% at "
            f"{sample_rate:.0%} sampling",
        ],
    )
    was_enabled = _obs.ENABLED
    snapshot = None
    try:
        _obs.enable(fresh=True)
        stream = cached_trace("caida", n_items=n_items, window_hint=window,
                              seed=seed)
        keys = stream.keys
        base_secs, audit_secs, auditor = _measure(
            seed, window, sample_rate, keys, chunk, repeats)
        snapshot = _obs.registry().snapshot()
        result.add(sample_rate=sample_rate, n_items=len(keys),
                   base_ips=chunk / median(base_secs),
                   audit_ips=chunk / median(audit_secs),
                   overhead_pct=overhead_pct(base_secs, audit_secs),
                   audit_cycles=auditor.cycles if auditor else 0)
    finally:
        if was_enabled:
            _obs.enable(fresh=False)
        else:
            _obs.disable()
    result.extras["snapshot"] = snapshot
    result.extras["budget_pct"] = OVERHEAD_BUDGET_PCT
    return result
