"""Ablation A5 — conservative update for CM+clock.

The paper uses plain Count-Min updates; conservative update (Estan &
Varghese) increments only the counters at the current minimum, which
provably keeps the overestimate property while absorbing much of the
collision error. This ablation measures the batch-size ARE of both
update rules across memory budgets.

Expected shape: conservative at or below plain everywhere, with the
gap largest at small memory where collisions dominate.
"""

from __future__ import annotations

from ...core import ClockCountMin
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace
from ..incremental import size_are


def run(quick: bool = False, seed: int = 1,
        window_length: int = 1 << 14,
        memories_kb=(8, 16, 32, 64, 128),
        s: int = 4) -> ExperimentResult:
    """Run the conservative-update ablation."""
    if quick:
        memories_kb = (8, 32)

    result = ExperimentResult(
        title="Ablation A5: plain vs conservative Count-Min updates",
        columns=["memory_kb", "are_plain", "are_conservative"],
        notes=[
            f"T={window_length}, s={s}, d=3, CAIDA-like",
            "expected: conservative <= plain, gap largest at small memory",
        ],
    )

    window = count_window(window_length)
    stream = cached_trace("caida", 8 * window_length, window_length, seed)
    for memory_kb in memories_kb:
        plain = ClockCountMin.from_memory(f"{memory_kb}KB", window, s=s,
                                          seed=seed)
        conservative = ClockCountMin.from_memory(f"{memory_kb}KB", window,
                                                 s=s, seed=seed,
                                                 conservative=True)
        result.add(
            memory_kb=memory_kb,
            are_plain=size_are(plain, stream, window, seed=seed),
            are_conservative=size_are(conservative, stream, window,
                                      seed=seed),
        )
    return result
