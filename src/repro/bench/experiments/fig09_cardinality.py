"""Figure 9 — item batch cardinality (BM+clock).

Four panels, on CAIDA count-based:

- (a) optimal clock size: RE vs s for memory 1-16 KB at W = 16384; the
  §5.2 bound predicts the optimum (s = 8 at the reference config).
- (b) accuracy: RE vs memory (2-32 KB) at W = 2^12 against TSV, CVS and
  SWAMP's DISTINCTMLE. Expected: BM+clock ≥2 orders below TSV/SWAMP at
  small memory and a little better than CVS.
- (c) stability: RE over time for W ∈ {2^12, 2^13, 2^14} at 4 KB.
- (d) window sweep: RE vs memory for W ∈ {2^12, 2^14, 2^16}.
"""

from __future__ import annotations

from ...timebase import count_window
from ...units import kb_to_bits
from ..harness import (
    CARDINALITY_ALGORITHMS,
    ExperimentResult,
    cached_trace,
    cardinality_estimate,
    true_cardinality,
)

DATASET = "caida"
WINDOWS_PER_STREAM = 10


def _relative_error(stream, window, t_query, estimate) -> "float | None":
    if estimate is None:
        return None
    truth = true_cardinality(stream, window, t_query)
    if truth == 0:
        return None
    return abs(estimate - truth) / truth


def run(quick: bool = False, seed: int = 1) -> ExperimentResult:
    """Reproduce Figure 9 (a-d)."""
    result = ExperimentResult(
        title="Figure 9: item batch cardinality (relative error)",
        columns=["panel", "window", "memory_kb", "s", "algorithm",
                 "query_at_windows", "re"],
        notes=[
            "CAIDA-like, count-based; BM+clock s per §5.2 optimum unless "
            "swept; '-' = not constructible or truth zero",
            "expected shapes: (a) optimum near s=8 at large memory; "
            "(b) bm_clock << tsv/swamp, ~CVS; (c) flat; (d) improves "
            "with memory",
        ],
    )

    # Panel (a): optimal clock size.
    window_a = count_window(16384)
    memories_a = (2, 4, 8, 16) if quick else (1, 2, 4, 8, 16)
    s_values = (2, 4, 8) if quick else tuple(range(2, 9))
    stream_a = cached_trace(DATASET, WINDOWS_PER_STREAM * 16384, 16384, seed)
    for memory_kb in memories_a:
        for s in s_values:
            est = cardinality_estimate("bm_clock", stream_a, window_a,
                                       kb_to_bits(memory_kb), s=s, seed=seed)
            result.add(panel="a", window=16384, memory_kb=memory_kb, s=s,
                       algorithm="bm_clock",
                       re=_relative_error(stream_a, window_a, None, est))

    # Panel (b): accuracy vs the baselines at W = 2^12.
    length_b = 1 << 12
    window_b = count_window(length_b)
    stream_b = cached_trace(DATASET, WINDOWS_PER_STREAM * length_b,
                            length_b, seed)
    memories_b = (2, 8) if quick else (2, 4, 8, 16, 32)
    for memory_kb in memories_b:
        for algorithm in CARDINALITY_ALGORITHMS:
            est = cardinality_estimate(algorithm, stream_b, window_b,
                                       kb_to_bits(memory_kb), seed=seed)
            result.add(panel="b", window=length_b, memory_kb=memory_kb,
                       algorithm=algorithm,
                       re=_relative_error(stream_b, window_b, None, est))

    # Panel (c): stability over time at 4 KB.
    lengths_c = (1 << 12,) if quick else (1 << 12, 1 << 13, 1 << 14)
    query_at = (6, 10, 14) if quick else (4, 6, 8, 10, 12, 14)
    for length in lengths_c:
        window = count_window(length)
        stream = cached_trace(DATASET, max(query_at) * length, length, seed)
        for at in query_at:
            t_query = float(at * length)
            est = cardinality_estimate("bm_clock", stream, window,
                                       kb_to_bits(4), t_query=t_query,
                                       seed=seed)
            result.add(panel="c", window=length, memory_kb=4,
                       algorithm="bm_clock", query_at_windows=at,
                       re=_relative_error(stream, window, t_query, est))

    # Panel (d): window sweep.
    lengths_d = (1 << 12,) if quick else (1 << 12, 1 << 14, 1 << 16)
    memories_d = (8, 32) if quick else (4, 8, 16, 32, 64, 128)
    for length in lengths_d:
        window = count_window(length)
        stream = cached_trace(DATASET, WINDOWS_PER_STREAM * length, length,
                              seed)
        for memory_kb in memories_d:
            est = cardinality_estimate("bm_clock", stream, window,
                                       kb_to_bits(memory_kb), seed=seed)
            result.add(panel="d", window=length, memory_kb=memory_kb,
                       algorithm="bm_clock",
                       re=_relative_error(stream, window, None, est))
    return result
