"""Figure 13 extended — the full cache-policy shootout.

Beyond the paper's LFU-vs-BF+clock comparison, this runs every policy
the library ships — LFU, LRU, classic CLOCK, the BF+clock-assisted
cache, the batch-size-weighted LFU, and the periodicity-prefetching
LRU — on two workloads:

- the CAIDA-like batch-patterned trace (Figure 13's workload), where
  recency-aware policies dominate plain LFU;
- a periodic trace (keys batch on a fixed period with long idle gaps),
  where only the prefetcher can catch batch *starts*.

Expected shapes: on the batchy trace every batch-aware policy beats
LFU at small sizes; on the periodic trace the prefetching cache beats
every demand-only policy whenever the cache is too small to retain keys
across periods.
"""

from __future__ import annotations

from ...cache import (
    BatchWeightedLFU,
    ClockAssistedCache,
    ClockCache,
    LFUCache,
    LRUCache,
    PrefetchingCache,
    simulate,
)
from ...datasets import periodic_stream
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace

POLICIES = ("lfu", "lru", "clock", "bf_clock", "weighted_lfu", "prefetch")


def _build(policy: str, capacity: int, seed: int):
    if policy == "lfu":
        return LFUCache(capacity)
    if policy == "lru":
        return LRUCache(capacity)
    if policy == "clock":
        return ClockCache(capacity)
    if policy == "bf_clock":
        return ClockAssistedCache(capacity, seed=seed)
    if policy == "weighted_lfu":
        return BatchWeightedLFU(capacity, count_window(2 * capacity),
                                sketch_memory=max(64, capacity), seed=seed)
    if policy == "prefetch":
        return PrefetchingCache(capacity, count_window(64),
                                lookahead=500.0, check_interval=8, seed=seed)
    raise ValueError(policy)


def run(quick: bool = False, seed: int = 1) -> ExperimentResult:
    """Run the extended cache-policy comparison."""
    sizes = (64, 512) if quick else (40, 160, 640)
    n_items = 30_000 if quick else 60_000

    result = ExperimentResult(
        title="Figure 13 extended: cache hit rate across all policies",
        columns=["trace", "cache_size"] + [f"{p}_hit" for p in POLICIES],
        notes=[
            "batchy = CAIDA-like (Figure 13 workload); periodic = "
            "fixed-period batches with long idle gaps",
            "expected: batch-aware policies > LFU on batchy at small "
            "sizes; prefetch wins on periodic below the working set",
        ],
    )

    batchy = cached_trace("caida", n_items, 2048, seed)
    periodic = periodic_stream(n_items=n_items, n_keys=500, period=4000.0,
                               batch_size=5, seed=seed)
    warmup = n_items // 5

    for trace_name, stream in (("batchy", batchy), ("periodic", periodic)):
        for capacity in sizes:
            row = {"trace": trace_name, "cache_size": capacity}
            for policy in POLICIES:
                stats = simulate(_build(policy, capacity, seed), stream,
                                 warmup=warmup)
                row[f"{policy}_hit"] = stats.hit_rate
            result.add(**row)
    return result
