"""Shard-scaling: ingestion throughput vs worker count.

Not a paper figure — this is the library's own scaling experiment for
the sharded ingestion engine (:mod:`repro.shard`, the §7 scale-out
story). One synthetic trace is driven through a
:class:`~repro.shard.ShardedSketch` at increasing shard counts; each
run measures end-to-end items/sec (routing + ingestion + the final
merge barrier) and the merged-snapshot latency.

Two routers are measured: ``serial`` isolates the pure routing
overhead (scatter + per-shard sub-batches on one core — expect ~1x,
slightly below), and ``process`` adds real parallelism (one worker
process per shard). Process-router speedups require actual cores:
on a single-CPU host P>1 only adds IPC cost, which the results then
honestly show — interpret ``speedup`` alongside ``cpus``.
"""

from __future__ import annotations

import os
from time import perf_counter

from ...core import ClockBloomFilter
from ...shard import ShardedSketch
from ...timebase import count_window
from ..harness import ExperimentResult, cached_trace

#: Table 3's activeness configuration, reused for comparability.
MEMORY = "8KB"
WINDOW = 4096
S_BITS = 2

DEFAULT_ITEMS = 1_000_000
DEFAULT_SHARDS = (1, 2, 4, 8)

#: Items per insert_many call — large enough to amortise dispatch,
#: small enough that per-shard queues see many commands.
CHUNK = 50_000


def _prototype(seed: int) -> ClockBloomFilter:
    return ClockBloomFilter.from_memory(MEMORY, count_window(WINDOW),
                                        s=S_BITS, seed=seed)


def _drive(sharded: ShardedSketch, keys) -> "tuple[float, float]":
    """Feed the whole trace in chunks; returns (ingest_s, merge_s)."""
    started = perf_counter()
    for lo in range(0, len(keys), CHUNK):
        sharded.insert_many(keys[lo:lo + CHUNK])
    sharded.router.barrier(sharded.now)
    ingest = perf_counter() - started
    started = perf_counter()
    sharded.merged()
    merge = perf_counter() - started
    return ingest, merge


def run(quick: bool = False, seed: int = 1, n_items: int = DEFAULT_ITEMS,
        shard_counts: "tuple[int, ...]" = DEFAULT_SHARDS,
        routers: "tuple[str, ...]" = ("serial", "process"),
        ) -> ExperimentResult:
    """Measure sharded ingestion throughput at each shard count."""
    if quick:
        n_items = 20_000
        shard_counts = (1, 2)
    cpus = os.cpu_count() or 1
    result = ExperimentResult(
        title="Shard scaling: items/sec vs shard count (Clock-BF, 8KB/shard)",
        columns=["router", "shards", "n_items", "ips", "speedup",
                 "merge_ms", "cpus"],
        notes=[
            "end-to-end: shard routing + ingestion + final merge barrier",
            "speedup is relative to the same router at P=1",
            f"host has {cpus} cpu(s); process-router speedup needs "
            "one core per shard",
        ],
    )
    stream = cached_trace("caida", n_items=n_items, window_hint=WINDOW,
                          seed=seed)
    for router in routers:
        base_ips = None
        for shards in shard_counts:
            sharded = ShardedSketch(lambda: _prototype(seed), shards=shards,
                                    router=router)
            try:
                ingest_s, merge_s = _drive(sharded, stream.keys)
            finally:
                sharded.close()
            ips = len(stream.keys) / ingest_s
            if base_ips is None:
                base_ips = ips
            result.add(router=router, shards=shards,
                       n_items=len(stream.keys), ips=ips,
                       speedup=ips / base_ips, merge_ms=merge_s * 1e3,
                       cpus=cpus)
    return result
