"""Ablation A3 — accuracy cost of deferred (unsynchronised) cleaning.

Table 3 claims "cancelling synchronization will barely affect
accuracy". The deferred sweep modes batch cleaning a full circle at a
time, weakening the window guarantee by up to one circle
(``T/(2^s-2)``). This ablation measures exactly what that costs: the
BF+clock activeness disagreement rate and false-negative rate between
exact and deferred cleaning, across clock widths.

Expected shape: disagreement shrinks rapidly with ``s`` (the circle is
``T/(2^s-2)``), and even at ``s = 2`` stays a small fraction; false
negatives appear only for items older than ``T - T/(2^s-2)``.
"""

from __future__ import annotations

import numpy as np

from ...core.activeness import ClockBloomFilter
from ...core.params import cells_for_memory, optimal_k_membership
from ...streams import split_active_inactive
from ...timebase import count_window
from ...units import kb_to_bits
from ..harness import ExperimentResult, cached_trace


def run(quick: bool = False, seed: int = 1,
        window_length: int = 1 << 12,
        memory_kb: float = 32,
        s_values=(2, 3, 4, 6, 8)) -> ExperimentResult:
    """Run the deferred-cleaning ablation."""
    if quick:
        s_values = (2, 8)

    result = ExperimentResult(
        title="Ablation A3: accuracy cost of unsynchronised cleaning",
        columns=["s", "disagreement", "false_negative_rate", "extra_fpr"],
        notes=[
            f"T={window_length}, memory={memory_kb}KB, CAIDA-like; "
            "deferred vs exact cleaning on identical streams",
            "expected: all columns near zero, shrinking with s",
        ],
    )

    window = count_window(window_length)
    stream = cached_trace("caida", 8 * window_length, window_length, seed)
    keys = stream.keys
    times = np.arange(1, len(keys) + 1, dtype=np.float64)
    t_query = float(len(keys))
    active, inactive = split_active_inactive(keys, times, t_query, window)
    queries = np.concatenate([active, inactive])
    bits = kb_to_bits(memory_kb)

    for s in s_values:
        n = cells_for_memory(bits, s)
        k = optimal_k_membership(n, window_length, s)
        exact = ClockBloomFilter(n=n, k=k, s=s, window=window, seed=seed)
        deferred = ClockBloomFilter(n=n, k=k, s=s, window=window, seed=seed,
                                    sweep_mode="deferred")
        exact.insert_many(keys)
        deferred.insert_many(keys)
        exact_ans = exact.contains_many(queries)
        deferred_ans = deferred.contains_many(queries)

        disagreement = float(np.mean(exact_ans != deferred_ans))
        active_answers = deferred.contains_many(active)
        false_negatives = float(np.mean(~active_answers)) if active.size else 0.0
        inactive_exact = exact.contains_many(inactive)
        inactive_deferred = deferred.contains_many(inactive)
        extra_fpr = float(np.mean(inactive_deferred)) - float(
            np.mean(inactive_exact)
        )
        result.add(s=s, disagreement=disagreement,
                   false_negative_rate=false_negatives, extra_fpr=extra_fpr)
    return result
