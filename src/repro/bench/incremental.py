"""Incremental-structure evaluation for the span and size tasks.

Figures 10 and 11 evaluate per-key measurements (time span, batch
size), which have no closed-form snapshot: the sketch state depends on
the order cells expire and refill. These helpers replay a stream into
the real incremental structures and compare per-key answers against the
vectorised ground truth of :func:`repro.bench.harness.last_batches`.
"""

from __future__ import annotations

import numpy as np

from ..streams import Stream
from ..timebase import WindowSpec
from .harness import last_batches

__all__ = ["replay", "timespan_error_rate", "size_are", "active_last_batches"]

#: Cap on per-key queries per configuration (keeps scalar-path query
#: loops bounded; sampling is seeded and unbiased).
DEFAULT_QUERY_SAMPLE = 2000


def replay(sketch, stream: Stream, window: WindowSpec,
           limit: "int | None" = None):
    """Insert a stream prefix into a sketch; returns (keys, times) used."""
    keys = stream.keys if limit is None else stream.keys[:limit]
    if window.is_count_based:
        sketch.insert_many(keys)
        times = np.arange(1, len(keys) + 1, dtype=np.float64)
    else:
        times = stream.times if limit is None else stream.times[:limit]
        sketch.insert_many(keys, times)
    return keys, times


def active_last_batches(keys: np.ndarray, times: np.ndarray, t_query: float,
                        window: WindowSpec):
    """Ground truth for per-key queries: each active key's last batch.

    Returns ``(keys, starts, sizes)`` restricted to batches active at
    ``t_query``.
    """
    bkeys, starts, ends, sizes = last_batches(keys, times, window)
    active = (t_query - ends) < window.length
    return bkeys[active], starts[active], sizes[active]


def _sample(rng: np.random.Generator, size: int, cap: int) -> np.ndarray:
    if size <= cap:
        return np.arange(size)
    return rng.choice(size, size=cap, replace=False)


def timespan_error_rate(sketch, stream: Stream, window: WindowSpec,
                        limit: "int | None" = None,
                        sample: int = DEFAULT_QUERY_SAMPLE,
                        seed: int = 0) -> float:
    """Replay a stream and measure the span error rate (§6.4's metric).

    Queries every (sampled) active batch at the prefix end; an answer
    is an error when the batch is reported inactive or its span differs
    from the truth. Exact comparison is sound because the sketch either
    answers exactly or overestimates.
    """
    keys, times = replay(sketch, stream, window, limit)
    t_query = float(times[-1])
    qkeys, starts, _sizes = active_last_batches(keys, times, t_query, window)
    rng = np.random.default_rng(seed)
    picked = _sample(rng, qkeys.size, sample)
    errors = 0
    for i in picked:
        result = sketch.query(int(qkeys[i]))
        true_span = t_query - starts[i]
        if not result.active or abs(result.span - true_span) > 1e-9:
            errors += 1
    return errors / max(len(picked), 1)


def size_are(sketch, stream: Stream, window: WindowSpec,
             limit: "int | None" = None,
             sample: int = DEFAULT_QUERY_SAMPLE,
             seed: int = 0) -> float:
    """Replay a stream and measure batch-size ARE (§6.5's metric)."""
    keys, times = replay(sketch, stream, window, limit)
    t_query = float(times[-1])
    qkeys, _starts, sizes = active_last_batches(keys, times, t_query, window)
    rng = np.random.default_rng(seed)
    picked = _sample(rng, qkeys.size, sample)
    estimates = sketch.query_many(qkeys[picked])
    truth = sizes[picked].astype(np.float64)
    return float(np.mean(np.abs(estimates - truth) / truth))
