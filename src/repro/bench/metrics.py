"""Evaluation metrics, exactly as the paper's §6.1 defines them.

- FPR: queried batches are all truly inactive, so every positive answer
  is false; FPR = positives / queries.
- RE: ``|f̂ - f| / f`` for a single aggregate measurement.
- ARE: mean of per-item relative errors over a query set Ψ.
- Throughput: million operations per second (Mops).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "false_positive_rate",
    "relative_error",
    "average_relative_error",
    "error_rate",
    "ThroughputResult",
    "measure_throughput",
]


def false_positive_rate(positives) -> float:
    """Fraction of queries answered positive (queries are all-negative).

    ``positives`` is a boolean array of per-query answers.
    """
    positives = np.asarray(positives, dtype=bool)
    if positives.size == 0:
        raise ConfigurationError("FPR needs at least one query")
    return float(np.count_nonzero(positives)) / positives.size


def relative_error(true_value: float, estimate: float) -> float:
    """``|estimate - true| / true`` for one aggregate measurement."""
    if true_value == 0:
        raise ConfigurationError("relative error undefined for true value 0")
    return abs(estimate - true_value) / abs(true_value)


def average_relative_error(true_values, estimates) -> float:
    """ARE over a query set: mean of per-item relative errors.

    Items with true value 0 are excluded (they cannot contribute a
    relative error); an all-zero truth raises.
    """
    true_values = np.asarray(true_values, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    if true_values.shape != estimates.shape:
        raise ConfigurationError("truth and estimates must align")
    mask = true_values != 0
    if not np.any(mask):
        raise ConfigurationError("ARE needs at least one non-zero truth")
    errors = np.abs(estimates[mask] - true_values[mask]) / true_values[mask]
    return float(np.mean(errors))


def error_rate(correct) -> float:
    """Fraction of queries answered incorrectly (for the span task)."""
    correct = np.asarray(correct, dtype=bool)
    if correct.size == 0:
        raise ConfigurationError("error rate needs at least one query")
    return 1.0 - float(np.count_nonzero(correct)) / correct.size


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a throughput measurement."""

    operations: int
    seconds: float

    @property
    def mops(self) -> float:
        """Million operations per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.operations / self.seconds / 1e6

    def __str__(self) -> str:
        return f"{self.mops:.4f} Mops ({self.operations} ops in {self.seconds:.3f}s)"


def measure_throughput(operation, operations: int) -> ThroughputResult:
    """Time ``operation()`` (which performs ``operations`` ops) once.

    The paper repeats 10x and averages; callers control repetition.
    """
    start = time.perf_counter()
    operation()
    elapsed = time.perf_counter() - start
    return ThroughputResult(operations=operations, seconds=elapsed)
