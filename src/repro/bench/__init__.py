"""Experiment harness reproducing the paper's evaluation (§6).

- :mod:`repro.bench.metrics` — FPR, RE, ARE, and throughput metrics
  exactly as §6.1 defines them.
- :mod:`repro.bench.harness` — shared machinery: trace caching, query
  set construction, algorithm drivers, and table rendering.
- :mod:`repro.bench.experiments` — one module per paper figure/table;
  each exposes a ``run(...)`` returning an
  :class:`~repro.bench.harness.ExperimentResult`.
- :mod:`repro.bench.cli` — the ``repro-bench`` entry point:
  ``repro-bench fig6`` prints Figure 6's series.
"""

from .metrics import (
    average_relative_error,
    false_positive_rate,
    relative_error,
    ThroughputResult,
    measure_throughput,
)
from .harness import ExperimentResult, format_table

__all__ = [
    "false_positive_rate",
    "relative_error",
    "average_relative_error",
    "ThroughputResult",
    "measure_throughput",
    "ExperimentResult",
    "format_table",
]
