"""``repro-bench`` — run paper experiments from the command line.

Examples::

    repro-bench fig6            # Figure 6's series, paper parameters
    repro-bench fig9 --quick    # reduced parameter grid
    repro-bench all --quick     # everything, quickly
"""

from __future__ import annotations

import argparse
import sys
import time


def build_parser() -> argparse.ArgumentParser:
    from .experiments import EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the Clock-sketch paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to reproduce",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced parameter grid for a fast run",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="workload seed (default 1)",
    )
    parser.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the results as a Markdown report",
    )
    parser.add_argument(
        "--csv-dir", metavar="DIR", default=None,
        help="also write each experiment's rows as <DIR>/<name>.csv",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="repeat over N workload seeds and report mean +/- std",
    )
    parser.add_argument(
        "--json-dir", metavar="DIR", default=None,
        help="also write each experiment's rows as <DIR>/BENCH_<name>.json "
             "(perf-trajectory tracking)",
    )
    parser.add_argument(
        "--scalar", action="store_true",
        help="drive throughput experiments through the per-item insert "
             "loop instead of the batch engine (hot-path regression runs)",
    )
    parser.add_argument(
        "--kernel", choices=("auto", "numpy", "numba"), default=None,
        help="kernel backend for the numeric hot path (default: the "
             "REPRO_KERNEL environment variable, else auto); 'numba' "
             "falls back to numpy with a warning when numba is absent",
    )
    return parser


def _run_kwargs(runner, args) -> dict:
    """Build the kwargs a runner accepts from the parsed CLI options.

    Only the throughput experiments take ``scalar``; passing it to the
    accuracy experiments would be a TypeError, so filter by signature.
    """
    import inspect

    kwargs = {"quick": args.quick}
    if args.scalar and "scalar" in inspect.signature(runner).parameters:
        kwargs["scalar"] = True
    return kwargs


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    from .experiments import EXPERIMENTS

    args = build_parser().parse_args(argv)
    from ..kernels import kernel_info, set_default_backend

    if args.kernel is not None:
        set_default_backend(args.kernel)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results = {}
    for name in names:
        start = time.perf_counter()
        kwargs = _run_kwargs(EXPERIMENTS[name], args)
        if args.seeds > 1:
            from .report import aggregate_results

            runs = [
                EXPERIMENTS[name](seed=args.seed + i, **kwargs)
                for i in range(args.seeds)
            ]
            result = aggregate_results(runs)
        else:
            result = EXPERIMENTS[name](seed=args.seed, **kwargs)
        elapsed = time.perf_counter() - start
        results[name] = result
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
    if args.report:
        from .report import write_report

        write_report(results, args.report)
        print(f"report written to {args.report}")
    if args.csv_dir:
        import os

        os.makedirs(args.csv_dir, exist_ok=True)
        for name, result in results.items():
            result.to_csv(os.path.join(args.csv_dir, f"{name}.csv"))
        print(f"CSV series written to {args.csv_dir}/")
    if args.json_dir:
        import json
        import os

        os.makedirs(args.json_dir, exist_ok=True)
        for name, result in results.items():
            payload = {
                "title": result.title,
                "columns": list(result.columns),
                "rows": [{k: row[k] for k in result.columns}
                         for row in result.rows],
                "kernel": kernel_info(),
            }
            path = os.path.join(args.json_dir, f"BENCH_{name}.json")
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=2, default=float)
                fh.write("\n")
        print(f"JSON series written to {args.json_dir}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
