"""Markdown report generation and multi-seed aggregation.

``repro-bench all --report out.md`` (or :func:`write_report` directly)
runs experiments and emits one self-contained Markdown document with a
table per figure — the machine-generated companion to EXPERIMENTS.md.
``--seeds N`` repeats each experiment over N workloads and
:func:`aggregate_results` merges them (mean of every numeric column,
plus a per-row std column for the measurement columns).
"""

from __future__ import annotations

import math
import time

from .harness import ExperimentResult

__all__ = ["to_markdown", "write_report", "aggregate_results"]

#: Columns that identify a row rather than measure something; they must
#: agree across seeds and are never averaged.
_ID_COLUMNS = frozenset({
    "panel", "dataset", "mode", "memory_kb", "s", "k", "window",
    "query_at_windows", "algorithm", "variant", "metric", "trace",
    "cache_size", "population", "queries", "task", "cells",
})


def aggregate_results(results: "list[ExperimentResult]") -> ExperimentResult:
    """Merge same-shaped results from different seeds.

    Rows are matched positionally (every seed runs the identical
    parameter grid); identity columns are checked for agreement,
    numeric measurement columns become their across-seed mean, and one
    ``<col>_std`` column is added per measurement column.
    """
    if not results:
        raise ValueError("nothing to aggregate")
    if len(results) == 1:
        return results[0]
    first = results[0]
    for other in results[1:]:
        if len(other.rows) != len(first.rows):
            raise ValueError("seed runs produced different grids")

    measure_columns = [c for c in first.columns if c not in _ID_COLUMNS]
    columns = list(first.columns)
    for col in measure_columns:
        columns.append(f"{col}_std")

    merged = ExperimentResult(
        title=f"{first.title} (mean of {len(results)} seeds)",
        columns=columns,
        notes=list(first.notes),
    )
    for index, row in enumerate(first.rows):
        out = {c: row.get(c) for c in first.columns if c in _ID_COLUMNS}
        for col in measure_columns:
            samples = [r.rows[index].get(col) for r in results]
            numeric = [s for s in samples if isinstance(s, (int, float))]
            if not numeric:
                out[col] = None
                out[f"{col}_std"] = None
                continue
            mean = sum(numeric) / len(numeric)
            var = sum((s - mean) ** 2 for s in numeric) / len(numeric)
            out[col] = mean
            out[f"{col}_std"] = math.sqrt(var)
        merged.add(**out)
    return merged


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def to_markdown(result: ExperimentResult) -> str:
    """Render one experiment as a Markdown section with a table."""
    lines = [f"## {result.title}", ""]
    header = "| " + " | ".join(result.columns) + " |"
    rule = "|" + "|".join("---" for _ in result.columns) + "|"
    lines.append(header)
    lines.append(rule)
    for row in result.rows:
        cells = [_format_cell(row.get(col)) for col in result.columns]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    for note in result.notes:
        lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)


def write_report(results: "dict[str, ExperimentResult]", path,
                 title: str = "Clock-Sketch reproduction report") -> None:
    """Write a multi-experiment Markdown report to ``path``.

    ``results`` maps experiment ids (``fig6`` ...) to their results, in
    the order they should appear.
    """
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    parts = [f"# {title}", "", f"Generated {stamp}.", ""]
    for name, result in results.items():
        parts.append(f"<!-- experiment: {name} -->")
        parts.append(to_markdown(result))
    with open(path, "w") as handle:
        handle.write("\n".join(parts))
