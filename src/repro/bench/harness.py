"""Shared experiment machinery.

Everything the per-figure experiment modules have in common lives here:

- :class:`ExperimentResult` / :func:`format_table` — uniform result
  container and plain-text rendering of paper-style series;
- a process-wide trace cache (synthesizing a 10^6-item trace once per
  (dataset, size, window) instead of once per data point);
- query-set construction for the FPR experiments;
- algorithm drivers: one call evaluates a named algorithm on a stream
  under a memory budget, via the vectorised snapshot paths for
  activeness/cardinality and the incremental structures for time
  span/size;
- vectorised ground-truth batch extraction (:func:`last_batches`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis import optimal_s_cardinality
from ..baselines import (
    snapshot_cvs_estimate,
    snapshot_ideal_membership,
    snapshot_swamp_distinct,
    snapshot_swamp_ismember,
    snapshot_timestamp_membership,
    snapshot_tsv_estimate,
)
from ..baselines.swamp import TABLE_OVERHEAD
from ..baselines.tbf import DEFAULT_COUNTER_BITS as TBF_BITS
from ..baselines.tbf import DEFAULT_K as TBF_K
from ..core.activeness import snapshot_membership
from ..core.cardinality import snapshot_cardinality
from ..core.params import cells_for_memory, optimal_k_membership
from ..datasets import get_dataset
from ..errors import ConfigurationError
from ..obs import runtime as _obs
from ..obs.names import BENCH_STAGE_SECONDS
from ..streams import Stream, split_active_inactive
from ..timebase import WindowSpec

__all__ = [
    "ExperimentResult",
    "format_table",
    "cached_trace",
    "drive_inserts",
    "membership_query_keys",
    "activeness_fpr",
    "cardinality_estimate",
    "true_cardinality",
    "last_batches",
    "ACTIVENESS_ALGORITHMS",
    "CARDINALITY_ALGORITHMS",
]

#: Default number of synthetic never-seen keys added to FPR query sets
#: so small rates are resolvable (see EXPERIMENTS.md, methodology).
DEFAULT_UNSEEN_QUERIES = 100_000

#: Offset guaranteeing synthetic query keys collide with no real key.
_UNSEEN_KEY_BASE = 10**15

ACTIVENESS_ALGORITHMS = ("bf_clock", "swamp", "tobf", "tbf", "ideal")
CARDINALITY_ALGORITHMS = ("bm_clock", "cvs", "swamp", "tsv")


@dataclass
class ExperimentResult:
    """The outcome of one experiment: titled, tabular, renderable."""

    title: str
    columns: "list[str]"
    rows: "list[dict]" = field(default_factory=list)
    notes: "list[str]" = field(default_factory=list)
    #: Free-form side data (e.g. an obs metrics snapshot) that riders
    #: like the benchmark artifact upload can carry without touching
    #: the tabular schema.
    extras: dict = field(default_factory=dict)

    def add(self, **row) -> None:
        """Append one result row."""
        self.rows.append(row)

    def render(self) -> str:
        """Plain-text table in the paper's row/series layout."""
        lines = [self.title, "=" * len(self.title)]
        lines.append(format_table(self.rows, self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def series(self, key_column: str, value_column: str) -> dict:
        """Collapse rows into ``{key: value}`` for programmatic checks."""
        return {row[key_column]: row[value_column] for row in self.rows}

    def to_csv(self, path) -> None:
        """Write the rows as CSV (for plotting outside the library).

        Creates missing parent directories, so a fresh results path
        (``results/run1/fig5.csv``) works without preparation.
        """
        import csv
        import os

        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.columns,
                                    extrasaction="ignore", restval="")
            writer.writeheader()
            for row in self.rows:
                writer.writerow({
                    col: ("" if row.get(col) is None else row.get(col))
                    for col in self.columns
                })


def _format_cell(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: "list[dict]", columns: "list[str]") -> str:
    """Render rows as an aligned plain-text table."""
    header = list(columns)
    body = [[_format_cell(row.get(col)) for col in header] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in body)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trace cache
# ----------------------------------------------------------------------

_TRACE_CACHE: "dict[tuple, Stream]" = {}


@_obs.timed(BENCH_STAGE_SECONDS, {"stage": "trace"})
def cached_trace(dataset: str, n_items: int, window_hint: float,
                 seed: int = 1) -> Stream:
    """Synthesize (once) and cache a dataset trace."""
    key = (dataset, n_items, float(window_hint), seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = get_dataset(
            dataset, n_items=n_items, window_hint=window_hint, seed=seed
        )
    return _TRACE_CACHE[key]


def effective_times(stream: Stream, window: WindowSpec) -> np.ndarray:
    """Arrival times of a stream under the window's kind."""
    return stream.effective_times(window.is_count_based)


@_obs.timed(BENCH_STAGE_SECONDS, {"stage": "inserts"})
def drive_inserts(sketch, keys, times=None, scalar: bool = False) -> None:
    """Feed a key stream into a sketch through either ingestion path.

    ``scalar=False`` (default) drives the batch engine via
    ``insert_many`` — the fast path every experiment uses.
    ``scalar=True`` replays the per-item ``insert`` loop instead: the
    paper's single-thread hot path, kept measurable so throughput
    experiments can report both sides of the batch speedup. Both paths
    leave exact-mode sketches in bit-identical state.
    """
    if not scalar:
        if times is None:
            sketch.insert_many(keys)
        else:
            sketch.insert_many(keys, times)
    elif times is None:
        for key in keys:
            sketch.insert(key)
    else:
        for key, t in zip(keys, times):
            sketch.insert(key, float(t))


# ----------------------------------------------------------------------
# FPR query sets
# ----------------------------------------------------------------------

def membership_query_keys(keys: np.ndarray, times: np.ndarray, t_query: float,
                          window: WindowSpec,
                          extra_unseen: int = DEFAULT_UNSEEN_QUERIES):
    """Build the all-negative query set for an FPR measurement.

    Returns ``(query_keys, n_seen_inactive)``: every key that was seen
    but is inactive at ``t_query`` (the paper's query population, which
    exercises the error window) plus ``extra_unseen`` synthetic
    never-seen keys that stabilise small rates.
    """
    _active, inactive = split_active_inactive(keys, times, t_query, window)
    unseen = _UNSEEN_KEY_BASE + np.arange(extra_unseen, dtype=np.int64)
    return np.concatenate([inactive, unseen]), int(inactive.size)


# ----------------------------------------------------------------------
# Activeness drivers
# ----------------------------------------------------------------------

def _snapshot_times(times: np.ndarray, window: WindowSpec):
    """Snapshot functions take None for count-based streams."""
    return None if window.is_count_based else times


@_obs.timed(BENCH_STAGE_SECONDS, {"stage": "activeness_fpr"})
def activeness_fpr(algorithm: str, stream: Stream, window: WindowSpec,
                   memory_bits: int, t_query: "float | None" = None,
                   s: int = 2, k: "int | None" = None, seed: int = 0,
                   extra_unseen: int = DEFAULT_UNSEEN_QUERIES) -> "float | None":
    """Measured FPR of one activeness algorithm on one configuration.

    Returns None when the algorithm cannot be built at this budget
    (SWAMP below its floor). ``t_query`` defaults to the stream end.
    """
    keys = stream.keys
    times = effective_times(stream, window)
    if t_query is None:
        t_query = float(times[-1])
    else:
        limit = int(np.searchsorted(times, t_query, side="right"))
        keys = keys[:limit]
        times = times[:limit]
    query_keys, _seen = membership_query_keys(
        keys, times, t_query, window, extra_unseen
    )
    snap_times = _snapshot_times(times, window)

    if algorithm == "bf_clock":
        n = cells_for_memory(memory_bits, s)
        k_eff = k if k is not None else optimal_k_membership(n, window.length, s)
        positives = snapshot_membership(
            keys, snap_times, query_keys, t_query, n=n, k=k_eff, s=s,
            window=window, seed=seed,
        )
    elif algorithm == "tobf":
        n = cells_for_memory(memory_bits, 64)
        positives = snapshot_timestamp_membership(
            keys, snap_times, query_keys, t_query, n=n, k=(k or 4),
            window=window, seed=seed,
        )
    elif algorithm == "tbf":
        n = cells_for_memory(memory_bits, TBF_BITS)
        positives = snapshot_timestamp_membership(
            keys, snap_times, query_keys, t_query, n=n, k=(k or TBF_K),
            window=window, seed=seed,
        )
    elif algorithm == "swamp":
        w = int(window.length)
        f = int(memory_bits / (w * TABLE_OVERHEAD))
        if f < 1:
            return None
        positives = snapshot_swamp_ismember(
            keys, query_keys, window_items=w, fingerprint_bits=min(f, 64),
            seed=seed,
        )
    elif algorithm == "ideal":
        active, _inactive = split_active_inactive(keys, times, t_query, window)
        n = max(1, memory_bits)
        k_eff = k if k is not None else optimal_k_membership(n, window.length, s=30)
        positives = snapshot_ideal_membership(
            active, query_keys, n=n, k=k_eff, seed=seed,
        )
    else:
        raise ConfigurationError(f"unknown activeness algorithm {algorithm!r}")

    return float(np.count_nonzero(positives)) / len(query_keys)


# ----------------------------------------------------------------------
# Cardinality drivers
# ----------------------------------------------------------------------

def true_cardinality(stream: Stream, window: WindowSpec,
                     t_query: "float | None" = None) -> int:
    """Exact number of active item batches at ``t_query``."""
    times = effective_times(stream, window)
    keys = stream.keys
    if t_query is None:
        t_query = float(times[-1])
    else:
        limit = int(np.searchsorted(times, t_query, side="right"))
        keys, times = keys[:limit], times[:limit]
    active, _ = split_active_inactive(keys, times, t_query, window)
    return int(active.size)


@_obs.timed(BENCH_STAGE_SECONDS, {"stage": "cardinality_estimate"})
def cardinality_estimate(algorithm: str, stream: Stream, window: WindowSpec,
                         memory_bits: int, t_query: "float | None" = None,
                         s: "int | None" = None,
                         seed: int = 0) -> "float | None":
    """Estimated active-batch cardinality of one algorithm.

    Returns None when the algorithm cannot be built at this budget.
    ``s`` (BM+clock only) defaults to the §5.2 optimum for the budget.
    """
    keys = stream.keys
    times = effective_times(stream, window)
    if t_query is None:
        t_query = float(times[-1])
    else:
        limit = int(np.searchsorted(times, t_query, side="right"))
        keys, times = keys[:limit], times[:limit]
    snap_times = _snapshot_times(times, window)

    if algorithm == "bm_clock":
        s_eff = s if s is not None else optimal_s_cardinality(memory_bits)
        n = cells_for_memory(memory_bits, s_eff)
        return snapshot_cardinality(
            keys, snap_times, t_query, n=n, s=s_eff, window=window, seed=seed
        ).value
    if algorithm == "tsv":
        n = cells_for_memory(memory_bits, 64)
        return snapshot_tsv_estimate(
            keys, snap_times, t_query, n=n, window=window, seed=seed
        ).value
    if algorithm == "cvs":
        n = cells_for_memory(memory_bits, 4)
        return snapshot_cvs_estimate(
            keys, snap_times, t_query, n=n, window=window, seed=seed
        ).value
    if algorithm == "swamp":
        w = int(window.length)
        f = int(memory_bits / (w * TABLE_OVERHEAD))
        if f < 1:
            return None
        return snapshot_swamp_distinct(
            keys, window_items=w, fingerprint_bits=min(f, 64), seed=seed
        )
    raise ConfigurationError(f"unknown cardinality algorithm {algorithm!r}")


# ----------------------------------------------------------------------
# Ground-truth batches (for the span and size tasks)
# ----------------------------------------------------------------------

def last_batches(keys: np.ndarray, times: np.ndarray, window: WindowSpec):
    """Each key's most recent batch, vectorised.

    Returns aligned arrays ``(key, start, end, size)`` — one row per
    distinct key, describing the batch containing the key's last
    occurrence (under the library's ``gap < T`` convention).
    """
    keys = np.asarray(keys)
    times = np.asarray(times, dtype=np.float64)
    order = np.argsort(keys, kind="stable")
    sk, st = keys[order], times[order]
    if sk.size == 0:
        empty = np.array([])
        return empty.astype(np.int64), empty, empty, empty.astype(np.int64)

    new_key = np.empty(sk.size, dtype=bool)
    new_key[0] = True
    new_key[1:] = sk[1:] != sk[:-1]
    gap_break = np.empty(sk.size, dtype=bool)
    gap_break[0] = True
    gap_break[1:] = (st[1:] - st[:-1]) >= window.length
    new_batch = new_key | gap_break
    batch_id = np.cumsum(new_batch) - 1

    n_batches = batch_id[-1] + 1
    starts = st[new_batch]
    ends = np.zeros(n_batches)
    np.maximum.at(ends, batch_id, st)
    sizes = np.bincount(batch_id, minlength=n_batches)
    batch_keys = sk[new_batch]

    # The last batch of each key is the last batch_id in its run.
    last_of_key = np.flatnonzero(new_key)  # first index of each key-run
    run_ends = np.append(last_of_key[1:], sk.size) - 1
    last_batch_ids = batch_id[run_ends]
    return (
        sk[last_of_key].astype(np.int64),
        starts[last_batch_ids],
        ends[last_batch_ids],
        sizes[last_batch_ids].astype(np.int64),
    )
