"""Data stream model, batch semantics, and exact ground truth.

The sketches estimate; this subpackage computes the truth they are
judged against:

- :mod:`repro.streams.model` — the :class:`Stream` container used by
  datasets and experiments (keys plus optional timestamps).
- :mod:`repro.streams.groundtruth` — :class:`BatchTracker`, an exact
  online tracker of batch activeness/cardinality/span/size, plus
  vectorised helpers for whole-stream evaluation.
- :mod:`repro.streams.batches` — offline batch segmentation of a
  finished stream into explicit ``Batch`` records.
"""

from .model import Stream
from .groundtruth import (
    BatchTracker,
    BatchState,
    last_occurrences,
    split_active_inactive,
)
from .batches import Batch, segment_batches
from .statistics import (
    BatchStatistics,
    activity_series,
    describe,
    popularity_skew,
)
from .topk import SpaceSaving, TopEntry

__all__ = [
    "SpaceSaving",
    "TopEntry",
    "BatchStatistics",
    "describe",
    "popularity_skew",
    "activity_series",
    "Stream",
    "BatchTracker",
    "BatchState",
    "last_occurrences",
    "split_active_inactive",
    "Batch",
    "segment_batches",
]
