"""Descriptive statistics of streams and their batch structure.

Used to validate that synthetic traces reproduce the properties the
paper's datasets are chosen for (heavy-tailed popularity, real batch
structure) and by the trace-analysis example. All statistics are
computed vectorised from one batch segmentation pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timebase import WindowSpec
from .batches import segment_batches
from .model import Stream

__all__ = ["BatchStatistics", "describe", "popularity_skew",
           "activity_series"]


@dataclass(frozen=True)
class BatchStatistics:
    """Summary of a stream's item-batch structure under a window.

    All ``*_mean``/``*_p50``/``*_p90`` fields describe the population
    of batches (not items).
    """

    n_items: int
    n_keys: int
    n_batches: int
    batches_per_key_mean: float
    size_mean: float
    size_p50: float
    size_p90: float
    span_mean: float
    span_p50: float
    span_p90: float
    singleton_fraction: float

    def render(self) -> str:
        """Human-readable multi-line summary."""
        return "\n".join([
            f"items            {self.n_items}",
            f"distinct keys    {self.n_keys}",
            f"batches          {self.n_batches} "
            f"({self.batches_per_key_mean:.2f} per key)",
            f"batch size       mean {self.size_mean:.2f}  "
            f"p50 {self.size_p50:.0f}  p90 {self.size_p90:.0f}",
            f"batch span       mean {self.span_mean:.2f}  "
            f"p50 {self.span_p50:.2f}  p90 {self.span_p90:.2f}",
            f"singleton share  {self.singleton_fraction:.1%}",
        ])


def describe(stream: Stream, window: WindowSpec) -> BatchStatistics:
    """Compute batch statistics of a stream under a window."""
    batches = segment_batches(stream, window)
    sizes = np.array([b.size for b in batches], dtype=np.float64)
    spans = np.array([b.span for b in batches], dtype=np.float64)
    keys = {b.key for b in batches}
    return BatchStatistics(
        n_items=len(stream),
        n_keys=len(keys),
        n_batches=len(batches),
        batches_per_key_mean=len(batches) / max(len(keys), 1),
        size_mean=float(sizes.mean()),
        size_p50=float(np.percentile(sizes, 50)),
        size_p90=float(np.percentile(sizes, 90)),
        span_mean=float(spans.mean()),
        span_p50=float(np.percentile(spans, 50)),
        span_p90=float(np.percentile(spans, 90)),
        singleton_fraction=float(np.mean(sizes == 1)),
    )


def popularity_skew(stream: Stream, top_fraction: float = 0.1) -> float:
    """Share of all items held by the most popular ``top_fraction`` keys.

    ~``top_fraction`` for uniform streams, approaching 1.0 for heavy
    tails — a scale-free skew measure for comparing traces.
    """
    counts = np.sort(np.bincount(stream.keys - stream.keys.min()))[::-1]
    counts = counts[counts > 0]
    top = max(1, int(np.ceil(len(counts) * top_fraction)))
    return float(counts[:top].sum() / counts.sum())


def activity_series(stream: Stream, window: WindowSpec,
                    points: int = 20) -> "tuple[np.ndarray, np.ndarray]":
    """Active-batch cardinality sampled along the stream.

    Returns ``(times, active_counts)`` at ``points`` evenly spaced
    instants — the stationarity check behind the Figure 7 discussion.
    """
    from .groundtruth import split_active_inactive

    times = stream.effective_times(window.is_count_based)
    sample_times = np.linspace(
        times[0] + window.length, times[-1], num=points
    )
    counts = []
    for t in sample_times:
        limit = int(np.searchsorted(times, t, side="right"))
        active, _ = split_active_inactive(
            stream.keys[:limit], times[:limit], float(t), window
        )
        counts.append(active.size)
    return sample_times, np.asarray(counts)
