"""Exact ground truth for item batch measurements.

:class:`BatchTracker` maintains, per key, the state of the *current*
batch (start time, last occurrence, size) and answers the four
measurement questions exactly. The library-wide batch convention is:

- an occurrence at ``t`` **extends** the current batch iff
  ``t - last < T`` (otherwise it starts a new batch), and
- a batch is **active** at ``now`` iff ``now - last < T``.

The two conditions use the same strict inequality, so a batch is active
precisely while a new occurrence would still extend it. This matches
the clock guarantee: cells written at ``t`` provably survive every
query with ``now - t < T``.

The module also provides vectorised whole-stream helpers used by the
accuracy experiments, which must classify hundreds of thousands of keys
as active/inactive at a query instant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TimeError
from ..timebase import WindowSpec


@dataclass
class BatchState:
    """Per-key state of the current (most recent) batch."""

    start: float
    last: float
    size: int
    batches_seen: int


class BatchTracker:
    """Exact online tracker of item batches under a window ``T``.

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> gt = BatchTracker(count_window(3))
    >>> for key in ["a", "a", "b", "a"]:
    ...     gt.observe(key)
    >>> gt.is_active("a")
    True
    >>> gt.size("a")
    3
    """

    def __init__(self, window: WindowSpec):
        self.window = window
        self._states: "dict[object, BatchState]" = {}
        self._items = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Latest stream time observed."""
        return self._now

    def _observe_time(self, t) -> float:
        if self.window.is_count_based:
            if t is not None:
                raise TimeError("count-based tracker takes no timestamps")
            self._items += 1
            self._now = float(self._items)
        else:
            if t is None:
                raise TimeError("time-based tracker requires timestamps")
            if t < self._now:
                raise TimeError(f"time moved backwards: {t} < {self._now}")
            self._items += 1
            self._now = float(t)
        return self._now

    def observe(self, key, t=None) -> None:
        """Record an occurrence of ``key``."""
        now = self._observe_time(t)
        state = self._states.get(key)
        if state is None or not self.window.contains(state.last, now):
            batches = 1 if state is None else state.batches_seen + 1
            self._states[key] = BatchState(
                start=now, last=now, size=1, batches_seen=batches
            )
        else:
            state.last = now
            state.size += 1

    def observe_stream(self, stream) -> None:
        """Feed a whole :class:`~repro.streams.model.Stream`."""
        if self.window.is_count_based:
            for key in stream.keys:
                self.observe(int(key))
        else:
            for key, t in zip(stream.keys, stream.times):
                self.observe(int(key), float(t))

    # ------------------------------------------------------------------
    # Queries (all take an optional explicit "now")
    # ------------------------------------------------------------------

    def _resolve_now(self, now) -> float:
        return self._now if now is None else float(now)

    def is_active(self, key, now=None) -> bool:
        """Is the key's batch active at ``now``?"""
        state = self._states.get(key)
        if state is None:
            return False
        return self.window.contains(state.last, self._resolve_now(now))

    def span(self, key, now=None) -> "float | None":
        """Time since the batch started, or None when inactive."""
        state = self._states.get(key)
        now = self._resolve_now(now)
        if state is None or not self.window.contains(state.last, now):
            return None
        return now - state.start

    def size(self, key, now=None) -> "int | None":
        """Items in the active batch, or None when inactive."""
        state = self._states.get(key)
        if state is None or not self.window.contains(state.last, self._resolve_now(now)):
            return None
        return state.size

    def active_cardinality(self, now=None) -> int:
        """Number of active item batches (distinct active keys)."""
        now = self._resolve_now(now)
        contains = self.window.contains
        return sum(1 for state in self._states.values() if contains(state.last, now))

    def active_keys(self, now=None) -> list:
        """All keys whose batch is active at ``now``."""
        now = self._resolve_now(now)
        contains = self.window.contains
        return [k for k, st in self._states.items() if contains(st.last, now)]

    def inactive_seen_keys(self, now=None) -> list:
        """Keys seen before whose batches are now inactive.

        This is the paper's FPR query set: querying these, every
        positive answer is a false positive.
        """
        now = self._resolve_now(now)
        contains = self.window.contains
        return [k for k, st in self._states.items() if not contains(st.last, now)]

    def partition_keys(self, now=None, residual: float = 0.0):
        """Three-way key split: ``(active, residual, stale)`` at ``now``.

        ``active`` keys have a live batch (``now - last < T``).
        ``residual`` keys expired within the trailing ``residual``
        stretch (``T <= now - last < T + residual``) — with ``residual``
        set to the clock's error-window length ``T/(2^s - 2)``, these
        are the keys a correct sketch may *legitimately* still report
        active. ``stale`` keys expired before that: every positive
        answer on them is a genuine false positive. The accuracy
        auditor measures FP rates on the stale set only.
        """
        now = self._resolve_now(now)
        length = self.window.length
        active: list = []
        residual_keys: list = []
        stale: list = []
        for key, state in self._states.items():
            age = now - state.last
            if age < length:
                active.append(key)
            elif age < length + residual:
                residual_keys.append(key)
            else:
                stale.append(key)
        return active, residual_keys, stale

    def state(self, key) -> "BatchState | None":
        """The raw per-key batch state (None if never seen)."""
        return self._states.get(key)

    def keys_seen(self) -> int:
        """Number of distinct keys ever observed."""
        return len(self._states)


# ----------------------------------------------------------------------
# Vectorised whole-stream helpers
# ----------------------------------------------------------------------

def last_occurrences(keys: np.ndarray, times: np.ndarray):
    """Last occurrence time of every distinct key in a finished stream.

    Returns ``(unique_keys, last_times)`` aligned arrays.
    """
    keys = np.asarray(keys)
    times = np.asarray(times)
    unique, inverse = np.unique(keys, return_inverse=True)
    last = np.full(unique.shape, -np.inf, dtype=np.float64)
    np.maximum.at(last, inverse, times.astype(np.float64))
    return unique, last


def split_active_inactive(keys: np.ndarray, times: np.ndarray, now: float,
                          window: WindowSpec):
    """Partition a stream's distinct keys by activeness at ``now``.

    Returns ``(active_keys, inactive_keys)`` — the exact ground truth
    the FPR experiments need, computed vectorised.
    """
    unique, last = last_occurrences(keys, times)
    active_mask = (now - last) < window.length
    return unique[active_mask], unique[~active_mask]
