"""Offline batch segmentation of a finished stream.

Applications (burst detection, APT detection, ad analytics) reason
about whole batches: their start, end, span, and size. This module
segments a completed :class:`~repro.streams.model.Stream` into explicit
:class:`Batch` records using the same gap convention as the online
ground truth (``gap < T`` extends a batch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timebase import WindowSpec
from .model import Stream


@dataclass(frozen=True)
class Batch:
    """One item batch of a single key.

    Attributes
    ----------
    key:
        The item identifier.
    start / end:
        Arrival times of the first and last item of the batch.
    size:
        Number of items in the batch.
    """

    key: int
    start: float
    end: float
    size: int

    @property
    def span(self) -> float:
        """Time between the batch's first and last item."""
        return self.end - self.start

    @property
    def density(self) -> float:
        """Items per unit time; the burst-detection score (§1.1 case 2).

        A single-item batch has infinite density by this definition, so
        it is floored by treating the span as at least one time unit.
        """
        return self.size / max(self.span, 1.0)


def segment_batches(stream: Stream, window: WindowSpec) -> "list[Batch]":
    """Segment a stream into all its item batches, in start order.

    Uses count-based times when the window is count-based, otherwise
    the stream's timestamps.
    """
    times = stream.effective_times(window.is_count_based).astype(np.float64)
    keys = stream.keys
    order = np.argsort(keys, kind="stable")  # stable keeps time order per key
    sorted_keys = keys[order]
    sorted_times = times[order]

    batches: "list[Batch]" = []
    i = 0
    n = len(sorted_keys)
    gap = window.length
    while i < n:
        key = sorted_keys[i]
        j = i
        while j < n and sorted_keys[j] == key:
            j += 1
        # Items i..j-1 belong to this key, times ascending.
        start = sorted_times[i]
        prev = start
        size = 1
        for idx in range(i + 1, j):
            t = sorted_times[idx]
            if t - prev < gap:
                size += 1
            else:
                batches.append(Batch(int(key), float(start), float(prev), size))
                start = t
                size = 1
            prev = t
        batches.append(Batch(int(key), float(start), float(prev), size))
        i = j
    batches.sort(key=lambda b: (b.start, b.key))
    return batches
