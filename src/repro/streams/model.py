"""The :class:`Stream` container.

A stream is an ordered sequence of integer keys, optionally with
non-decreasing timestamps. Count-based experiments ignore timestamps
(item ``i`` arrives at time ``i + 1``); time-based experiments require
them. Dataset synthesizers produce :class:`Stream` objects and the
experiment harness consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError


@dataclass
class Stream:
    """An ordered key stream with optional timestamps.

    Attributes
    ----------
    keys:
        int64 array of item identifiers, in arrival order.
    times:
        Optional float64 array of non-decreasing arrival timestamps,
        aligned with ``keys``. ``None`` for purely count-based traces.
    name:
        Human-readable trace name (e.g. ``"caida-like"``).
    """

    keys: np.ndarray
    times: "np.ndarray | None" = None
    name: str = "stream"
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        self.keys = np.ascontiguousarray(self.keys, dtype=np.int64)
        if self.times is not None:
            self.times = np.ascontiguousarray(self.times, dtype=np.float64)
            if len(self.times) != len(self.keys):
                raise ConfigurationError(
                    f"times length {len(self.times)} != keys length {len(self.keys)}"
                )
            if len(self.times) and np.any(np.diff(self.times) < 0):
                raise ConfigurationError("timestamps must be non-decreasing")
            if len(self.times) and self.times[0] <= 0:
                raise ConfigurationError("timestamps must be positive")

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def has_times(self) -> bool:
        """True when the stream carries explicit timestamps."""
        return self.times is not None

    def count_times(self) -> np.ndarray:
        """The count-based arrival times ``1..len`` of the items."""
        return np.arange(1, len(self.keys) + 1, dtype=np.int64)

    def effective_times(self, count_based: bool) -> np.ndarray:
        """Arrival times under the requested window kind."""
        if count_based:
            return self.count_times()
        if self.times is None:
            raise ConfigurationError(
                f"stream {self.name!r} has no timestamps; cannot run time-based"
            )
        return self.times

    def distinct_keys(self) -> int:
        """Number of distinct keys in the trace."""
        return int(np.unique(self.keys).size)

    def prefix(self, length: int) -> "Stream":
        """The first ``length`` items as a new :class:`Stream` view."""
        times = self.times[:length] if self.times is not None else None
        return Stream(self.keys[:length], times, name=self.name, meta=self.meta)

    def events(self):
        """Yield ``(key, time-or-None)`` pairs in arrival order."""
        if self.times is None:
            for key in self.keys:
                yield int(key), None
        else:
            for key, t in zip(self.keys, self.times):
                yield int(key), float(t)

    def __repr__(self) -> str:
        timed = "timed" if self.has_times else "count-based"
        return f"Stream({self.name!r}, n={len(self)}, {timed})"
