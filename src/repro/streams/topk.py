"""Bounded-memory top-k tracking (SpaceSaving).

The burst detector's "find frequently appeared burst items" (§1.1
case 2) needs per-key counts of burst events, but an unbounded counter
per key defeats the purpose of sketching. :class:`SpaceSaving`
(Metwally et al.) tracks the top-k keys of a stream in O(k) memory with
the classic guarantees: every key with true count above ``N/k`` is
present, and each reported count overestimates by at most the minimum
resident count (tracked per entry as ``error``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["SpaceSaving", "TopEntry"]


@dataclass(frozen=True)
class TopEntry:
    """One reported heavy hitter."""

    key: object
    count: int
    error: int

    @property
    def guaranteed(self) -> int:
        """A certain lower bound on the key's true count."""
        return self.count - self.error


class SpaceSaving:
    """The SpaceSaving heavy-hitters summary.

    Examples
    --------
    >>> top = SpaceSaving(capacity=2)
    >>> for key in ["a", "a", "b", "c", "a"]:
    ...     top.offer(key)
    >>> top.top(1)[0].key
    'a'
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._counts: "dict[object, int]" = {}
        self._errors: "dict[object, int]" = {}
        self._offered = 0

    def __len__(self) -> int:
        return len(self._counts)

    @property
    def offered(self) -> int:
        """Total number of items offered."""
        return self._offered

    def offer(self, key, weight: int = 1) -> None:
        """Count one (or ``weight``) occurrence(s) of ``key``."""
        if weight < 1:
            raise ConfigurationError(f"weight must be >= 1, got {weight}")
        self._offered += weight
        if key in self._counts:
            self._counts[key] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = weight
            self._errors[key] = 0
            return
        # Evict the minimum-count resident; the newcomer inherits its
        # count as its (upper-bounding) error.
        victim = min(self._counts, key=self._counts.get)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + weight
        self._errors[key] = floor

    def count(self, key) -> int:
        """The (over-)estimated count of a resident key, else 0."""
        return self._counts.get(key, 0)

    def top(self, k: "int | None" = None) -> "list[TopEntry]":
        """The top-``k`` entries, highest estimated count first."""
        entries = [
            TopEntry(key=key, count=count, error=self._errors[key])
            for key, count in self._counts.items()
        ]
        entries.sort(key=lambda e: (-e.count, str(e.key)))
        return entries if k is None else entries[:k]

    def __repr__(self) -> str:
        return (
            f"SpaceSaving(capacity={self.capacity}, tracked={len(self)}, "
            f"offered={self._offered})"
        )
