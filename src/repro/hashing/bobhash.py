"""Pure-Python port of Bob Jenkins' lookup3 hash (the paper's "Bob Hash").

The paper's C++ implementation uses the 32-bit Bob Hash from
http://burtleburtle.net/bob/hash/doobs.html with different initial
seeds for the ``k`` hash functions of each sketch. This module ports
``hashlittle`` (one 32-bit result) and ``hashlittle2`` (two 32-bit
results) from lookup3.c, operating on ``bytes``.

The port follows the byte-at-a-time branch of lookup3.c, so it produces
the canonical little-endian values for any input length.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def _rot(x: int, k: int) -> int:
    """Rotate a 32-bit value left by ``k`` bits."""
    return ((x << k) | (x >> (32 - k))) & _MASK32


def _mix(a: int, b: int, c: int) -> "tuple[int, int, int]":
    """lookup3's mix(): reversibly scramble three 32-bit values."""
    a = (a - c) & _MASK32
    a ^= _rot(c, 4)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 6)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 8)
    b = (b + a) & _MASK32
    a = (a - c) & _MASK32
    a ^= _rot(c, 16)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 19)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 4)
    b = (b + a) & _MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> "tuple[int, int, int]":
    """lookup3's final(): irreversibly mix three values into c."""
    c ^= b
    c = (c - _rot(b, 14)) & _MASK32
    a ^= c
    a = (a - _rot(c, 11)) & _MASK32
    b ^= a
    b = (b - _rot(a, 25)) & _MASK32
    c ^= b
    c = (c - _rot(b, 16)) & _MASK32
    a ^= c
    a = (a - _rot(c, 4)) & _MASK32
    b ^= a
    b = (b - _rot(a, 14)) & _MASK32
    c ^= b
    c = (c - _rot(b, 24)) & _MASK32
    return a, b, c


def _tail_add(data: bytes, offset: int, length: int, a: int, b: int, c: int):
    """Add the final ``length`` (< 13) bytes into a, b, c (little-endian)."""
    k = data[offset:offset + length]
    # The cascade mirrors lookup3.c's byte-wise switch; each word takes
    # up to 4 bytes little-endian.
    if length >= 12:
        c = (c + (k[11] << 24)) & _MASK32
    if length >= 11:
        c = (c + (k[10] << 16)) & _MASK32
    if length >= 10:
        c = (c + (k[9] << 8)) & _MASK32
    if length >= 9:
        c = (c + k[8]) & _MASK32
    if length >= 8:
        b = (b + (k[7] << 24)) & _MASK32
    if length >= 7:
        b = (b + (k[6] << 16)) & _MASK32
    if length >= 6:
        b = (b + (k[5] << 8)) & _MASK32
    if length >= 5:
        b = (b + k[4]) & _MASK32
    if length >= 4:
        a = (a + (k[3] << 24)) & _MASK32
    if length >= 3:
        a = (a + (k[2] << 16)) & _MASK32
    if length >= 2:
        a = (a + (k[1] << 8)) & _MASK32
    if length >= 1:
        a = (a + k[0]) & _MASK32
    return a, b, c


def hashlittle2(data: bytes, initval: int = 0, initval2: int = 0) -> "tuple[int, int]":
    """Return two 32-bit hashes of ``data`` (primary, secondary).

    Port of lookup3.c's ``hashlittle2``; ``initval`` and ``initval2``
    seed the two results. The primary result equals
    ``hashlittle(data, initval)`` when ``initval2 == 0``.
    """
    length = len(data)
    a = b = c = (0xDEADBEEF + length + (initval & _MASK32)) & _MASK32
    c = (c + (initval2 & _MASK32)) & _MASK32

    offset = 0
    remaining = length
    while remaining > 12:
        a = (a + int.from_bytes(data[offset:offset + 4], "little")) & _MASK32
        b = (b + int.from_bytes(data[offset + 4:offset + 8], "little")) & _MASK32
        c = (c + int.from_bytes(data[offset + 8:offset + 12], "little")) & _MASK32
        a, b, c = _mix(a, b, c)
        offset += 12
        remaining -= 12

    if remaining == 0:
        # lookup3 returns (c, b) untouched for a zero-length tail.
        return c, b
    a, b, c = _tail_add(data, offset, remaining, a, b, c)
    a, b, c = _final(a, b, c)
    return c, b


def hashlittle(data: bytes, initval: int = 0) -> int:
    """Return the 32-bit lookup3 ``hashlittle`` of ``data``."""
    c, _b = hashlittle2(data, initval, 0)
    return c


def bob_hash64(data: bytes, seed: int = 0) -> int:
    """Return a 64-bit hash built from ``hashlittle2``'s two outputs.

    This is the base hash the sketches split into the Kirsch-Mitzenmacher
    ``(h1, h2)`` pair (see :mod:`repro.hashing.indexing`).
    """
    c, b = hashlittle2(data, seed & _MASK32, (seed >> 32) & _MASK32)
    return (b << 32) | c
