"""Shard-key derivation: routing items to partitions (repro.shard).

A sharded deployment splits one logical stream across ``P`` replica
sketches by key, so every occurrence of a key lands in the same
replica. The routing hash must be **independent** of the sketches'
cell-index hashes — reusing those would correlate a key's shard with
its cell positions and bias per-shard fill — so the selector derives
its own salted seed and runs it through the same splitmix64 / hash
family machinery as :class:`~repro.hashing.indexing.IndexDeriver`
(scalar and bulk paths agree bit-for-bit, integer keys fully
vectorised).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .indexing import IndexDeriver

__all__ = ["ShardSelector", "shard_seed_for"]

#: Salt folded into the sketch seed to derive the routing seed. Any
#: fixed odd constant far from the small per-task seed offsets works;
#: this is the 64-bit golden-ratio constant's lower half, chosen so
#: seed collisions with index hashes (seed, seed+1, ... per task) are
#: impossible for realistic seeds.
_SHARD_SEED_SALT = 0x7F4A7C15


def shard_seed_for(seed: int) -> int:
    """The routing-hash seed derived from a sketch/monitor seed."""
    return int(seed) + _SHARD_SEED_SALT


class ShardSelector:
    """Maps stream items to shard ids in ``[0, shards)``.

    Parameters
    ----------
    shards:
        Number of partitions ``P``.
    seed:
        The *sketch* seed; the selector salts it (:func:`shard_seed_for`)
        so routing is independent of every cell-index hash family.

    Examples
    --------
    >>> sel = ShardSelector(shards=4, seed=1)
    >>> sel.shard_of("flow-7") == int(sel.shards_of(["flow-7"])[0])
    True
    """

    def __init__(self, shards: int, seed: int = 0):
        if shards < 1:
            raise ConfigurationError(
                f"shard count must be positive, got {shards}"
            )
        self.shards = int(shards)
        self.seed = int(seed)
        # One "cell" per shard, one probe per item: the deriver's first
        # double-hashing probe is the routing function.
        self._deriver = IndexDeriver(n=self.shards, k=1,
                                     seed=shard_seed_for(seed))

    def shard_of(self, item) -> int:
        """Shard id of one item (scalar path)."""
        return int(self._deriver.indexes(item)[0])

    def shards_of(self, items) -> np.ndarray:
        """Shard id per item for a whole batch (vectorised for int keys).

        Element-identical to calling :meth:`shard_of` per item.
        """
        return self._deriver.bulk_single_items(items)

    def __repr__(self) -> str:
        return f"ShardSelector(shards={self.shards}, seed={self.seed})"
