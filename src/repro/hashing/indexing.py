"""Deriving the ``k`` cell indexes of a sketch from one base hash.

All sketches in the library (Clock-sketch variants and baselines) hash
an item into ``k`` cells. Instead of evaluating ``k`` independent Bob
Hashes — prohibitively slow in pure Python and unnecessary in theory —
we use Kirsch–Mitzenmacher double hashing: split one 64-bit base hash
into ``h1`` and ``h2`` and take ``(h1 + i * h2) mod n`` for
``i = 0..k-1``, forcing ``h2`` odd so the probe sequence covers the
whole table for power-of-two ``n`` and never degenerates.

A vectorised path (:func:`bulk_base_hashes` + ``IndexDeriver.bulk``)
computes indexes for whole integer key arrays with numpy, which is what
makes the paper-scale accuracy sweeps feasible.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .family import default_family

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over a uint64 array.

    This is the bulk-path analogue of the per-item base hash: a
    high-quality 64-bit mix whose output is uniform and seedable by
    pre-adding a seed to the input.
    """
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        z = x
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> np.uint64(31))
    return z


def bulk_base_hashes(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Return 64-bit base hashes for an array of integer keys.

    ``keys`` may be any integer dtype; values are reduced mod 2^64. The
    result matches :func:`splitmix64` of ``key + golden * (seed + 1)``,
    giving independent families per seed.
    """
    keys64 = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        seeded = keys64 + np.uint64((seed + 1) * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF)
    return splitmix64(seeded)


_M64 = 0xFFFFFFFFFFFFFFFF


def derive_index_matrix(base: np.ndarray, n: int, k: int) -> np.ndarray:
    """Kirsch–Mitzenmacher double hashing in array form.

    Turns an array of 64-bit base hashes into a ``(len(base), k)``
    matrix of cell indexes in ``[0, n)`` — the vectorised twin of
    :meth:`IndexDeriver.indexes`: ``h1`` is the low 32 bits, ``h2`` the
    high 32 bits forced odd, row ``i`` is ``(h1 + j * h2) mod n`` for
    ``j = 0..k-1``.
    """
    base = np.asarray(base, dtype=np.uint64)
    h1 = (base & np.uint64(0xFFFFFFFF)).astype(np.uint64)
    h2 = ((base >> np.uint64(32)) | np.uint64(1)).astype(np.uint64)
    steps = np.arange(k, dtype=np.uint64)
    with np.errstate(over="ignore"):
        matrix = (h1[:, None] + steps[None, :] * h2[:, None]) % np.uint64(n)
    return matrix.astype(np.int64)


def derive_index_single(base: np.ndarray, n: int) -> np.ndarray:
    """First double-hashing probe per base hash (``h1 mod n``).

    Array form of ``indexes(item)[0]``, used by one-hash structures
    (bitmaps, per-row Count-Min derivers).
    """
    base = np.asarray(base, dtype=np.uint64)
    h1 = base & np.uint64(0xFFFFFFFF)
    return (h1 % np.uint64(n)).astype(np.int64)


def scalar_base_hash(key: int, seed: int = 0) -> int:
    """Scalar twin of :func:`bulk_base_hashes` for one integer key.

    Guaranteed to equal ``int(bulk_base_hashes([key], seed)[0])`` so the
    incremental and snapshot code paths of a sketch place every integer
    key in the same cells.
    """
    x = (key + (seed + 1) * 0x9E3779B97F4A7C15) & _M64
    x = (x + 0x9E3779B97F4A7C15) & _M64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


class IndexDeriver:
    """Turns items into ``k`` cell indexes in ``[0, n)``.

    Parameters
    ----------
    n:
        Number of cells in the target array.
    k:
        Number of hash functions (indexes per item).
    seed:
        Seed for the underlying hash family.
    family:
        Optional hash family instance (defaults to the Bob Hash
        family). The family only affects the scalar path; the bulk path
        always uses the vectorised splitmix64 mix, seeded identically.
    """

    def __init__(self, n: int, k: int, seed: int = 0, family=None):
        if n <= 0:
            raise ConfigurationError(f"cell count must be positive, got {n}")
        if k <= 0:
            raise ConfigurationError(f"hash count must be positive, got {k}")
        self.n = int(n)
        self.k = int(k)
        self.seed = int(seed)
        self.family = family if family is not None else default_family(seed)

    def base_hash(self, item) -> int:
        """Return the 64-bit base hash of ``item``.

        Integer items use the splitmix64 mix so they agree with the
        vectorised bulk path; other item types use the hash family.
        """
        if isinstance(item, (int, np.integer)) and not isinstance(item, bool):
            return scalar_base_hash(int(item), self.seed)
        return self.family.base64(item)

    def indexes(self, item) -> "list[int]":
        """Return the ``k`` cell indexes of ``item`` (scalar path)."""
        base = self.base_hash(item)
        h1 = base & 0xFFFFFFFF
        h2 = ((base >> 32) | 1) & 0xFFFFFFFF
        n = self.n
        return [(h1 + i * h2) % n for i in range(self.k)]

    def base_hashes_many(self, items) -> np.ndarray:
        """64-bit base hashes for a whole batch of arbitrary items.

        The array twin of :meth:`base_hash`: integer arrays go through
        the vectorised splitmix64 mix; anything else (strings, bytes,
        tuples, mixed sequences) is hashed once per unique item via the
        family's cached ``hash_many`` path, with integers inside object
        sequences still using the splitmix mix so every key lands in
        the same cells regardless of how it arrived.
        """
        if isinstance(items, np.ndarray):
            if items.dtype.kind in "iu":
                return bulk_base_hashes(items, self.seed)
        elif isinstance(items, (list, tuple)) and items \
                and all(isinstance(x, (int, np.integer))  # sketchlint: scalar-ok
                        and not isinstance(x, bool) for x in items):
            return bulk_base_hashes(np.asarray(items, dtype=np.int64), self.seed)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        seed = self.seed
        hash_many = getattr(self.family, "hash_many", None)
        out = np.empty(len(items), dtype=np.uint64)
        pending: "list[int]" = []
        # Scalar triage of mixed-type sequences; homogeneous integer
        # batches never reach this loop.
        for i, item in enumerate(items):  # sketchlint: scalar-ok
            if isinstance(item, (int, np.integer)) and not isinstance(item, bool):
                out[i] = scalar_base_hash(int(item), seed)
            elif hash_many is None:
                out[i] = self.family.base64(item)
            else:
                pending.append(i)
        if pending:
            out[pending] = hash_many([items[i] for i in pending])
        return out

    def bulk(self, keys: np.ndarray) -> np.ndarray:
        """Return an ``(len(keys), k)`` index matrix for integer keys.

        Used by the snapshot fast paths and the batch engine; rows are
        the ``k`` positions of each key, derived with the same
        double-hashing scheme as the scalar path (over the splitmix64
        base hash).
        """
        base = bulk_base_hashes(np.asarray(keys), self.seed)
        return derive_index_matrix(base, self.n, self.k)

    def bulk_items(self, items) -> np.ndarray:
        """``(len(items), k)`` index matrix for arbitrary stream items.

        Row-identical to calling :meth:`indexes` per item; integer
        arrays take the fully vectorised path of :meth:`bulk`.
        """
        return derive_index_matrix(self.base_hashes_many(items), self.n, self.k)

    def bulk_single(self, keys: np.ndarray) -> np.ndarray:
        """Return one index per key (``k`` ignored); used by bitmaps.

        Matches ``indexes(key)[0]`` exactly: the first double-hashing
        probe is ``h1 mod n`` with ``h1`` the low 32 bits of the base.
        """
        base = bulk_base_hashes(np.asarray(keys), self.seed)
        return derive_index_single(base, self.n)

    def bulk_single_items(self, items) -> np.ndarray:
        """One index per arbitrary item — array form of ``indexes(x)[0]``."""
        return derive_index_single(self.base_hashes_many(items), self.n)

    def __repr__(self) -> str:
        return f"IndexDeriver(n={self.n}, k={self.k}, seed={self.seed})"
