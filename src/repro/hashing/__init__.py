"""Hashing substrate.

The paper implements all sketches over the 32-bit Bob Jenkins hash
("Bob Hash", lookup3) seeded with different initial values. This
subpackage provides:

- :mod:`repro.hashing.bobhash` — a faithful pure-Python port of
  lookup3's ``hashlittle`` / ``hashlittle2``.
- :mod:`repro.hashing.family` — item canonicalisation and seeded hash
  families producing 64-bit base hashes (Bob Hash or BLAKE2-backed).
- :mod:`repro.hashing.indexing` — Kirsch–Mitzenmacher double hashing
  that derives the ``k`` cell indexes every sketch needs, including a
  numpy-vectorised bulk path for integer key arrays.
- :mod:`repro.hashing.fingerprint` — fixed-width fingerprints used by
  the SWAMP baseline.
"""

from .bobhash import hashlittle, hashlittle2, bob_hash64
from .family import BobHashFamily, Blake2HashFamily, canonical_bytes, default_family
from .indexing import (
    IndexDeriver,
    splitmix64,
    bulk_base_hashes,
    scalar_base_hash,
    derive_index_matrix,
    derive_index_single,
)
from .fingerprint import Fingerprinter
from .sharding import ShardSelector, shard_seed_for

__all__ = [
    "hashlittle",
    "hashlittle2",
    "bob_hash64",
    "BobHashFamily",
    "Blake2HashFamily",
    "canonical_bytes",
    "default_family",
    "IndexDeriver",
    "splitmix64",
    "bulk_base_hashes",
    "scalar_base_hash",
    "derive_index_matrix",
    "derive_index_single",
    "Fingerprinter",
    "ShardSelector",
    "shard_seed_for",
]
