"""Fixed-width fingerprints, used by the SWAMP baseline.

SWAMP stores an ``f``-bit fingerprint of each of the last ``w`` items in
a cyclic queue; its accuracy is governed by collisions in the ``2^f``
fingerprint space. The fingerprinter here derives fingerprints from the
same base hashes as the rest of the library, with scalar and bulk
paths that agree on integer keys.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .indexing import IndexDeriver, bulk_base_hashes


class Fingerprinter:
    """Maps items to ``bits``-wide fingerprints.

    Parameters
    ----------
    bits:
        Fingerprint width in bits, ``1..64``.
    seed:
        Seed for the underlying base hash.
    """

    def __init__(self, bits: int, seed: int = 0):
        if not 1 <= bits <= 64:
            raise ConfigurationError(f"fingerprint bits must be in 1..64, got {bits}")
        self.bits = int(bits)
        self.seed = int(seed)
        self._mask = (1 << self.bits) - 1
        # Reuse IndexDeriver's base hash so int/str/bytes items all work
        # and integer keys match the bulk path.
        self._deriver = IndexDeriver(n=2, k=1, seed=seed)

    @property
    def space(self) -> int:
        """Size of the fingerprint space, ``2**bits``."""
        return 1 << self.bits

    def fingerprint(self, item) -> int:
        """Return the fingerprint of one item."""
        return self._deriver.base_hash(item) & self._mask

    def bulk(self, keys: np.ndarray) -> np.ndarray:
        """Return fingerprints for an integer key array (vectorised)."""
        base = bulk_base_hashes(np.asarray(keys), self.seed)
        return (base & np.uint64(self._mask)).astype(np.uint64)

    def __repr__(self) -> str:
        return f"Fingerprinter(bits={self.bits}, seed={self.seed})"
