"""Seeded hash families over arbitrary stream items.

A *hash family* turns a stream item (int, str, bytes, or tuple of
those) into a 64-bit base hash, deterministically per seed. Sketches
never hash items ``k`` times; they derive ``k`` cell indexes from one
base hash via double hashing (:mod:`repro.hashing.indexing`), which is
both standard practice and what keeps the pure-Python port usable.

Two families are provided:

- :class:`BobHashFamily` — the paper-faithful choice, built on the
  lookup3 port in :mod:`repro.hashing.bobhash`.
- :class:`Blake2HashFamily` — a faster alternative backed by CPython's
  C implementation of BLAKE2b, useful for large experiment sweeps.
"""

from __future__ import annotations

import hashlib
import struct

import numpy as np

from .bobhash import bob_hash64

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Entries kept in a family's ``hash_many`` memo before it is dropped.
#: Batch workloads revisit hot keys constantly; the cap only guards
#: against unbounded growth on adversarial all-distinct streams.
HASH_CACHE_LIMIT = 1 << 20


class _CachedBulkHashing:
    """Mixin: batch hashing with a per-unique-item memo.

    The pure-Python Bob Hash is the per-item bottleneck of the scalar
    insert path. Batches hash each *unique* item once: repeats — the
    defining feature of item-batch streams — hit the memo dictionary
    instead of re-walking the hash rounds.
    """

    _cache: "dict | None" = None

    def hash_many(self, items) -> np.ndarray:
        """Return the 64-bit base hashes of a sequence of items.

        Each distinct item is hashed at most once per family instance
        (memoised up to :data:`HASH_CACHE_LIMIT` entries); the result
        row-aligns with ``items`` and equals ``base64`` element-wise.
        """
        cache = self._cache
        if cache is None:
            cache = self._cache = {}
        elif len(cache) > HASH_CACHE_LIMIT:
            cache.clear()
        base64 = self.base64
        out = np.empty(len(items), dtype=np.uint64)
        # Object hashing has no vector form; this scalar fallback only
        # sees items the memo cache hasn't already resolved.
        for i, item in enumerate(items):  # sketchlint: scalar-ok
            # Key by type as well as value: bool hashes differently from
            # int under canonical_bytes, but True == 1 as a dict key.
            key = (item.__class__, item)
            h = cache.get(key)
            if h is None:
                h = base64(item)
                cache[key] = h
            out[i] = h
        return out


def canonical_bytes(item) -> bytes:
    """Canonicalise a stream item into bytes for hashing.

    Integers map to their 8-byte little-endian two's-complement-style
    encoding (negatives are reduced mod 2^64); strings to UTF-8; bytes
    pass through; tuples to a length-prefixed concatenation so that
    ``("ab", "c")`` and ``("a", "bc")`` hash differently.
    """
    if isinstance(item, bytes):
        return item
    if isinstance(item, bool):
        # bool is an int subclass; give it a distinct tag to avoid
        # colliding with 0/1 keys in mixed-type streams.
        return b"\x01bool" + bytes([item])
    if isinstance(item, int):
        return struct.pack("<Q", item & _MASK64)
    if isinstance(item, str):
        return item.encode("utf-8")
    if isinstance(item, tuple):
        parts = []
        for part in item:
            encoded = canonical_bytes(part)
            parts.append(struct.pack("<I", len(encoded)))
            parts.append(encoded)
        return b"".join(parts)
    raise TypeError(f"unhashable stream item type: {type(item).__name__}")


class BobHashFamily(_CachedBulkHashing):
    """64-bit base hashes from the lookup3 Bob Hash, seeded.

    >>> fam = BobHashFamily(seed=1)
    >>> fam.base64("flow-42") == fam.base64("flow-42")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = seed & _MASK64

    def base64(self, item) -> int:
        """Return the 64-bit base hash of ``item``."""
        return bob_hash64(canonical_bytes(item), self.seed)

    def __repr__(self) -> str:
        return f"BobHashFamily(seed={self.seed})"


class Blake2HashFamily(_CachedBulkHashing):
    """64-bit base hashes from keyed BLAKE2b (C-speed alternative)."""

    def __init__(self, seed: int = 0):
        self.seed = seed & _MASK64
        self._key = struct.pack("<Q", self.seed)

    def base64(self, item) -> int:
        """Return the 64-bit base hash of ``item``."""
        digest = hashlib.blake2b(
            canonical_bytes(item), digest_size=8, key=self._key
        ).digest()
        return int.from_bytes(digest, "little")

    def __repr__(self) -> str:
        return f"Blake2HashFamily(seed={self.seed})"


def default_family(seed: int = 0) -> BobHashFamily:
    """The library default: the paper-faithful Bob Hash family."""
    return BobHashFamily(seed)
