"""Dataset synthesizers.

The paper evaluates on CAIDA traces, the Criteo click log, and a SNAP
stack-exchange dump, none of which are available offline. Per the
substitution policy in DESIGN.md §4, this subpackage synthesizes traces
that reproduce the properties the algorithms are sensitive to —
heavy-tailed key popularity and explicit item-batch structure — using
the same generative model the paper's §5 analysis assumes (exponential
batch spans and sizes, renewal inter-batch gaps).

Entry points:

- :func:`~repro.datasets.synthetic.batch_stream` — the generic
  batch-structured generator every dataset builds on.
- :func:`~repro.datasets.caida.caida_like`,
  :func:`~repro.datasets.criteo.criteo_like`,
  :func:`~repro.datasets.network.network_like` — paper-dataset
  stand-ins with scale knobs matched to the reported statistics.
- :func:`~repro.datasets.registry.get_dataset` — name-based lookup used
  by the experiment harness ("caida", "criteo", "network").
"""

from .adversarial import boundary_stream, lfu_poison_stream, scan_stream
from .synthetic import BatchWorkload, batch_stream, uniform_stream, zipf_stream, periodic_stream
from .caida import caida_like
from .criteo import criteo_like
from .network import network_like
from .registry import DATASETS, get_dataset

__all__ = [
    "BatchWorkload",
    "batch_stream",
    "uniform_stream",
    "zipf_stream",
    "periodic_stream",
    "boundary_stream",
    "lfu_poison_stream",
    "scan_stream",
    "caida_like",
    "criteo_like",
    "network_like",
    "DATASETS",
    "get_dataset",
]
