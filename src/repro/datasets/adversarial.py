"""Adversarial stream generators for boundary and stress testing.

The synthetic datasets model realistic traffic; these generators model
the *worst* traffic — items arriving exactly at window boundaries and
access patterns built to defeat specific cache policies. They back the
stress tests and are useful for validating any new structure's edge
behaviour.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError
from ..streams import Stream

__all__ = ["boundary_stream", "lfu_poison_stream", "scan_stream"]


def boundary_stream(n_keys: int, window_length: int, repeats: int = 3,
                    offset: int = 0) -> Stream:
    """Keys re-appearing at gaps of exactly T-1, T, and T+1 items.

    The nastiest input for a windowed structure: every re-occurrence
    sits on one side of the activeness boundary. ``offset`` shifts the
    phase against the cleaning pointer. Count-based by construction.
    """
    if n_keys < 1 or window_length < 2:
        raise DatasetError("need n_keys >= 1 and window_length >= 2")
    gaps = (window_length - 1, window_length, window_length + 1)
    keys: "list[int]" = [0] * offset
    filler = 10_000_000
    for index in range(n_keys):
        gap = gaps[index % len(gaps)]
        for _ in range(repeats):
            keys.append(index)
            for _ in range(gap - 1):
                keys.append(filler)
                filler += 1
    return Stream(np.asarray(keys, dtype=np.int64), name="boundary")


def lfu_poison_stream(n_items: int, pinned: int = 8, seed: int = 0) -> Stream:
    """The LFU-pinning pathology of §1.1 as an explicit workload.

    A hot prefix makes ``pinned`` keys very frequent, then they vanish
    forever while a rotating working set arrives — frequency-based
    eviction keeps serving the ghosts.
    """
    rng = np.random.default_rng(seed)
    head = rng.permutation(np.repeat(np.arange(pinned), n_items // 10 // pinned))
    tail_len = n_items - len(head)
    # Rotating phases of fresh keys, each reused enough to be cacheable.
    phase_keys = 64
    phases = np.arange(tail_len) // (tail_len // 20 + 1)
    within = rng.integers(0, phase_keys, size=tail_len)
    tail = 1000 + phases * phase_keys + within
    keys = np.concatenate([head, tail]).astype(np.int64)
    return Stream(keys, name="lfu-poison")


def scan_stream(n_items: int, scan_length: int, hot_keys: int = 32,
                seed: int = 0) -> Stream:
    """Hot working set periodically flushed by one-shot scans.

    The classic cache-pollution pattern: ``hot_keys`` keys with high
    reuse, interrupted by long scans of never-repeating keys.
    """
    rng = np.random.default_rng(seed)
    keys: "list[int]" = []
    scan_key = 5_000_000
    while len(keys) < n_items:
        keys.extend(rng.integers(0, hot_keys, size=scan_length).tolist())
        keys.extend(range(scan_key, scan_key + scan_length))
        scan_key += scan_length
    return Stream(np.asarray(keys[:n_items], dtype=np.int64), name="scan")
