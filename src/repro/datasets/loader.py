"""Loading real traces from disk.

The synthesizers stand in for the paper's datasets, but users who hold
the actual traces (CAIDA exports, Criteo TSVs, SNAP dumps) can load
them here. The format is deliberately minimal: one item per line,
either ``key`` alone (count-based) or ``key<sep>timestamp``. Keys that
are not integers are hashed to stable 63-bit identifiers, so string
flow IDs work unchanged.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import DatasetError
from ..hashing import Blake2HashFamily
from ..streams import Stream

__all__ = ["load_trace", "save_trace"]


def _key_mapper():
    family = Blake2HashFamily(seed=0)

    def to_int(token: str) -> int:
        try:
            return int(token)
        except ValueError:
            return family.base64(token) & 0x7FFFFFFFFFFFFFFF

    return to_int


def load_trace(path, separator: "str | None" = None,
               max_items: "int | None" = None, name: "str | None" = None,
               skip_header: bool = False) -> Stream:
    """Load a stream from a text file.

    Parameters
    ----------
    path:
        File with one item per line: ``key`` or ``key<sep>timestamp``.
        Blank lines and lines starting with ``#`` are skipped.
    separator:
        Field separator (default: any whitespace).
    max_items:
        Optional cap on the number of items read.
    skip_header:
        Skip the first non-comment line (CSV headers).

    Returns a :class:`~repro.streams.Stream`; timestamps, when present,
    are shifted to start at 1.0 as the library requires.
    """
    keys: "list[int]" = []
    times: "list[float]" = []
    to_int = _key_mapper()
    saw_times = None
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if skip_header:
                skip_header = False
                continue
            fields = line.split(separator)
            if saw_times is None:
                saw_times = len(fields) >= 2
            if saw_times and len(fields) < 2:
                raise DatasetError(
                    f"{path}: line {len(keys) + 1} lacks the timestamp "
                    "column present earlier"
                )
            keys.append(to_int(fields[0]))
            if saw_times:
                try:
                    times.append(float(fields[1]))
                except ValueError as exc:
                    raise DatasetError(
                        f"{path}: bad timestamp {fields[1]!r}"
                    ) from exc
            if max_items is not None and len(keys) >= max_items:
                break
    if not keys:
        raise DatasetError(f"{path}: no items found")

    key_array = np.asarray(keys, dtype=np.int64)
    time_array = None
    if saw_times:
        time_array = np.asarray(times, dtype=np.float64)
        if np.any(np.diff(time_array) < 0):
            raise DatasetError(f"{path}: timestamps must be non-decreasing")
        time_array = time_array - time_array[0] + 1.0
    trace_name = name if name is not None else os.path.basename(str(path))
    return Stream(key_array, time_array, name=trace_name)


def save_trace(stream: Stream, path, separator: str = " ") -> None:
    """Write a stream in the format :func:`load_trace` reads."""
    with open(path, "w") as handle:
        if stream.times is None:
            for key in stream.keys:
                handle.write(f"{int(key)}\n")
        else:
            for key, t in zip(stream.keys, stream.times):
                handle.write(f"{int(key)}{separator}{t:.9g}\n")
