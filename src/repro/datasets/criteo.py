"""Criteo-like click-stream synthesizer.

The paper's Criteo sample has ~150 K unique hashed categorical terms
with click-session batch structure (user behaviour: short bursts of
clicks on a commodity type, long pauses between sessions). The
stand-in uses moderately skewed popularity and smaller, sparser batches
than the CAIDA stand-in.
"""

from __future__ import annotations

from ..streams import Stream
from .synthetic import BatchWorkload, batch_stream

#: Items-per-key ratio chosen so a full-size trace has ~150 K keys.
ITEMS_PER_KEY = 30


def criteo_like(n_items: int = 500_000, window_hint: float = 65536.0,
                seed: int = 0, zipf_exponent: float = 0.8,
                mean_batch_size: float = 6.0) -> Stream:
    """A Criteo-style ad-click trace: click sessions with long pauses."""
    workload = BatchWorkload(
        n_items=n_items,
        n_keys=max(1, n_items // ITEMS_PER_KEY),
        window_hint=window_hint,
        zipf_exponent=zipf_exponent,
        mean_batch_size=mean_batch_size,
        within_gap_fraction=0.08,
        between_gap_factor=6.0,
    )
    return batch_stream(workload, seed=seed, name="criteo-like")
