"""Generic synthetic stream generators.

:func:`batch_stream` is the workhorse: a per-key renewal process in
which each key alternates between *batches* (runs of occurrences with
small gaps) and *silences* (gaps larger than the window), merged into
one global arrival order. This is exactly the generative model §5 of
the paper analyses — batch spans and sizes are exponential/geometric
and inter-batch gaps are exponential — so the analytical error models
in :mod:`repro.analysis` can be validated against these traces.

Time is calibrated so the aggregate arrival rate is ~1 item per time
unit, which makes count-based and time-based experiments directly
comparable on the same trace (the paper's "constant speed" equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DatasetError
from ..streams import Stream


@dataclass(frozen=True)
class BatchWorkload:
    """Parameters of a batch-structured workload.

    Attributes
    ----------
    n_items:
        Total stream length.
    n_keys:
        Number of distinct keys.
    window_hint:
        The window ``T`` the workload is shaped around: within-batch
        gaps are well below it, inter-batch gaps well above it.
    zipf_exponent:
        Skew of key popularity (0 = uniform).
    mean_batch_size:
        Mean items per batch (geometric sizes).
    within_gap_fraction:
        Mean within-batch gap, as a fraction of ``window_hint``.
    between_gap_factor:
        Mean inter-batch silence, as a multiple of ``window_hint``.
    """

    n_items: int
    n_keys: int
    window_hint: float
    zipf_exponent: float = 1.0
    mean_batch_size: float = 8.0
    within_gap_fraction: float = 0.05
    between_gap_factor: float = 4.0

    def validate(self) -> None:
        if self.n_items < 1:
            raise DatasetError(f"n_items must be >= 1, got {self.n_items}")
        if self.n_keys < 1:
            raise DatasetError(f"n_keys must be >= 1, got {self.n_keys}")
        if self.window_hint <= 0:
            raise DatasetError(f"window_hint must be positive, got {self.window_hint}")
        if self.mean_batch_size < 1:
            raise DatasetError(
                f"mean_batch_size must be >= 1, got {self.mean_batch_size}"
            )
        if not 0 < self.within_gap_fraction < 1:
            raise DatasetError("within_gap_fraction must be in (0, 1)")
        if self.between_gap_factor <= 1:
            raise DatasetError("between_gap_factor must exceed 1")


def _zipf_weights(n_keys: int, exponent: float) -> np.ndarray:
    """Normalised Zipf popularity weights for ranks ``1..n_keys``."""
    ranks = np.arange(1, n_keys + 1, dtype=np.float64)
    weights = ranks ** (-exponent) if exponent > 0 else np.ones(n_keys)
    return weights / weights.sum()


def batch_stream(workload: BatchWorkload, seed: int = 0,
                 name: str = "batch-stream") -> Stream:
    """Generate a batch-structured stream from a workload spec.

    Each key runs an independent renewal process: a batch of
    ``1 + Geometric`` items separated by ``Exp(within_gap)`` gaps, then
    an ``Exp(between_gap)`` silence, repeating. Popular keys are given
    proportionally shorter silences, so heavy hitters batch more often
    (the heaviest may stay continuously active, like elephant flows).

    Tiny requests (a handful of items against long silences) can
    under-produce on the nominal horizon; the generator then retries
    with a progressively wider horizon, staying deterministic per seed.
    """
    workload.validate()
    for attempt in range(8):
        stream = _generate_batch_stream(workload, seed, name,
                                        horizon_scale=4.0 ** attempt)
        if stream is not None:
            return stream
    raise DatasetError(
        "workload produced too few events even on a widened horizon"
    )


def _generate_batch_stream(workload: BatchWorkload, seed: int, name: str,
                           horizon_scale: float) -> "Stream | None":
    """One generation attempt; None when it under-produces."""
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(workload.n_keys, workload.zipf_exponent)

    # Rates are calibrated against the nominal horizon; only the
    # generation cutoff is widened on retries, so retrying raises the
    # expected event count instead of rescaling the whole process.
    nominal = float(workload.n_items)
    within_gap = workload.within_gap_fraction * workload.window_hint
    base_between = workload.between_gap_factor * workload.window_hint
    mean_size = workload.mean_batch_size

    # Per-key silence lengths: scaled down for popular keys so that
    # expected per-key item counts follow the Zipf weights, floored at
    # a fraction of the base so batches stay separated for most keys.
    target_items = weights * workload.n_items
    # items per cycle = mean_size; cycles needed = target/mean_size;
    # cycle length ~ between + mean_size * within, solved for between:
    cycles = np.maximum(target_items / mean_size, 1e-9)
    between = nominal / cycles - mean_size * within_gap
    between = np.clip(between, 0.02 * base_between, None)

    # Clipping the silences caps the rate of the most popular keys, so
    # the nominal horizon would under-produce. Recalibrate: expected
    # events per key after clipping, then stretch the horizon so the
    # total overshoots the request slightly (the merge truncates).
    cycle_len = between + mean_size * within_gap
    expected_total = float(np.sum(nominal / cycle_len * mean_size))
    horizon = nominal * 1.1 * workload.n_items / max(expected_total, 1.0)
    horizon *= horizon_scale

    all_keys: "list[np.ndarray]" = []
    all_times: "list[np.ndarray]" = []
    # Geometric with mean `mean_size`: p = 1/mean, sizes >= 1.
    p_size = min(1.0, 1.0 / mean_size)

    for key in range(workload.n_keys):
        expected_cycles = horizon / (between[key] + mean_size * within_gap)
        n_batches = max(1, int(np.ceil(expected_cycles + 4 * np.sqrt(expected_cycles))))
        silences = rng.exponential(between[key], size=n_batches)
        sizes = rng.geometric(p_size, size=n_batches)
        n_events = int(sizes.sum())
        gaps = rng.exponential(within_gap, size=n_events)

        # Build the key's event times: cumulative silences + within-batch
        # offsets, batch by batch (vectorised via cumulative sums). The
        # first batch starts at a uniform phase of the key's renewal
        # cycle so the aggregate process is (near-)stationary from t=0
        # instead of ramping up over one silence length.
        cycle = between[key] + mean_size * within_gap
        first_start = rng.uniform(0, cycle)
        batch_starts = first_start + np.concatenate(
            ([0.0], np.cumsum(silences[:-1]))
        )
        ends = np.cumsum(sizes)
        starts = ends - sizes
        offsets = np.cumsum(gaps)
        # Within-batch offsets restart at each batch start.
        offsets = offsets - np.repeat(offsets[starts], sizes)
        times = np.repeat(batch_starts, sizes) + offsets
        keep = times <= horizon
        times = times[keep]
        if times.size:
            all_times.append(times)
            all_keys.append(np.full(times.size, key, dtype=np.int64))

    if not all_times:
        return None
    keys = np.concatenate(all_keys)
    times = np.concatenate(all_times)
    if len(keys) < workload.n_items:
        return None
    order = np.argsort(times, kind="stable")
    keys = keys[order][: workload.n_items]
    times = times[order][: workload.n_items]
    # Normalise times to start strictly after zero.
    times = times - times[0] + 1.0
    return Stream(keys, times, name=name,
                  meta={"workload": workload, "seed": seed})


def uniform_stream(n_items: int, n_keys: int, seed: int = 0) -> Stream:
    """Keys drawn uniformly at random — a no-batch-structure stress test."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, n_keys, size=n_items, dtype=np.int64)
    times = np.cumsum(rng.exponential(1.0, size=n_items)) + 1.0
    return Stream(keys, times, name="uniform")


def zipf_stream(n_items: int, n_keys: int, exponent: float = 1.1,
                seed: int = 0) -> Stream:
    """IID Zipf-popularity keys — skewed but without explicit batches."""
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(n_keys, exponent)
    keys = rng.choice(n_keys, size=n_items, p=weights).astype(np.int64)
    times = np.cumsum(rng.exponential(1.0, size=n_items)) + 1.0
    return Stream(keys, times, name="zipf")


def periodic_stream(n_items: int, n_keys: int, period: float,
                    batch_size: int = 4, seed: int = 0) -> Stream:
    """Keys that batch on a fixed period — the cache-prefetching scenario.

    Every key emits a batch of ``batch_size`` back-to-back items once
    per ``period`` time units, with a random phase. Used by the cache
    examples to demonstrate periodical item batches (§1.1 case 1).
    """
    rng = np.random.default_rng(seed)
    phases = rng.uniform(0, period, size=n_keys)
    horizon = n_items * period / max(n_keys * batch_size, 1)
    n_periods = int(np.ceil(horizon / period)) + 1
    keys_parts = []
    times_parts = []
    for key in range(n_keys):
        starts = phases[key] + period * np.arange(n_periods)
        times = (starts[:, None] + 0.01 * np.arange(batch_size)[None, :]).ravel()
        keys_parts.append(np.full(times.size, key, dtype=np.int64))
        times_parts.append(times)
    keys = np.concatenate(keys_parts)
    times = np.concatenate(times_parts)
    order = np.argsort(times, kind="stable")
    keys = keys[order][:n_items]
    times = times[order][:n_items]
    times = times - times[0] + 1.0
    return Stream(keys, times, name="periodic")
