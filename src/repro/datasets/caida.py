"""CAIDA-like trace synthesizer.

The paper's CAIDA traces have ~30 M packets over ~600 K distinct source
IPs — i.e. ~50 items per key — with classic heavy-tailed flow sizes and
strong batch structure from flow transmission (packet trains). The
stand-in keeps the items-per-key ratio and skew while letting callers
scale the trace down to laptop sizes.
"""

from __future__ import annotations

from ..streams import Stream
from .synthetic import BatchWorkload, batch_stream

#: Ratio of items to distinct keys in the paper's traces (30 M / 600 K).
ITEMS_PER_KEY = 50


def caida_like(n_items: int = 500_000, window_hint: float = 65536.0,
               seed: int = 0, zipf_exponent: float = 1.05,
               mean_batch_size: float = 12.0) -> Stream:
    """A CAIDA-style packet trace: many flows, heavy tail, packet trains.

    Parameters mirror :class:`~repro.datasets.synthetic.BatchWorkload`;
    ``window_hint`` should be the window ``T`` the experiment will use
    so batches are well-formed relative to it.
    """
    workload = BatchWorkload(
        n_items=n_items,
        n_keys=max(1, n_items // ITEMS_PER_KEY),
        window_hint=window_hint,
        zipf_exponent=zipf_exponent,
        mean_batch_size=mean_batch_size,
        within_gap_fraction=0.02,
        between_gap_factor=5.0,
    )
    return batch_stream(workload, seed=seed, name="caida-like")
