"""Name-based dataset lookup for the experiment harness."""

from __future__ import annotations

from ..errors import DatasetError
from ..streams import Stream
from .caida import caida_like
from .criteo import criteo_like
from .network import network_like

DATASETS = {
    "caida": caida_like,
    "criteo": criteo_like,
    "network": network_like,
}


def get_dataset(name: str, n_items: int, window_hint: float,
                seed: int = 0) -> Stream:
    """Synthesize the named dataset stand-in at the requested scale.

    ``name`` is one of ``"caida"``, ``"criteo"``, ``"network"`` —
    matching the three datasets of the paper's §6.1.
    """
    try:
        factory = DATASETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(DATASETS))
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None
    return factory(n_items=n_items, window_hint=window_hint, seed=seed)
