"""Network-like (stack-exchange) trace synthesizer.

The paper's "Network" dataset is users' posting history on stack
exchange (SNAP): user u answers at time t, keyed by u. Activity is very
long-tailed — a few prolific users, many occasional ones — with small
bursts of answers separated by long idle periods.
"""

from __future__ import annotations

from ..streams import Stream
from .synthetic import BatchWorkload, batch_stream

#: Posting activity is sparser per key than packet traces.
ITEMS_PER_KEY = 15


def network_like(n_items: int = 500_000, window_hint: float = 65536.0,
                 seed: int = 0, zipf_exponent: float = 1.3,
                 mean_batch_size: float = 3.0) -> Stream:
    """A stack-exchange-style activity trace: small bursts, long tail."""
    workload = BatchWorkload(
        n_items=n_items,
        n_keys=max(1, n_items // ITEMS_PER_KEY),
        window_hint=window_hint,
        zipf_exponent=zipf_exponent,
        mean_batch_size=mean_batch_size,
        within_gap_fraction=0.1,
        between_gap_factor=8.0,
    )
    return batch_stream(workload, seed=seed, name="network-like")
