"""Per-key adaptive batch thresholds (paper §7, future work 2).

"The threshold T for two different item batches B_a and B_b may differ
and an algorithm should learn the proper thresholds for different item
batches."

:class:`GapThresholdLearner` learns a per-key threshold as a multiple
of the key's smoothed inter-arrival gap (an EWMA), clamped to a global
range; :class:`AdaptiveBatchTracker` segments batches online with the
learned thresholds — keys with naturally slow cadence are not broken
into spurious batches, fast keys are not merged into one endless batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, TimeError

__all__ = ["GapThresholdLearner", "AdaptiveBatchTracker"]


class GapThresholdLearner:
    """Learns per-key thresholds from observed inter-arrival gaps.

    The learned threshold is ``multiplier`` times the EWMA of the key's
    gaps, clamped into ``[min_threshold, max_threshold]``. Before any
    gap is observed the default ``min_threshold`` applies... rather,
    the initial threshold is the geometric mean of the clamp range,
    which makes first batches neither trivially split nor merged.

    Examples
    --------
    >>> learner = GapThresholdLearner(multiplier=4.0, min_threshold=2.0,
    ...                               max_threshold=100.0)
    >>> for gap in [1.0, 1.0, 1.0]:
    ...     learner.update("fast", gap)
    >>> learner.threshold("fast")
    4.0
    """

    def __init__(self, multiplier: float = 4.0, min_threshold: float = 1.0,
                 max_threshold: float = 1e9, alpha: float = 0.25):
        if multiplier <= 1:
            raise ConfigurationError("multiplier must exceed 1")
        if not 0 < alpha <= 1:
            raise ConfigurationError("alpha must be in (0, 1]")
        if min_threshold > max_threshold:
            raise ConfigurationError("min_threshold exceeds max_threshold")
        self.multiplier = float(multiplier)
        self.min_threshold = float(min_threshold)
        self.max_threshold = float(max_threshold)
        self.alpha = float(alpha)
        self._ewma: "dict[object, float]" = {}
        self._default = (min_threshold * max_threshold) ** 0.5

    def update(self, key, gap: float) -> None:
        """Feed one observed inter-arrival gap for the key.

        Gaps far above the key's learned cadence (``multiplier`` times
        the EWMA, before clamping) are silences between batches, not
        cadence — they are excluded from the EWMA so one long pause
        does not inflate the threshold forever. The first gap of a key
        is always cadence (there is nothing to compare against).
        """
        if gap < 0:
            raise ConfigurationError(f"gap must be non-negative, got {gap}")
        prev = self._ewma.get(key)
        if prev is not None and gap >= self.multiplier * prev:
            return
        self._ewma[key] = (
            gap if prev is None else (1 - self.alpha) * prev + self.alpha * gap
        )

    def threshold(self, key) -> float:
        """The key's current learned threshold."""
        ewma = self._ewma.get(key)
        if ewma is None:
            return min(max(self._default, self.min_threshold),
                       self.max_threshold)
        return min(max(self.multiplier * ewma, self.min_threshold),
                   self.max_threshold)


@dataclass
class _KeyState:
    start: float
    last: float
    size: int
    batches: int


class AdaptiveBatchTracker:
    """Online batch segmentation with learned per-key thresholds.

    Like :class:`~repro.streams.BatchTracker` but the gap threshold is
    per-key and evolves as the stream is observed.

    Examples
    --------
    >>> tracker = AdaptiveBatchTracker(GapThresholdLearner(
    ...     multiplier=3.0, min_threshold=1.0, max_threshold=50.0))
    >>> for t in [1.0, 2.0, 3.0, 30.0]:   # cadence 1, then a long pause
    ...     tracker.observe("k", t)
    >>> tracker.batches_seen("k")          # the pause split the batch
    2
    """

    def __init__(self, learner: GapThresholdLearner):
        self.learner = learner
        self._states: "dict[object, _KeyState]" = {}
        self._now = 0.0

    def observe(self, key, t: float) -> None:
        """Record an occurrence of ``key`` at time ``t``."""
        if t < self._now:
            raise TimeError(f"time moved backwards: {t} < {self._now}")
        self._now = float(t)
        state = self._states.get(key)
        if state is None:
            self._states[key] = _KeyState(start=t, last=t, size=1, batches=1)
            return
        gap = t - state.last
        threshold = self.learner.threshold(key)
        self.learner.update(key, gap)
        if gap < threshold:
            state.size += 1
        else:
            state.start = t
            state.size = 1
            state.batches += 1
        state.last = t

    def is_active(self, key, now=None) -> bool:
        """Active under the key's own learned threshold."""
        state = self._states.get(key)
        if state is None:
            return False
        now = self._now if now is None else now
        return now - state.last < self.learner.threshold(key)

    def size(self, key) -> "int | None":
        """Current batch size, or None if the key is unseen."""
        state = self._states.get(key)
        return state.size if state is not None else None

    def batches_seen(self, key) -> int:
        """How many batches the key has started."""
        state = self._states.get(key)
        return state.batches if state is not None else 0

    def threshold(self, key) -> float:
        """The key's current learned threshold (delegates to learner)."""
        return self.learner.threshold(key)
