"""Extensions implementing the paper's §7 future-work directions.

- :mod:`repro.ext.similar` — item batches of *similar* (not identical)
  items: a mapper canonicalises items into equivalence classes before
  they reach any sketch ("beef and steak are similar items").
- :mod:`repro.ext.adaptive` — per-key learned batch thresholds: "the
  threshold T for two different item batches may differ and an
  algorithm should learn the proper thresholds".
- :mod:`repro.ext.merge` — mergeable Clock-sketches for distributed
  measurement ("combining Flink framework can help save
  synchronization cost in distributed measurement").
"""

from .similar import KeyedMapper, SimilarItemSketch, TokenPrefixMapper
from .adaptive import AdaptiveBatchTracker, GapThresholdLearner
from .merge import (
    merge_bloom_filters,
    merge_bitmaps,
    merge_count_mins,
    merge_timespan_sketches,
)
from .pipeline import DistributedMeasurement

__all__ = [
    "DistributedMeasurement",
    "KeyedMapper",
    "TokenPrefixMapper",
    "SimilarItemSketch",
    "GapThresholdLearner",
    "AdaptiveBatchTracker",
    "merge_bloom_filters",
    "merge_bitmaps",
    "merge_count_mins",
    "merge_timespan_sketches",
]
