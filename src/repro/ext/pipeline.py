"""A miniature distributed measurement pipeline (paper §7).

"Besides, item batch measurement is also useful in distributed systems.
Combining Flink framework can help save synchronization cost in
distributed measurement."

:class:`DistributedMeasurement` models the Flink-style topology the
paper sketches: a keyed partitioner routes the stream to N workers,
each maintaining its own Clock-sketches with *zero* coordination;
at synchronisation barriers the coordinator aligns every worker to the
barrier time, merges their sketches (conservative union — see
:mod:`repro.ext.merge`), and answers global queries from the union.
Between barriers the only shared state is the barrier clock itself.
"""

from __future__ import annotations

import numpy as np

from ..core.activeness import ClockBloomFilter
from ..core.cardinality import ClockBitmap
from ..core.size import ClockCountMin
from ..errors import ConfigurationError
from ..timebase import WindowSpec
from .merge import merge_bitmaps, merge_bloom_filters, merge_count_mins

__all__ = ["DistributedMeasurement"]


class _Worker:
    """One worker's private sketches."""

    def __init__(self, window: WindowSpec, memory, seed: int):
        self.activeness = ClockBloomFilter.from_memory(memory, window,
                                                       seed=seed)
        self.cardinality = ClockBitmap.from_memory(memory, window,
                                                   seed=seed + 1)
        self.sizes = ClockCountMin.from_memory(memory, window, seed=seed + 2)
        self.items = 0

    def ingest(self, keys: np.ndarray, times: np.ndarray) -> None:
        self.activeness.insert_many(keys, times)
        self.cardinality.insert_many(keys, times)
        self.sizes.insert_many(keys, times)
        self.items += len(keys)

    def align(self, barrier: float) -> None:
        for sketch in (self.activeness, self.cardinality, self.sizes):
            sketch.clock.advance(barrier)
            sketch._now = barrier


class DistributedMeasurement:
    """N workers measuring one logical stream, merged at barriers.

    Workers share *seeds* (so their sketches are structurally identical
    and mergeable) but no runtime state. Time-based windows only: a
    barrier is a stream time every worker has reached.

    Parameters
    ----------
    n_workers:
        Number of parallel workers.
    window:
        The (time-based) batch window.
    memory:
        Per-sketch budget for each worker.
    """

    def __init__(self, n_workers: int, window: WindowSpec, memory="16KB",
                 seed: int = 0):
        if n_workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {n_workers}")
        if window.is_count_based:
            raise ConfigurationError(
                "distributed barriers need a time-based window: worker-"
                "local item counts do not define a shared clock"
            )
        self.window = window
        self.workers = [_Worker(window, memory, seed) for _ in range(n_workers)]
        self._merged = None
        self._barrier = 0.0

    @property
    def n_workers(self) -> int:
        """Number of workers."""
        return len(self.workers)

    def partition(self, key) -> int:
        """The worker a key is routed to (stable keyed partitioning)."""
        return int(key) % self.n_workers

    def ingest(self, keys, times) -> None:
        """Route a stream chunk to the workers (keyed partitioning)."""
        keys = np.asarray(keys)
        times = np.asarray(times, dtype=np.float64)
        routes = keys % self.n_workers
        for worker_id, worker in enumerate(self.workers):
            mask = routes == worker_id
            if np.any(mask):
                worker.ingest(keys[mask], times[mask])
        self._merged = None  # stale until the next barrier

    def barrier(self, at_time: "float | None" = None):
        """Synchronise and merge: returns the merged (global) sketches.

        ``at_time`` defaults to the latest time any worker has seen.
        """
        import copy

        if at_time is None:
            at_time = max(w.activeness.now for w in self.workers)
        for worker in self.workers:
            worker.align(float(at_time))
        # Merge into deep copies so the workers' live sketches stay
        # private (they keep ingesting after the barrier).
        activeness = copy.deepcopy(self.workers[0].activeness)
        cardinality = copy.deepcopy(self.workers[0].cardinality)
        sizes = copy.deepcopy(self.workers[0].sizes)
        for other in self.workers[1:]:
            activeness = merge_bloom_filters(activeness, other.activeness)
            cardinality = merge_bitmaps(cardinality, other.cardinality)
            sizes = merge_count_mins(sizes, other.sizes)
        self._merged = (activeness, cardinality, sizes)
        self._barrier = float(at_time)
        return self._merged

    def _require_barrier(self):
        if self._merged is None:
            raise ConfigurationError(
                "no barrier since the last ingest; call barrier() first"
            )
        return self._merged

    def is_active(self, key) -> bool:
        """Global activeness of a key's batch (as of the last barrier)."""
        return self._require_barrier()[0].contains(key)

    def active_batches(self) -> float:
        """Global active-batch estimate (as of the last barrier)."""
        return self._require_barrier()[1].estimate().value

    def batch_size(self, key) -> int:
        """Global batch-size estimate (as of the last barrier).

        Exact-or-over for the worker that owns the key; summation across
        workers only adds (keyed routing means one worker holds each
        key's counts, others contribute zero or collision noise).
        """
        return self._require_barrier()[2].query(key)

    def total_items(self) -> int:
        """Items ingested across all workers."""
        return sum(w.items for w in self.workers)
