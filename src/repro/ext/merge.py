"""Mergeable Clock-sketches for distributed measurement (paper §7).

Workers measuring disjoint substreams of the same logical stream can
merge their sketches at a synchronisation point instead of sharing
state per item. The merges are conservative unions:

- clock cells merge by element-wise **max** — an item active in any
  worker stays active in the union, and no clock is ever newer than its
  newest writer, so the window guarantee carries over;
- CM+clock counters merge by **sum** (each worker counted disjoint
  occurrences) with their clocks merged by max;
- BF-ts+clock timestamps merge **first-writer-wins** (the older stamp
  survives on cells live on both sides), keeping spans overestimates.

Merging requires structurally identical sketches (same cells, hashes,
seed, window) whose cleaning pointers are at the same position — i.e.
workers synchronise at a common stream time, exactly the Flink-style
barrier the paper envisions.

These functions are thin wrappers over the sketches' own ``merge()``
methods, which route every cell write through the validating
:meth:`~repro.core.clockarray.ClockArray.merge_max` /
:meth:`~repro.core.clockarray.ClockArray.load_values` entry points —
the same ones the runtime sanitizer checks. ``repro.shard`` builds its
global query view on the same methods.
"""

from __future__ import annotations

from ..core.activeness import ClockBloomFilter
from ..core.cardinality import ClockBitmap
from ..core.size import ClockCountMin
from ..core.timespan import ClockTimeSpanSketch

__all__ = ["merge_bloom_filters", "merge_bitmaps", "merge_count_mins",
           "merge_timespan_sketches"]


def _resolve_target(a, b, into):
    """Pick the merge target, rebasing ``into`` onto ``a`` when given.

    With ``into`` absent (or ``a`` itself) the merge mutates ``a``.
    Otherwise ``into`` adopts ``a``'s exact state first — cell image via
    the validating ``load_values``, cleaner position as deserialisation
    does — so the fold of ``b`` lands in a third sketch and ``a`` stays
    untouched.
    """
    if into is None or into is a:
        return a
    into.clock.load_values(a.clock.values)
    into.clock._steps_done = a.clock.steps_done
    into.clock._now = a.clock.now
    into._now = a._now
    into._items_inserted = a._items_inserted
    return into


def merge_bloom_filters(a: ClockBloomFilter, b: ClockBloomFilter,
                        into: "ClockBloomFilter | None" = None) -> ClockBloomFilter:
    """Union of two BF+clock sketches (element-wise clock max).

    Examples
    --------
    >>> from repro import ClockBloomFilter, time_window
    >>> w = time_window(100.0)
    >>> f1 = ClockBloomFilter(n=256, k=3, s=2, window=w, seed=5)
    >>> f2 = ClockBloomFilter(n=256, k=3, s=2, window=w, seed=5)
    >>> f1.insert("left", t=1.0); f2.insert("right", t=2.0)
    >>> f1.contains("right", t=3.0); f2.contains("right", t=3.0)
    False
    True
    >>> merged = merge_bloom_filters(f1, f2)
    >>> merged.contains("left"), merged.contains("right")
    (True, True)
    """
    return _resolve_target(a, b, into).merge(b)


def merge_bitmaps(a: ClockBitmap, b: ClockBitmap,
                  into: "ClockBitmap | None" = None) -> ClockBitmap:
    """Union of two BM+clock sketches (element-wise clock max).

    A later ``estimate()`` applies the §4.2 linear-counting estimator
    to the union's zero count, deduplicating batches both sides saw.
    """
    return _resolve_target(a, b, into).merge(b)


def merge_count_mins(a: ClockCountMin, b: ClockCountMin,
                     into: "ClockCountMin | None" = None) -> ClockCountMin:
    """Merge two CM+clock sketches: counters sum, clocks max.

    Counter sums saturate at the counter maximum rather than wrapping.
    """
    result = _resolve_target(a, b, into)
    if result is not a:
        result.counters[:] = a.counters
    return result.merge(b)


def merge_timespan_sketches(
    a: ClockTimeSpanSketch, b: ClockTimeSpanSketch,
    into: "ClockTimeSpanSketch | None" = None,
) -> ClockTimeSpanSketch:
    """Merge two BF-ts+clock sketches: clocks max, stamps first-writer-wins.

    A cell live on both sides keeps the older timestamp, so per-key
    spans on the merged sketch remain overestimates of the truth (see
    :meth:`~repro.core.timespan.ClockTimeSpanSketch.merge`).
    """
    result = _resolve_target(a, b, into)
    if result is not a:
        result.timestamps[:] = a.timestamps
    return result.merge(b)
