"""Mergeable Clock-sketches for distributed measurement (paper §7).

Workers measuring disjoint substreams of the same logical stream can
merge their sketches at a synchronisation point instead of sharing
state per item. The merges are conservative unions:

- clock cells merge by element-wise **max** — an item active in any
  worker stays active in the union, and no clock is ever newer than its
  newest writer, so the window guarantee carries over;
- CM+clock counters merge by **sum** (each worker counted disjoint
  occurrences) with their clocks merged by max.

Merging requires structurally identical sketches (same cells, hashes,
seed, window) whose cleaning pointers are at the same position — i.e.
workers synchronise at a common stream time, exactly the Flink-style
barrier the paper envisions.
"""

from __future__ import annotations

import numpy as np

from ..core.activeness import ClockBloomFilter
from ..core.cardinality import ClockBitmap
from ..core.size import ClockCountMin
from ..errors import ConfigurationError

__all__ = ["merge_bloom_filters", "merge_bitmaps", "merge_count_mins"]


def _check_mergeable(a, b, attrs) -> None:
    for attr in attrs:
        va, vb = getattr(a, attr), getattr(b, attr)
        if va != vb:
            raise ConfigurationError(
                f"cannot merge: {attr} differs ({va} != {vb})"
            )
    if a.clock.steps_done != b.clock.steps_done:
        raise ConfigurationError(
            "cannot merge: cleaning pointers disagree "
            f"({a.clock.steps_done} != {b.clock.steps_done} steps); "
            "synchronise both sketches to the same stream time first"
        )


def merge_bloom_filters(a: ClockBloomFilter, b: ClockBloomFilter,
                        into: "ClockBloomFilter | None" = None) -> ClockBloomFilter:
    """Union of two BF+clock sketches (element-wise clock max).

    Examples
    --------
    >>> from repro import ClockBloomFilter, time_window
    >>> w = time_window(100.0)
    >>> f1 = ClockBloomFilter(n=256, k=3, s=2, window=w, seed=5)
    >>> f2 = ClockBloomFilter(n=256, k=3, s=2, window=w, seed=5)
    >>> f1.insert("left", t=1.0); f2.insert("right", t=2.0)
    >>> f1.contains("right", t=3.0); f2.contains("right", t=3.0)
    False
    True
    >>> merged = merge_bloom_filters(f1, f2)
    >>> merged.contains("left"), merged.contains("right")
    (True, True)
    """
    _check_mergeable(a, b, ("n", "k", "s", "window", "seed"))
    result = into if into is not None else a
    np.maximum(a.clock.values, b.clock.values, out=result.clock.values)
    result._now = max(a.now, b.now)
    result._items_inserted = a.items_inserted + b.items_inserted
    return result


def merge_bitmaps(a: ClockBitmap, b: ClockBitmap,
                  into: "ClockBitmap | None" = None) -> ClockBitmap:
    """Union of two BM+clock sketches (element-wise clock max)."""
    _check_mergeable(a, b, ("n", "s", "window", "seed"))
    result = into if into is not None else a
    np.maximum(a.clock.values, b.clock.values, out=result.clock.values)
    result._now = max(a.now, b.now)
    result._items_inserted = a.items_inserted + b.items_inserted
    return result


def merge_count_mins(a: ClockCountMin, b: ClockCountMin,
                     into: "ClockCountMin | None" = None) -> ClockCountMin:
    """Merge two CM+clock sketches: counters sum, clocks max.

    Counter sums saturate at the counter maximum rather than wrapping.
    """
    _check_mergeable(
        a, b, ("width", "depth", "s", "counter_bits", "window", "seed")
    )
    result = into if into is not None else a
    summed = a.counters.astype(np.int64) + b.counters.astype(np.int64)
    result.counters = np.minimum(summed, a.counter_max).astype(a.counters.dtype)
    np.maximum(a.clock.values, b.clock.values, out=result.clock.values)
    # A counter is live only while its clock is; zero out any counter
    # whose merged clock is zero (both sides expired).
    result.counters[result.clock.values == 0] = 0
    result._now = max(a.now, b.now)
    result._items_inserted = a.items_inserted + b.items_inserted
    return result
