"""Similar-item batches (paper §7, future work 1).

"Item batch composed of similar items rather than identical items. For
example, when processing a stream of purchase records, beef and steak
are similar items while soap and milk are not."

The mechanism: a *mapper* sends each raw item to a canonical
equivalence-class representative, and a :class:`SimilarItemSketch`
applies the mapper in front of any of the library's sketches. Batches
are then batches of the class, not the literal item.
"""

from __future__ import annotations

__all__ = ["KeyedMapper", "TokenPrefixMapper", "SimilarItemSketch"]


class KeyedMapper:
    """Maps items to classes through an explicit dictionary.

    Items without an entry map to themselves (singleton classes).

    Examples
    --------
    >>> m = KeyedMapper({"beef": "meat", "steak": "meat"})
    >>> m("beef") == m("steak")
    True
    >>> m("soap")
    'soap'
    """

    def __init__(self, mapping: dict):
        self.mapping = dict(mapping)

    def __call__(self, item):
        return self.mapping.get(item, item)


class TokenPrefixMapper:
    """Maps string items to their first ``tokens`` '/'-separated tokens.

    Useful for hierarchical identifiers (URL paths, product categories):
    ``"meat/beef"`` and ``"meat/steak"`` share the class ``"meat"``.

    Examples
    --------
    >>> m = TokenPrefixMapper(1)
    >>> m("meat/beef") == m("meat/steak")
    True
    """

    def __init__(self, tokens: int = 1, separator: str = "/"):
        self.tokens = int(tokens)
        self.separator = separator

    def __call__(self, item):
        if not isinstance(item, str):
            return item
        return self.separator.join(item.split(self.separator)[: self.tokens])


class SimilarItemSketch:
    """Wraps any sketch so it measures batches of similar items.

    The wrapped sketch must expose ``insert``; ``contains`` and
    ``query`` are forwarded when present.

    Examples
    --------
    >>> from repro import ClockBloomFilter, count_window
    >>> base = ClockBloomFilter(n=512, k=3, s=2, window=count_window(32))
    >>> sk = SimilarItemSketch(base, KeyedMapper({"beef": "meat",
    ...                                           "steak": "meat"}))
    >>> sk.insert("beef")
    >>> sk.contains("steak")  # same class => same batch
    True
    """

    def __init__(self, sketch, mapper):
        self.sketch = sketch
        self.mapper = mapper

    def insert(self, item, t=None) -> None:
        """Insert the item's class into the wrapped sketch."""
        self.sketch.insert(self.mapper(item), t)

    def contains(self, item, t=None) -> bool:
        """Activeness of the item's class batch."""
        return self.sketch.contains(self.mapper(item), t)

    def query(self, item, t=None):
        """Forward a measurement query for the item's class."""
        return self.sketch.query(self.mapper(item), t)

    def __getattr__(self, name):
        # Estimators and metadata (estimate, memory_bits, ...) pass
        # straight through to the wrapped sketch.
        return getattr(self.sketch, name)
