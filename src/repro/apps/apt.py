"""APT detection (paper §1.1, case 3).

"APT features in small size per batch, long time gap between every two
batches, and a large number of batches in total." The detector tracks
three signals per flow, all sketch-based:

- batch activeness (BF+clock) to notice when a new batch *starts*;
- batch size (CM+clock) to check batches stay small;
- a plain (unclocked) Count-Min of how many batches each flow has
  started over the stream's lifetime.

A flow becomes suspicious when its lifetime batch count crosses
``min_batches`` while its current batch size has never exceeded
``max_batch_size``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.activeness import ClockBloomFilter
from ..core.size import ClockCountMin
from ..hashing import IndexDeriver
from ..timebase import WindowSpec

__all__ = ["AptDetector", "SuspiciousFlow"]


class _PlainCountMin:
    """A minimal unclocked Count-Min used for lifetime batch counts."""

    def __init__(self, width: int, depth: int, seed: int):
        import numpy as np
        self.width = width
        self.depth = depth
        self.counters = np.zeros(width * depth, dtype=np.int64)
        self._derivers = [
            IndexDeriver(n=width, k=1, seed=seed + 7919 * row)
            for row in range(depth)
        ]

    def _flats(self, item):
        return [
            row * self.width + d.indexes(item)[0]
            for row, d in enumerate(self._derivers)
        ]

    def add(self, item) -> None:
        for flat in self._flats(item):
            self.counters[flat] += 1

    def query(self, item) -> int:
        return int(min(self.counters[flat] for flat in self._flats(item)))


@dataclass(frozen=True)
class SuspiciousFlow:
    """A flow flagged as a potential APT channel."""

    key: object
    time: float
    batches: int
    last_batch_size: int


class AptDetector:
    """Flags low-and-slow flows: many small batches over a long period.

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> det = AptDetector(count_window(4), min_batches=3, max_batch_size=2)
    >>> flagged = []
    >>> for _ in range(3):                   # 3 separate tiny batches
    ...     flagged += det.observe("c2-host")
    ...     for filler in range(6):          # gap > T of other traffic
    ...         _ = det.observe(f"bg-{filler}")
    >>> [f.key for f in flagged]
    ['c2-host']
    """

    def __init__(self, window: WindowSpec, min_batches: int = 5,
                 max_batch_size: int = 4, memory="16KB", seed: int = 0):
        self.window = window
        self.min_batches = int(min_batches)
        self.max_batch_size = int(max_batch_size)
        self.active = ClockBloomFilter.from_memory(memory, window, seed=seed)
        self.size_sketch = ClockCountMin.from_memory(memory, window,
                                                     seed=seed + 1)
        self.batch_counts = _PlainCountMin(width=2048, depth=3, seed=seed + 2)
        self._flagged: set = set()
        self._oversized: set = set()

    def observe(self, key, t=None) -> "list[SuspiciousFlow]":
        """Feed one packet; returns newly-flagged flows (0 or 1)."""
        starts_batch = not self.active.contains(key, t)
        self.active.insert(key, t)
        self.size_sketch.insert(key, t)
        if starts_batch:
            self.batch_counts.add(key)
        size = self.size_sketch.query(key)
        if size > self.max_batch_size:
            # A fat batch disqualifies the flow from the low-and-slow
            # profile permanently — otherwise every chunky flow would
            # look small again at the first packet of its next batch.
            # CM+clock only overestimates, so under heavy collisions
            # this errs toward missing, never toward false alarms; size
            # the sketch memory for the expected load.
            self._oversized.add(key)
            return []
        batches = self.batch_counts.query(key)
        eligible = (
            batches >= self.min_batches
            and key not in self._flagged
            and key not in self._oversized
        )
        if not eligible:
            return []
        self._flagged.add(key)
        return [SuspiciousFlow(key=key, time=self.active.now,
                               batches=batches, last_batch_size=size)]

    def flagged_flows(self) -> set:
        """All flows flagged so far."""
        return set(self._flagged)
