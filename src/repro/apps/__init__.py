"""Application-layer utilities built on the Clock-sketch public API.

These implement the paper's four motivating use cases (§1.1) as
reusable components:

- :mod:`repro.apps.burst` — per-flow real-time burst detection (case 2):
  batches with large size but small span.
- :mod:`repro.apps.apt` — APT detection (case 3): flows with small
  batches, long gaps, and many batches in total.
- :mod:`repro.apps.ads` — online-advertising analytics (case 4):
  classifying customers by their number of simultaneously active
  interest batches.

(Case 1, caching, lives in :mod:`repro.cache`.)
"""

from .burst import BurstDetector, BurstEvent
from .apt import AptDetector, SuspiciousFlow
from .ads import AdAnalytics, CustomerProfile

__all__ = [
    "BurstDetector",
    "BurstEvent",
    "AptDetector",
    "SuspiciousFlow",
    "AdAnalytics",
    "CustomerProfile",
]
