"""Online-advertising analytics (paper §1.1, case 4).

Click streams are keyed by (customer, commodity type): a batch is a run
of clicks by one customer on one commodity. The paper's insight:
customers with few simultaneously active batches shop *focused* (target
them with ads for their current interest), customers with many are
*aimless* (target them with new/popular products).

:class:`AdAnalytics` tracks global batch state with one Clock-sketch
over the (customer, commodity) pair space, plus a per-customer
BM+clock for the active-interest count that drives the classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.activeness import ClockBloomFilter
from ..core.cardinality import ClockBitmap
from ..core.timespan import ClockTimeSpanSketch
from ..timebase import WindowSpec

__all__ = ["AdAnalytics", "CustomerProfile"]


@dataclass(frozen=True)
class CustomerProfile:
    """A customer's current shopping profile."""

    customer: object
    active_interests: float
    focused: bool

    @property
    def strategy(self) -> str:
        """The ad strategy the paper prescribes for this profile."""
        return "targeted-current-interest" if self.focused else "new-and-popular"


class AdAnalytics:
    """Classifies customers by their simultaneously active interests.

    Parameters
    ----------
    window:
        The batch gap threshold ``T`` (click-session scale).
    focus_threshold:
        Customers with at most this many active interest batches are
        classified as focused.
    per_customer_memory:
        Budget of each customer's interest bitmap, in bytes.

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> ads = AdAnalytics(count_window(16), focus_threshold=2)
    >>> for _ in range(4):
    ...     ads.observe("alice", "laptops")
    >>> for c in ["laptops", "socks", "drones", "tea", "vases", "kayaks"]:
    ...     ads.observe("bob", c)
    >>> ads.profile("alice").focused, ads.profile("bob").focused
    (True, False)
    """

    def __init__(self, window: WindowSpec, focus_threshold: float = 3.0,
                 memory="16KB", per_customer_memory: int = 256,
                 seed: int = 0):
        self.window = window
        self.focus_threshold = float(focus_threshold)
        self.per_customer_memory = int(per_customer_memory)
        self.seed = seed
        # Global structures over (customer, commodity) pairs.
        self.batch_active = ClockBloomFilter.from_memory(memory, window,
                                                         seed=seed)
        self.batch_span = ClockTimeSpanSketch.from_memory(memory, window,
                                                          seed=seed + 1)
        # Per-customer active-interest bitmaps, created on first click.
        self._interests: "dict[object, ClockBitmap]" = {}
        self._new_batches: "list[tuple[object, object, float]]" = []

    def observe(self, customer, commodity, t=None) -> None:
        """Record one click by ``customer`` on ``commodity``."""
        pair = (customer, commodity)
        if not self.batch_active.contains(pair, t):
            # A brand-new interest batch: the paper's "new focus" signal.
            self._new_batches.append((customer, commodity,
                                      self.batch_active.now))
        self.batch_active.insert(pair, t)
        self.batch_span.insert(pair, t)
        bitmap = self._interests.get(customer)
        if bitmap is None:
            bitmap = ClockBitmap.from_memory(
                self.per_customer_memory, self.window, s=4,
                seed=self.seed + 17,
            )
            self._interests[customer] = bitmap
        bitmap.insert(commodity, t)

    def profile(self, customer) -> CustomerProfile:
        """Classify the customer as focused or aimless right now."""
        bitmap = self._interests.get(customer)
        active = bitmap.estimate().value if bitmap is not None else 0.0
        return CustomerProfile(
            customer=customer,
            active_interests=active,
            focused=active <= self.focus_threshold,
        )

    def enduring_interest(self, customer, commodity, min_span: float):
        """Has this interest batch lasted at least ``min_span``?

        Returns the measured span when it qualifies, else None — the
        paper's "everlasting item batches indicate enduring interest".
        """
        result = self.batch_span.query((customer, commodity))
        if result.active and result.span >= min_span:
            return result.span
        return None

    def new_interest_events(self) -> "list[tuple[object, object, float]]":
        """(customer, commodity, time) for every batch start seen."""
        return list(self._new_batches)
