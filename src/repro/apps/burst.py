"""Per-flow real-time burst detection (paper §1.1, case 2).

"A simple approach is to define bursts as item batches with high
density, i.e., those with larger size but a smaller span." The detector
pairs a CM+clock (batch size) with a BF-ts+clock (batch span): on every
arrival it estimates the current batch's density ``size / span`` and
emits a :class:`BurstEvent` the first time a batch crosses both the
minimum-size and the density thresholds. A plain counter of burst keys
supports the paper's "find frequently appeared burst items".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.size import ClockCountMin
from ..core.timespan import ClockTimeSpanSketch
from ..streams.topk import SpaceSaving
from ..timebase import WindowSpec

__all__ = ["BurstDetector", "BurstEvent"]


@dataclass(frozen=True)
class BurstEvent:
    """A detected per-flow burst."""

    key: object
    time: float
    size: int
    span: float

    @property
    def density(self) -> float:
        """Items per unit time over the batch so far."""
        return self.size / max(self.span, 1.0)


class BurstDetector:
    """Detects high-density item batches in real time.

    Parameters
    ----------
    window:
        The batch gap threshold ``T``.
    min_size:
        Batches smaller than this never qualify as bursts.
    min_density:
        Minimum ``size / span`` (items per time unit) to qualify.
    memory:
        Budget for *each* of the two underlying sketches.

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> detector = BurstDetector(count_window(64), min_size=5,
    ...                          min_density=0.5, memory="4KB")
    >>> events = [e for key in ["x"] * 10 for e in detector.observe(key)]
    >>> events[0].key, events[0].size >= 5
    ('x', True)
    """

    def __init__(self, window: WindowSpec, min_size: int = 8,
                 min_density: float = 1.0, memory="16KB", seed: int = 0,
                 track_top: int = 256):
        self.window = window
        self.min_size = int(min_size)
        self.min_density = float(min_density)
        self.size_sketch = ClockCountMin.from_memory(memory, window, seed=seed)
        self.span_sketch = ClockTimeSpanSketch.from_memory(memory, window,
                                                           seed=seed + 1)
        # Bounded-memory per-key burst counting: the paper's "find
        # frequently appeared burst items" without an unbounded table.
        self.burst_counts = SpaceSaving(capacity=track_top)
        self._bursting: set = set()

    def observe(self, key, t=None) -> "list[BurstEvent]":
        """Feed one arrival; returns newly-detected bursts (0 or 1).

        A key re-enters the eligible pool once its batch stops being a
        burst (ends or thins out), so recurring bursts are re-reported.
        """
        self.size_sketch.insert(key, t)
        self.span_sketch.insert(key, t)
        size = self.size_sketch.query(key)
        result = self.span_sketch.query(key)
        if not result.active:
            self._bursting.discard(key)
            return []
        span = max(result.span, 1.0)
        is_burst = size >= self.min_size and size / span >= self.min_density
        if not is_burst:
            self._bursting.discard(key)
            return []
        if key in self._bursting:
            return []
        self._bursting.add(key)
        self.burst_counts.offer(key)
        now = self.span_sketch.now
        return [BurstEvent(key=key, time=now, size=size, span=result.span)]

    def frequent_burst_keys(self, top: int = 10) -> "list[tuple[object, int]]":
        """Keys that burst most often — the paper's per-key report."""
        return [(e.key, e.count) for e in self.burst_counts.top(top)]
