"""§5.2 — analytical relative error of BM+clock (item batch cardinality).

Eq (15): with probability at least ``1 - δ``,

    RE(s) <= 1/(2^s - 2) + sqrt(8 s / M * ln(2/δ))

The first term is the error-window bias (shrinks with ``s``); the
second is linear-counting variance (grows with ``s`` because wider
clocks mean fewer cells). The optimizer returns the integer arg-min.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = ["cardinality_re_bound", "optimal_s_cardinality"]


def cardinality_re_bound(memory_bits: float, s: int, delta: float = 0.8) -> float:
    """Eq (15): the high-probability RE bound of BM+clock."""
    if s < 2:
        raise ConfigurationError(f"clock size must be >= 2, got {s}")
    if not 0 < delta < 2:
        raise ConfigurationError(f"delta must be in (0, 2), got {delta}")
    bias = 1.0 / ((1 << s) - 2)
    variance = math.sqrt(8.0 * s / memory_bits * math.log(2.0 / delta))
    return bias + variance


def optimal_s_cardinality(memory_bits: float, delta: float = 0.8,
                          s_candidates=range(2, 9)) -> int:
    """Arg-min of eq (15) over integer clock widths.

    At the paper's reference configuration (M = 128 KB, δ = 0.8) this
    returns 8, matching §6.3.
    """
    return min(
        s_candidates,
        key=lambda s: cardinality_re_bound(memory_bits, s, delta),
    )
