"""§5.3 — analytical error of BF-ts+clock (item batch time span).

The stream model: new streams (batches) are born at rate ``n0`` per
time unit; a stream's lifetime is Exp(λ1). In balance there are
``x = n0/λ1`` active streams. The error has two parts:

- ``f1`` — hash collisions among the (at most) ``x + x1 + x2`` streams
  still occupying cells, a Bloom-style term, eq (22);
- ``f2`` — interruptions by outdated elements in the error window,
  eqs (18)-(21), each wrong with probability ``1/(k+1)``.

Eq (23) combines them with ``n = M/(s+t)`` cells (``t`` = 64 timestamp
bits). The optimal ``s`` "generally lies in [8, 64], increases with M
and decreases with T", which the optimizer below reproduces.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = ["timespan_error", "optimal_s_timespan"]

#: 64-bit timestamps, as in the paper's experiments.
TIMESTAMP_BITS = 64


def timespan_error(memory_bits: float, window_length: float, s: int,
                   k: int = 2, birth_rate: float = 1.0,
                   death_rate: "float | None" = None,
                   timestamp_bits: int = TIMESTAMP_BITS) -> float:
    """Eq (23): predicted error rate F(s) of BF-ts+clock.

    Parameters
    ----------
    birth_rate:
        ``n0``, new streams per time unit.
    death_rate:
        ``λ1``; defaults to balancing ``x = n0 * T / 4`` active streams
        (a quarter-window mean lifetime, matching the synthetic
        workloads' scale).
    """
    if s < 2:
        raise ConfigurationError(f"clock size must be >= 2, got {s}")
    lam1 = death_rate if death_rate is not None else 4.0 / window_length
    n = memory_bits / (s + timestamp_bits)
    error_window = window_length / ((1 << s) - 2)
    x = birth_rate / lam1

    # Eq (18): streams older than the window dying inside the error window.
    x1 = x * (1.0 - math.exp(-lam1 * error_window))
    # Eq (19): streams born and dead inside the error window.
    x2 = error_window - (1.0 - math.exp(-lam1 * error_window)) / lam1

    # Eq (21): interruption errors, each wrong w.p. 1/(k+1).
    f2 = (x1 + x2) / ((x1 + x2 + x) * (k + 1))
    # Eq (22): Bloom-style collision term over the occupied streams.
    f1 = (1.0 - math.exp(-k * (x + x1 + x2) / n)) ** k
    return f1 + f2


def optimal_s_timespan(memory_bits: float, window_length: float, k: int = 2,
                       birth_rate: float = 1.0,
                       death_rate: "float | None" = None,
                       s_candidates=range(2, 33)) -> int:
    """Arg-min of eq (23) over integer clock widths."""
    return min(
        s_candidates,
        key=lambda s: timespan_error(
            memory_bits, window_length, s, k, birth_rate, death_rate
        ),
    )
