"""§5.4 — analytical error of CM+clock (item batch size).

Same exponential stream model as §5.3 (births at rate ``n0``,
lifetimes Exp(λ1), sizes Exp(λ2)). Eq (30) gives the expected
per-counter contamination ``E[X_i + Y_i] ≈ (n0 + λ2)/(n λ1 λ2)``;
eq (33) adds the error-window interruption term. Because the bound is
a tail probability at a threshold rather than a single number, the
model exposes the threshold (eq 32/33) and an ``optimal_s`` that
minimises the threshold-plus-interruption combination, reproducing
§6.5's "s = 3-4 at small memory, s = 8 at 64 KB+".
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError

__all__ = [
    "size_abs_error_threshold",
    "size_interruption_probability",
    "size_exceed_probability",
    "size_error_threshold",
    "optimal_s_size",
]

DEFAULT_COUNTER_BITS = 16


def size_abs_error_threshold(memory_bits: float, window_length: float, s: int,
                             k: int = 3, birth_rate: float = 1.0,
                             death_rate: "float | None" = None,
                             size_rate: "float | None" = None,
                             counter_bits: int = DEFAULT_COUNTER_BITS,
                             c: float = math.e) -> float:
    """Eq (32): the absolute-error threshold of CM+clock.

    With ``n = M / (k (s + b))`` counters per row, the minimum over the
    ``k`` rows over-counts by more than this threshold with probability
    at most ``c^-k`` (see :func:`size_exceed_probability`).
    """
    if s < 2:
        raise ConfigurationError(f"clock size must be >= 2, got {s}")
    if c <= 1:
        raise ConfigurationError(f"confidence scale c must exceed 1, got {c}")
    lam1 = death_rate if death_rate is not None else 4.0 / window_length
    lam2 = size_rate if size_rate is not None else 8.0 / window_length
    return (
        c * k * (s + counter_bits) * (birth_rate + lam2)
        / (memory_bits * lam1 * lam2)
    )


def size_interruption_probability(window_length: float, s: int, k: int = 3,
                                  birth_rate: float = 1.0,
                                  death_rate: "float | None" = None) -> float:
    """§5.4's error-window interruption probability (§5.3's f2 head)."""
    if s < 2:
        raise ConfigurationError(f"clock size must be >= 2, got {s}")
    lam1 = death_rate if death_rate is not None else 4.0 / window_length
    return (
        lam1 * window_length
        / ((lam1 * window_length + birth_rate * ((1 << s) - 2)) * (k + 1))
    )


def size_exceed_probability(window_length: float, s: int, k: int = 3,
                            birth_rate: float = 1.0,
                            death_rate: "float | None" = None,
                            c: float = math.e) -> float:
    """Probability the size estimate errs beyond eq (32)'s threshold.

    Two disjoint failure modes: the Markov tail of the row minimum
    (``c^-k``) and an error-window interruption corrupting the batch's
    counters. Capped at 1; this is what the accuracy auditor compares
    its observed threshold-exceed rate against.
    """
    if c <= 1:
        raise ConfigurationError(f"confidence scale c must exceed 1, got {c}")
    tail = c ** float(-k)
    interruption = size_interruption_probability(
        window_length, s, k, birth_rate, death_rate
    )
    return min(1.0, tail + interruption)


def size_error_threshold(memory_bits: float, window_length: float, s: int,
                         k: int = 3, birth_rate: float = 1.0,
                         death_rate: "float | None" = None,
                         size_rate: "float | None" = None,
                         counter_bits: int = DEFAULT_COUNTER_BITS,
                         c: float = math.e) -> float:
    """Eq (33)'s combined error score at confidence scale ``c``.

    Returns ``threshold + window_length * interruption_probability``:
    the absolute-error threshold of eq (32) exceeded with probability
    at most ``c^-k``, plus the expected contribution of error-window
    interruptions (each can corrupt the minimum by up to a window's
    worth of stale count). Lower is better; used only for comparing
    clock widths, as in §5.4's closing discussion.
    """
    threshold = size_abs_error_threshold(
        memory_bits, window_length, s, k, birth_rate, death_rate,
        size_rate, counter_bits, c,
    )
    interruption = size_interruption_probability(
        window_length, s, k, birth_rate, death_rate
    )
    return threshold + window_length * interruption


def optimal_s_size(memory_bits: float, window_length: float, k: int = 3,
                   birth_rate: float = 1.0,
                   death_rate: "float | None" = None,
                   size_rate: "float | None" = None,
                   s_candidates=range(2, 17)) -> int:
    """Arg-min of the §5.4 error score over integer clock widths."""
    return min(
        s_candidates,
        key=lambda s: size_error_threshold(
            memory_bits, window_length, s, k, birth_rate, death_rate, size_rate
        ),
    )
