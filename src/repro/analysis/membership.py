"""§5.1 — analytical FPR of BF+clock (item batch membership).

The chain of results, with ``M`` the memory in bits, ``T`` the window,
``s`` the clock width, ``n = M/s`` cells:

- effective load: ``T (1 + 1/(2(2^s - 2)))`` valid hash mappings (half
  of an outdated element's mappings survive on average)  — eq (1);
- optimal ``k``: the Bloom optimum against that load — below eq (1);
- FPR at optimal ``k``: ``2^(-k)``  — eqs (2)-(3);
- the minimum over integer ``s >= 2`` is at ``s = 2``, giving
  ``f* ≈ 0.8351^(M/T)``  — eq (4);
- memory needed for FPR ε: ``M ≈ 3.8472 T log2(1/ε)``  — eq (6);
- SWAMP's lower bound: ``M > T log2(T/ε)``  — eq (7).
"""

from __future__ import annotations

import math

from ..core.params import active_load
from ..errors import ConfigurationError

__all__ = [
    "membership_fpr",
    "membership_fpr_at_optimal_k",
    "optimal_s_membership",
    "memory_for_fpr",
    "swamp_memory_lower_bound",
    "tbf_fpr_scale",
]


def membership_fpr(memory_bits: float, window_length: float, s: int,
                   k: "int | None" = None) -> float:
    """Eq (1)/(3): predicted FPR of BF+clock at the given parameters.

    With ``k`` omitted, uses the (real-valued) optimal ``k`` and the
    ``2^-k`` simplification of eq (3).
    """
    if s < 2:
        raise ConfigurationError(f"clock size must be >= 2, got {s}")
    n = memory_bits / s
    load = active_load(window_length, s)
    if k is None:
        k = n * math.log(2) / load
        return math.pow(2.0, -k)
    exponent = -k * load / n
    return (1.0 - math.exp(exponent)) ** k


def membership_fpr_at_optimal_k(memory_bits: float, window_length: float,
                                s: int) -> float:
    """Eq (3): FPR at the optimal hash count, ``2^(-n ln2 / load)``."""
    return membership_fpr(memory_bits, window_length, s, k=None)


def optimal_s_membership(memory_bits: float, window_length: float,
                         s_candidates=range(2, 9)) -> int:
    """Arg-min of eq (3) over integer clock widths; §5.1 proves it is 2."""
    return min(
        s_candidates,
        key=lambda s: membership_fpr_at_optimal_k(memory_bits, window_length, s),
    )


def memory_for_fpr(epsilon: float, window_length: float) -> float:
    """Eq (6): bits BF+clock needs for a target FPR ε (at s = 2)."""
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    return (8.0 / (3.0 * math.log(2))) * window_length * math.log2(1.0 / epsilon)


def swamp_memory_lower_bound(epsilon: float, window_length: float) -> float:
    """Eq (7): SWAMP's memory lower bound ``T log2(T/ε)`` in bits."""
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    return window_length * math.log2(window_length / epsilon)


def tbf_fpr_scale(memory_bits: float, window_length: float) -> float:
    """Eq (5): TBF's FPR scale ``0.6185^(M / (T log T))``.

    Only the scale matters (the paper states it with an O(.)); used to
    confirm BF+clock's ``log T`` advantage.
    """
    exponent = memory_bits / (window_length * math.log2(max(window_length, 2.0)))
    return 0.6185 ** exponent
