"""Closed-form error models from the paper's §5.

One module per measurement task, each implementing the section's
equations and an ``optimal_s`` search used by Figures 5/9a/10a/11a:

- :mod:`repro.analysis.membership` — §5.1, eqs (1)-(8): FPR of
  BF+clock, the s = 2 optimum, and the TBF/SWAMP memory comparisons.
- :mod:`repro.analysis.cardinality` — §5.2, eqs (9)-(15): the relative
  error bound of BM+clock.
- :mod:`repro.analysis.timespan` — §5.3, eqs (16)-(23): the error model
  of BF-ts+clock under the exponential stream model.
- :mod:`repro.analysis.size` — §5.4, eqs (24)-(33): the error model of
  CM+clock.
"""

from .membership import (
    membership_fpr,
    membership_fpr_at_optimal_k,
    memory_for_fpr,
    optimal_s_membership,
    swamp_memory_lower_bound,
)
from .cardinality import cardinality_re_bound, optimal_s_cardinality
from .timespan import timespan_error, optimal_s_timespan
from .size import (
    optimal_s_size,
    size_abs_error_threshold,
    size_error_threshold,
    size_exceed_probability,
    size_interruption_probability,
)

__all__ = [
    "membership_fpr",
    "membership_fpr_at_optimal_k",
    "memory_for_fpr",
    "optimal_s_membership",
    "swamp_memory_lower_bound",
    "cardinality_re_bound",
    "optimal_s_cardinality",
    "timespan_error",
    "optimal_s_timespan",
    "size_abs_error_threshold",
    "size_interruption_probability",
    "size_exceed_probability",
    "size_error_threshold",
    "optimal_s_size",
]
