"""Closed-form batch application — moved to :mod:`repro.kernels`.

The fused finishers now live in the kernel-backend layer
(:mod:`repro.kernels.numpy_backend` holds the reference
implementations; compiled backends provide bit-identical twins) and
the batch engine dispatches through ``clock.kernels`` instead of
calling module functions. This module re-exports the numpy reference
functions so historical imports (``from repro.engine.fused import
fuse_touch``) keep working.
"""

from __future__ import annotations

from ..kernels.numpy_backend import fuse_countmin, fuse_timespan, fuse_touch

__all__ = ["fuse_touch", "fuse_timespan", "fuse_countmin"]
