"""Closed-form application of a whole insert batch (engine core).

The scalar hot path interleaves, per item, a lazy sweep
(:meth:`~repro.core.clockarray.ClockArray.advance`) with a handful of
cell writes. Replaying that interleaving item-at-a-time is what makes
pure-Python ingestion slow; this module collapses it into a fixed
number of numpy passes while producing *bit-identical* end state.

The key observation is the paper's own snapshot trick, applied
incrementally: between two consecutive touches of a cell the sweep only
ever decrements it (clamped at zero), so the cell's value after the
batch is fully determined by (a) its value when the batch started,
(b) the sweep-step numbers at which the batch touched it, and (c) the
sweep-step count at the end of the batch. :func:`sweep_hits` counts
decrements over any step interval in closed form, which turns the whole
batch into grouped scatter operations:

- every cell decays by its hit count over the batch interval;
- touched cells are rewritten from their *last* touch
  (:func:`~repro.core.clockarray.snapshot_values`);
- expiry side effects (timestamp / counter clearing) are reconstructed
  per cell from the hit counts *between* consecutive touches — a cell
  expired in a gap iff the gap contains at least ``2^s - 1`` hits.

These functions apply only to the exact sweep modes (``vector`` /
``scalar``), where the cleaner is fully caught up before every
operation; the deferred modes keep their chunked path (see
:mod:`repro.engine.batch`), matching their documented relaxed
guarantee. ``on_expire`` callbacks are *not* invoked here — callers
hand in the side arrays and this module updates them directly, which is
exactly what the callbacks would have done.
"""

from __future__ import annotations

import numpy as np

from ..core.clockarray import snapshot_values, sweep_hits
from ..obs import runtime as _obs

__all__ = ["fuse_touch", "fuse_timespan", "fuse_countmin"]


def _cleaned_prelude(clock, touched: np.ndarray,
                     final: np.ndarray) -> "int | None":
    """First half of the cleaned-cell count; call *before* load_values.

    ``cleaned`` (cells live before the batch, zero after) satisfies

        cleaned = nonzero(before) - nonzero(after) + born

    where ``born`` — cells empty before but live after — can only be
    touched cells, so it needs just the per-touched-cell arrays.
    Counting ``nonzero`` on ``clock.values`` (the small cell dtype, not
    the int64 working copies) keeps this to a fraction of a full
    boolean-mask pass. Only runs while observability is on — with it
    off the fused paths report 0 cleaned and the clock's
    ``cells_cleaned_total`` stays a sweep-path-only statistic.
    """
    if not _obs.ENABLED:
        return None
    nz_before = int(np.count_nonzero(clock.values))
    born = int(np.count_nonzero(final[clock.values.take(touched) == 0]))
    return nz_before + born


def _cleaned_result(clock, prelude: "int | None") -> int:
    """Second half of the cleaned-cell count; call *after* load_values."""
    if prelude is None:
        return 0
    return prelude - int(np.count_nonzero(clock.values))


def _decayed_values(clock, end_steps: int):
    """All-cell values after sweeping to ``end_steps``, before touches.

    Returns ``(old, decayed)`` as int64 arrays: the pre-batch values and
    the values every cell would hold at the end of the batch if the
    batch touched nothing.
    """
    n = clock.n
    cells = np.arange(n, dtype=np.int64)
    hits = sweep_hits(end_steps, cells, n) - sweep_hits(clock.steps_done, cells, n)
    old = clock.values.astype(np.int64)
    return old, np.maximum(old - hits, 0)


class _TouchSegments:
    """Per-cell runs of one batch's touch events, in arrival order.

    ``cells``/``steps`` are flat, aligned, with ``steps`` non-decreasing
    (arrival order). A stable sort by cell yields one contiguous segment
    per touched cell whose events stay chronological; the attributes
    expose everything the side-effect reconstruction needs:

    ``order``        the stable sort permutation (maps flat → sorted);
    ``seg_first`` / ``seg_last``   sorted-index bounds of each segment;
    ``seg_cells``    the cell each segment describes;
    ``last_reset``   sorted index of the segment's last touch that found
                     the cell empty (``-1``: the cell was continuously
                     occupied since before the batch);
    ``final_values`` each touched cell's clock value at ``end_steps``.
    """

    def __init__(self, clock, cells: np.ndarray, steps: np.ndarray,
                 old_values: np.ndarray, end_steps: int):
        n = clock.n
        order = np.argsort(cells, kind="stable")
        sc = cells[order]
        ss = steps[order]
        first = np.empty(sc.size, dtype=bool)
        first[0] = True
        first[1:] = sc[1:] != sc[:-1]
        seg_first = np.flatnonzero(first)
        seg_last = np.append(seg_first[1:], sc.size) - 1
        seg_id = np.cumsum(first) - 1

        hits_at = sweep_hits(ss, sc, n)
        # A touch finds its cell empty iff the decrements since the
        # previous touch (or since the batch started, for the first
        # touch) cover the value the cell held then.
        empty = np.empty(sc.size, dtype=bool)
        empty[1:] = (hits_at[1:] - hits_at[:-1]) >= clock.max_value
        f = seg_first
        empty[f] = (hits_at[f] - sweep_hits(clock.steps_done, sc[f], n)) \
            >= old_values[sc[f]]
        last_reset = np.full(seg_first.size, -1, dtype=np.int64)
        where = np.flatnonzero(empty)
        np.maximum.at(last_reset, seg_id[where], where)

        self.order = order
        self.seg_first = seg_first
        self.seg_last = seg_last
        self.seg_cells = sc[seg_first]
        self.last_reset = last_reset
        self.final_values = snapshot_values(
            ss[seg_last], self.seg_cells, n, clock.max_value, end_steps
        )


def fuse_touch(clock, cells: np.ndarray, steps: np.ndarray,
               end_steps: int) -> int:
    """Fused batch of plain clock touches (BF+clock / BM+clock).

    ``cells``/``steps`` are flat aligned arrays in arrival order with
    non-decreasing ``steps``. Only the clock values are rewritten; the
    caller commits the cleaner position afterwards. Returns the number
    of cells the batch left expired (live before, zero after) so the
    caller can keep the clock's sweep telemetry consistent.
    """
    old, decayed = _decayed_values(clock, end_steps)
    last_set = np.full(clock.n, -1, dtype=np.int64)
    np.maximum.at(last_set, cells, steps)
    touched = np.flatnonzero(last_set >= 0)
    snap = snapshot_values(
        last_set[touched], touched, clock.n, clock.max_value, end_steps
    )
    decayed[touched] = snap
    prelude = _cleaned_prelude(clock, touched, snap)
    clock.load_values(decayed)
    return _cleaned_result(clock, prelude)


def fuse_timespan(clock, timestamps: np.ndarray, cells: np.ndarray,
                  steps: np.ndarray, stamps: np.ndarray,
                  end_steps: int) -> int:
    """Fused batch for BF-ts+clock: touches plus first-writer timestamps.

    ``stamps`` aligns with ``cells``/``steps`` and carries each touch's
    arrival time. Reproduces the scalar rule exactly: a touch writes its
    time only when the cell is empty, and expiry (including expiry that
    happens *between* touches of this batch) erases the timestamp.
    Returns the number of cells the batch left expired (see
    :func:`fuse_touch`).
    """
    old, decayed = _decayed_values(clock, end_steps)
    segs = _TouchSegments(clock, cells, steps, old, end_steps)
    seg_cells = segs.seg_cells

    has_reset = segs.last_reset >= 0
    sorted_stamps = stamps[segs.order]
    ts_new = np.where(
        has_reset,
        sorted_stamps[np.maximum(segs.last_reset, 0)],
        timestamps[seg_cells],
    )
    ts_new[segs.final_values == 0] = 0.0

    touched_mask = np.zeros(clock.n, dtype=bool)
    touched_mask[seg_cells] = True
    dead = ~touched_mask & (old > 0) & (decayed == 0)
    timestamps[dead] = 0.0
    timestamps[seg_cells] = ts_new

    decayed[seg_cells] = segs.final_values
    prelude = _cleaned_prelude(clock, seg_cells, segs.final_values)
    clock.load_values(decayed)
    return _cleaned_result(clock, prelude)


def fuse_countmin(clock, counters: np.ndarray, counter_max: int,
                  cells: np.ndarray, steps: np.ndarray,
                  end_steps: int) -> int:
    """Fused batch for CM+clock: saturating counter bumps plus touches.

    Each touch increments its cell's counter (clamped at
    ``counter_max``); expiry — before, between, or after the batch's
    touches — clears the counter, so a cell's final count is the number
    of touches since its last expiry, plus its pre-batch count if it
    never expired. Returns the number of cells the batch left expired
    (see :func:`fuse_touch`).
    """
    old, decayed = _decayed_values(clock, end_steps)
    segs = _TouchSegments(clock, cells, steps, old, end_steps)
    seg_cells = segs.seg_cells

    has_reset = segs.last_reset >= 0
    seg_len = segs.seg_last - segs.seg_first + 1
    base = np.where(has_reset, 0, counters[seg_cells].astype(np.int64))
    since = np.where(has_reset, segs.seg_last - segs.last_reset + 1, seg_len)
    ctr_new = np.minimum(base + since, counter_max)
    ctr_new[segs.final_values == 0] = 0

    touched_mask = np.zeros(clock.n, dtype=bool)
    touched_mask[seg_cells] = True
    dead = ~touched_mask & (old > 0) & (decayed == 0)
    counters[dead] = 0
    counters[seg_cells] = ctr_new.astype(counters.dtype)

    decayed[seg_cells] = segs.final_values
    prelude = _cleaned_prelude(clock, seg_cells, segs.final_values)
    clock.load_values(decayed)
    return _cleaned_result(clock, prelude)
