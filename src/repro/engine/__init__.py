"""Batch-ingestion engine: vectorised ``insert_many`` for every sketch.

The engine turns batches of items into sketch state through one of
three strategies — closed-form fused numpy application, the reference
per-item loop, or the deferred chunked scatter — chosen per batch so
that results are bit-identical to the scalar ``insert`` path on the
exact sweep modes. See :mod:`repro.engine.batch` for the orchestration
and :mod:`repro.engine.fused` for the closed-form math.
"""

from .batch import DEFAULT_MIN_FUSED, BatchEngine
from .fused import fuse_countmin, fuse_timespan, fuse_touch
from .scatter import scatter_by_shard, take_subset

__all__ = [
    "BatchEngine",
    "DEFAULT_MIN_FUSED",
    "fuse_touch",
    "fuse_timespan",
    "fuse_countmin",
    "scatter_by_shard",
    "take_subset",
]
