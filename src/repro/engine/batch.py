"""Batch-ingestion engine shared by all four Clock-sketch variants.

:class:`BatchEngine` is the one place that knows how to turn "a batch
of items with their arrival times" into sketch state. Every sketch owns
an engine and hands it pre-hashed cell indexes; the engine resolves the
batch's arrival times in bulk (:meth:`ClockSketchBase._insert_times_many`),
picks an application strategy, and commits the sketch's temporal
bookkeeping once the batch is applied:

- **fused** (exact sweep modes, batches of :data:`DEFAULT_MIN_FUSED`
  or more): closed-form application through the clock's kernel backend
  (``clock.kernels.fuse_*``, see :mod:`repro.kernels`) — bit-identical
  to the scalar loop under every backend, no per-item Python work;
- **loop** (exact modes, small batches): the reference per-item
  interleaving of ``advance`` and cell writes;
- **deferred** (deferred sweep modes): the one-cleaning-circle chunked
  scatter path, preserving those modes' documented relaxed-window
  semantics exactly.

Order-dependent updates that have no closed form — Count-Min's
conservative update — always take the loop path, so ``insert_many``
stays exactly equal to the equivalent ``insert`` loop there too.

The engine is stateless apart from its ``min_fused`` threshold, so
serialisation of a sketch ignores it entirely.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from ..errors import TimeError
from ..obs import names as _names
from ..obs import runtime as _obs
from ..obs import trace as _trace

__all__ = ["BatchEngine", "DEFAULT_MIN_FUSED"]

#: Smallest batch routed through the fused closed-form path. Below
#: this, the numpy setup (argsort, segment bookkeeping) costs more than
#: the per-item loop it replaces; the cutover is deliberately low
#: because both paths produce bit-identical state.
DEFAULT_MIN_FUSED = 16


class BatchEngine:
    """Applies whole insert batches to one sketch.

    Parameters
    ----------
    sketch:
        The owning :class:`~repro.core.base.ClockSketchBase` instance.
        The engine reads its window, clock, and side arrays, and is the
        only writer of its temporal counters during a batch.
    """

    __slots__ = ("sketch", "min_fused", "tap")

    def __init__(self, sketch):
        self.sketch = sketch
        self.min_fused = DEFAULT_MIN_FUSED
        #: Optional audit tap: ``tap(items, times_arr)`` called once per
        #: batch with the original stream items and their resolved
        #: arrival times, *before* the batch is applied (and outside the
        #: timed section, so engine latency histograms stay pure).
        #: Installed by ``ItemBatchMonitor.audited()``; None costs one
        #: attribute check per batch.
        self.tap = None

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------

    def _commit(self, times_arr: np.ndarray) -> None:
        """Record a fully-applied batch in the sketch's bookkeeping."""
        sketch = self.sketch
        sketch._items_inserted += len(times_arr)
        sketch._now = float(times_arr[-1])

    def _finish_fused(self, times_arr: np.ndarray, end_steps: int,
                      cleaned: int = 0) -> None:
        """Adopt the fused end state: cleaner position plus commit."""
        self.sketch.clock.sync_state(float(times_arr[-1]), end_steps,
                                     cleaned=cleaned)
        self._commit(times_arr)

    def _record(self, count: int, path: str, started: float) -> None:
        """Publish one applied batch to the obs registry (enabled only).

        ``record_batch`` counts the items into the sketch insert totals
        too, so this is a single recorder call per batch.
        """
        _obs.record_batch(type(self.sketch).__name__, count, path,
                          perf_counter() - started)

    def _ingest_loop(self, times_arr: np.ndarray, apply_one) -> None:
        """Reference path: per-item advance + cell writes, then commit.

        This is the library's one deliberate scalar loop over a stream
        batch — the semantic ground truth the fused path is
        property-tested against.
        """
        clock = self.sketch.clock
        for i, now in enumerate(times_arr):  # sketchlint: scalar-ok
            now = float(now)
            clock.advance(now)
            apply_one(i, now)
        self._commit(times_arr)

    def _ingest_deferred(self, times_arr: np.ndarray, scatter) -> None:
        """Deferred-mode path: one-cleaning-circle chunked scatters.

        Within one cleaning circle, touch order cannot affect deferred
        sweeps, so each chunk is committed, advanced, and scattered
        wholesale — the pure-Python stand-in for the paper's
        unsynchronised SIMD cleaning thread. Semantics (including the
        relaxed window guarantee at its edge) match the sweep mode's
        documentation; this path predates the engine and is preserved
        verbatim.
        """
        sketch = self.sketch
        clock = sketch.clock
        chunk = max(1, int(sketch.window.length) // clock.circles_per_window)
        total = len(times_arr)
        pos = 0
        while pos < total:
            end = min(pos + chunk, total)
            sketch._items_inserted += end - pos
            sketch._now = float(times_arr[end - 1])
            clock.advance(sketch._now)
            scatter(pos, end)
            pos = end

    # ------------------------------------------------------------------
    # Per-structure ingestion
    # ------------------------------------------------------------------

    def ingest_touch(self, index_matrix: np.ndarray, times=None,
                     items=None) -> None:
        """Batch of plain clock touches (BF+clock, BM+clock).

        ``index_matrix`` is ``(N, k)`` cell indexes in arrival order
        (bitmaps pass ``k = 1``); ``times`` follows ``insert_many``'s
        contract; ``items`` is the original stream batch, forwarded to
        the audit tap when one is installed.
        """
        sketch = self.sketch
        clock = sketch.clock
        count = len(index_matrix)
        times_arr = sketch._insert_times_many(count, times)
        if not count:
            return
        if self.tap is not None and items is not None:
            self.tap(items, times_arr)
        started = perf_counter() if _obs.ENABLED else 0.0
        with _trace.child_span(_names.SPAN_ENGINE_BATCH) as sp:
            if clock.is_deferred:

                def scatter(pos, end):
                    clock.touch(index_matrix[pos:end].ravel())

                self._ingest_deferred(times_arr, scatter)
                path = "deferred"
            elif count >= self.min_fused:
                steps = clock.step_targets(times_arr)
                end_steps = int(steps[-1])
                cleaned = clock.kernels.fuse_touch(
                    clock,
                    index_matrix.ravel(),
                    np.repeat(steps, index_matrix.shape[1]),
                    end_steps,
                    count_cleaned=_obs.ENABLED,
                )
                self._finish_fused(times_arr, end_steps, cleaned)
                path = "fused"
            else:
                self._ingest_loop(
                    times_arr, lambda i, now: clock.touch(index_matrix[i])
                )
                path = "loop"
            if sp.recording:
                sp.set("sketch", type(sketch).__name__)
                sp.set("path", path)
                sp.set("items", count)
        if _obs.ENABLED:
            self._record(count, path, started)

    def ingest_timespan(self, index_matrix: np.ndarray, times=None,
                        items=None) -> None:
        """Batch of touches plus first-writer timestamps (BF-ts+clock)."""
        sketch = self.sketch
        clock = sketch.clock
        timestamps = sketch.timestamps
        count = len(index_matrix)
        times_arr = sketch._insert_times_many(count, times)
        if not count:
            return
        if times_arr[0] <= 0:
            raise TimeError("time-span sketch requires positive stream times")
        if self.tap is not None and items is not None:
            self.tap(items, times_arr)
        k = index_matrix.shape[1]
        started = perf_counter() if _obs.ENABLED else 0.0
        with _trace.child_span(_names.SPAN_ENGINE_BATCH) as sp:
            if clock.is_deferred:

                def scatter(pos, end):
                    stamps = times_arr[pos:end]
                    flats = index_matrix[pos:end].ravel()
                    # First-writer-wins per cell: the minimum arrival
                    # time of the chunk's writers, applied only to empty
                    # cells (working over the chunk's unique cells keeps
                    # this O(chunk)).
                    uniq, inverse = np.unique(flats, return_inverse=True)
                    firsts = np.full(uniq.size, np.inf, dtype=np.float64)
                    np.minimum.at(firsts, inverse, np.repeat(stamps, k))
                    empty = timestamps[uniq] == 0.0
                    timestamps[uniq[empty]] = firsts[empty]
                    clock.touch(flats)

                self._ingest_deferred(times_arr, scatter)
                path = "deferred"
            elif count >= self.min_fused:
                steps = clock.step_targets(times_arr)
                end_steps = int(steps[-1])
                cleaned = clock.kernels.fuse_timespan(
                    clock,
                    timestamps,
                    index_matrix.ravel(),
                    np.repeat(steps, k),
                    np.repeat(times_arr, k),
                    end_steps,
                    count_cleaned=_obs.ENABLED,
                )
                self._finish_fused(times_arr, end_steps, cleaned)
                path = "fused"
            else:

                def apply_one(i, now):
                    row = index_matrix[i]
                    clock.touch(row)
                    for cell in row:
                        if timestamps[cell] == 0.0:
                            timestamps[cell] = now

                self._ingest_loop(times_arr, apply_one)
                path = "loop"
            if sp.recording:
                sp.set("sketch", type(sketch).__name__)
                sp.set("path", path)
                sp.set("items", count)
        if _obs.ENABLED:
            self._record(count, path, started)

    def ingest_countmin(self, flat_matrix: np.ndarray, times=None,
                        items=None) -> None:
        """Batch of counter bumps plus touches (CM+clock).

        Conservative update inspects the counters it is about to bump,
        making it order-dependent with no closed form — it always takes
        the loop path, so batch and scalar results stay exactly equal.
        """
        sketch = self.sketch
        clock = sketch.clock
        counters = sketch.counters
        count = len(flat_matrix)
        times_arr = sketch._insert_times_many(count, times)
        if not count:
            return
        if self.tap is not None and items is not None:
            self.tap(items, times_arr)
        started = perf_counter() if _obs.ENABLED else 0.0
        with _trace.child_span(_names.SPAN_ENGINE_BATCH) as sp:
            if clock.is_deferred and not sketch.conservative:
                counter_max = sketch.counter_max

                def scatter(pos, end):
                    flats = flat_matrix[pos:end].ravel()
                    # uint32 counters cannot wrap at these chunk sizes;
                    # clamp only the touched cells back to the ceiling.
                    np.add.at(counters, flats, 1)
                    touched = np.unique(flats)
                    over = touched[counters[touched] > counter_max]
                    if over.size:
                        counters[over] = counter_max
                    clock.touch(flats)

                self._ingest_deferred(times_arr, scatter)
                path = "deferred"
            elif not sketch.conservative and count >= self.min_fused:
                steps = clock.step_targets(times_arr)
                end_steps = int(steps[-1])
                cleaned = clock.kernels.fuse_countmin(
                    clock,
                    counters,
                    sketch.counter_max,
                    flat_matrix.ravel(),
                    np.repeat(steps, flat_matrix.shape[1]),
                    end_steps,
                    count_cleaned=_obs.ENABLED,
                )
                self._finish_fused(times_arr, end_steps, cleaned)
                path = "fused"
            else:

                def apply_one(i, now):
                    row = flat_matrix[i]
                    sketch._bump(row)
                    clock.touch(row)

                self._ingest_loop(times_arr, apply_one)
                path = "loop"
            if sp.recording:
                sp.set("sketch", type(sketch).__name__)
                sp.set("path", path)
                sp.set("items", count)
        if _obs.ENABLED:
            self._record(count, path, started)
