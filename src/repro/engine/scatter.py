"""Scatter-by-shard fan-out — moved to :mod:`repro.kernels`.

The batch fan-out primitives now live in the kernel-backend layer
(:mod:`repro.kernels.numpy_backend` holds the reference
implementations) and the shard router dispatches through its replicas'
``clock.kernels``. This module re-exports the numpy reference
functions so historical imports (``from repro.engine.scatter import
scatter_by_shard``) keep working.
"""

from __future__ import annotations

from ..kernels.numpy_backend import scatter_by_shard, take_subset

__all__ = ["scatter_by_shard", "take_subset"]
