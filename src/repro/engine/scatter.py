"""Scatter-by-shard fan-out of an ``insert_many`` batch.

The shard router partitions one arrival-ordered batch into per-shard
sub-batches: every item keeps its resolved global arrival time, and
each shard's sub-batch preserves the original stream order (it is a
subsequence of the batch). This is the batch-engine layer of
:mod:`repro.shard` — the per-shard sub-batches then flow through each
replica's ordinary :class:`~repro.engine.batch.BatchEngine` paths.
"""

from __future__ import annotations

import numpy as np

__all__ = ["scatter_by_shard", "take_subset"]


def take_subset(items, mask: np.ndarray):
    """Select the masked subset of a stream batch, preserving order.

    ``items`` may be a numpy key array (fancy-indexed, stays an array
    so the fully vectorised hashing paths keep applying) or any
    sequence of hashable stream items (returned as a list).
    """
    if isinstance(items, np.ndarray):
        return items[mask]
    if not isinstance(items, (list, tuple)):
        items = list(items)
    picked = np.flatnonzero(mask)
    return [items[i] for i in picked]  # sketchlint: scalar-ok


def scatter_by_shard(items, times_arr: np.ndarray, shard_ids: np.ndarray,
                     ) -> "list[tuple[int, object, np.ndarray]]":
    """Split one batch into per-shard ``(shard, items, times)`` tuples.

    ``shard_ids`` aligns with ``items`` (one routing id per item, from
    :class:`~repro.hashing.ShardSelector`); ``times_arr`` holds the
    already-resolved global arrival times. Only shards that actually
    receive items appear in the result, in ascending shard order; the
    concatenation of all sub-batches in time order is exactly the input
    batch.
    """
    shard_ids = np.asarray(shard_ids, dtype=np.int64)
    out: "list[tuple[int, object, np.ndarray]]" = []
    for shard in np.unique(shard_ids):
        mask = shard_ids == shard
        out.append((int(shard), take_subset(items, mask), times_arr[mask]))
    return out
