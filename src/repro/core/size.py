"""CM+clock — item batch size (paper §4.4).

A Count-Min sketch of ``d`` rows by ``w`` counters, each counter paired
with an ``s``-bit clock cell. Every occurrence increments the ``d``
hashed counters and refreshes their clocks; when a clock expires the
counter is erased, so a counter only ever accumulates occurrences of
the *current* batches mapping to it. The size estimate is the usual
Count-Min minimum over the ``d`` rows, which (within the window
guarantee) never underestimates the true batch size.
"""

from __future__ import annotations

import numpy as np

from ..engine import BatchEngine
from ..errors import ConfigurationError
from ..hashing import IndexDeriver
from ..obs import runtime as _obs
from ..timebase import WindowSpec
from ..units import parse_memory
from .base import ClockSketchBase
from .clockarray import ClockArray

__all__ = ["ClockCountMin"]

#: §6.5 uses 16-bit counters (b = 16 in §5.4).
DEFAULT_COUNTER_BITS = 16

#: §5.4/§6.5: the optimal clock width is 3-4 at small memory and 8 at
#: 64 KB+; 4 is a safe default.
DEFAULT_S_SIZE = 4


class ClockCountMin(ClockSketchBase):
    """Clock-sketch for item batch size (CM+clock).

    Parameters
    ----------
    width:
        Counters per row (``w``).
    depth:
        Number of rows (``d``, the paper's ``k``).
    s:
        Bits per clock cell.
    window:
        The sliding window ``T``.
    counter_bits:
        Counter width ``b``; counters saturate at ``2^b - 1`` instead of
        overflowing.
    conservative:
        Enable conservative update (Estan & Varghese): an insert only
        increments the hashed counters that equal the current minimum,
        which keeps the estimate an overestimate while shrinking
        collision error — a classic Count-Min refinement the paper
        leaves on the table (measured in the A5 ablation).
    sanitize:
        Wrap this instance with the runtime invariant checks of
        :mod:`repro.qa.sanitizer` (see ``docs/qa.md``).

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> cm = ClockCountMin(width=256, depth=3, s=4, window=count_window(64))
    >>> for _ in range(5):
    ...     cm.insert("key")
    >>> cm.query("key")
    5
    """

    def __init__(self, width: int, depth: int, s: int, window: WindowSpec,
                 counter_bits: int = DEFAULT_COUNTER_BITS, seed: int = 0,
                 sweep_mode: str = "vector", conservative: bool = False,
                 sanitize: bool = False):
        super().__init__(window)
        self.conservative = bool(conservative)
        if depth < 1:
            raise ConfigurationError(f"depth must be >= 1, got {depth}")
        if not 1 <= counter_bits <= 32:
            raise ConfigurationError(
                f"counter bits must be in 1..32, got {counter_bits}"
            )
        self.width = int(width)
        self.depth = int(depth)
        self.s = int(s)
        self.counter_bits = int(counter_bits)
        self.counter_max = (1 << counter_bits) - 1
        # Counters are stored flat, row-major, sharing index space with
        # the clock array so one cleaning pointer sweeps everything.
        self.counters = np.zeros(self.width * self.depth, dtype=np.uint32)
        self.clock = ClockArray(
            self.width * self.depth, s, window,
            on_expire=self._clear_cells, sweep_mode=sweep_mode,
        )
        # One independent hash family per row, as in a classic CM sketch.
        self._derivers = [
            IndexDeriver(n=self.width, k=1, seed=seed + 1000003 * row)
            for row in range(self.depth)
        ]
        self.seed = seed
        self.engine = BatchEngine(self)
        if sanitize:
            from ..qa.sanitizer import sanitize_sketch
            sanitize_sketch(self)

    def _clear_cells(self, expired: np.ndarray) -> None:
        self.counters[expired] = 0

    @classmethod
    def from_memory(cls, memory, window: WindowSpec, depth: int = 3,
                    s: int = DEFAULT_S_SIZE,
                    counter_bits: int = DEFAULT_COUNTER_BITS, seed: int = 0,
                    sweep_mode: str = "vector",
                    conservative: bool = False) -> "ClockCountMin":
        """Build a sketch fitting a memory budget of ``d*w*(s+b)`` bits."""
        bits = parse_memory(memory)
        width = bits // (depth * (s + counter_bits))
        if width < 1:
            raise ConfigurationError(
                f"memory budget {bits} bits cannot hold one counter per row"
            )
        return cls(width=width, depth=depth, s=s, window=window,
                   counter_bits=counter_bits, seed=seed,
                   sweep_mode=sweep_mode, conservative=conservative)

    def _flat_indexes(self, item) -> "list[int]":
        return [
            row * self.width + deriver.indexes(item)[0]
            for row, deriver in enumerate(self._derivers)
        ]

    def _bump(self, flats) -> None:
        """Increment the selected counters (saturating, maybe conservative)."""
        counters = self.counters
        counter_max = self.counter_max
        if self.conservative:
            floor = min(counters[flat] for flat in flats)
            target = min(floor + 1, counter_max)
            for flat in flats:
                if counters[flat] < target:
                    counters[flat] = target
        else:
            for flat in flats:
                if counters[flat] < counter_max:
                    counters[flat] += 1

    def _flat_matrix(self, items) -> np.ndarray:
        """``(N, depth)`` flat cell indexes for a batch of items."""
        offsets = np.arange(self.depth, dtype=np.int64) * self.width
        columns = np.stack(
            [d.bulk_single_items(items) for d in self._derivers], axis=1
        )
        return columns + offsets[None, :]

    def insert(self, item, t=None) -> None:
        """Record an occurrence of ``item``, growing its batch counters.

        Semantically the batch-size-1 case of :meth:`insert_many`
        (bit-identical final state, property-tested).
        """
        now = self._insert_time(t)
        self.clock.advance(now)
        flats = self._flat_indexes(item)
        self._bump(flats)
        self.clock.touch(flats)

    def insert_many(self, items, times=None) -> None:
        """Insert a batch of items through the batch engine.

        Accepts integer key arrays or any sequence of hashable items;
        bit-identical to a loop of :meth:`insert` calls on the exact
        sweep modes (conservative update, being order-dependent, always
        replays the per-item loop). With a deferred cleaner and plain
        updates, inserts are chunk-vectorised: within one cleaning
        circle the counter increments commute, so whole chunks go
        through ``np.add.at`` — the stand-in for the paper's
        SIMD+thread mode.
        """
        self.engine.ingest_countmin(self._flat_matrix(items), times,
                                    items=items)

    def query(self, item, t=None) -> int:
        """Estimated size of the item's active batch (0 when inactive)."""
        now = self._query_time(t)
        self.clock.advance(now)
        return int(min(self.counters[flat] for flat in self._flat_indexes(item)))

    def query_many(self, items, t=None) -> np.ndarray:
        """Vectorised :meth:`query` over a batch of items."""
        now = self._query_time(t)
        self.clock.advance(now)
        return np.min(self.counters[self._flat_matrix(items)], axis=1).astype(np.int64)

    def snapshot(self) -> "ClockCountMin":
        """Deep copy of the current state (cells, counters, bookkeeping)."""
        clone = ClockCountMin(width=self.width, depth=self.depth, s=self.s,
                              window=self.window,
                              counter_bits=self.counter_bits, seed=self.seed,
                              sweep_mode=self.clock.sweep_mode,
                              conservative=self.conservative)
        self._copy_state_into(clone)
        clone.counters[:] = self.counters
        return clone

    def merge(self, other: "ClockCountMin") -> "ClockCountMin":
        """Fold another CM sketch in: counters sum, clocks max.

        Each side counted disjoint occurrences, so per-row counters add
        (saturating at the counter ceiling instead of wrapping); clock
        cells merge by element-wise max, and any counter whose merged
        clock is zero (both sides expired) is erased. The merged
        estimate stays an overestimate of the truth; see
        ``docs/sharding.md`` for the exact-vs-conservative bounds.
        Returns ``self``.
        """
        self._merge_check(
            other, ("width", "depth", "s", "counter_bits", "window", "seed")
        )
        summed = self.counters.astype(np.int64) + other.counters.astype(np.int64)
        np.minimum(summed, self.counter_max, out=summed)
        self.counters[:] = summed.astype(self.counters.dtype)
        self._merge_commit(other)
        self.counters[self.clock.values == 0] = 0
        return self

    def memory_bits(self) -> int:
        """Accounted footprint: ``d * w`` cells of ``s + b`` bits."""
        return self.width * self.depth * (self.s + self.counter_bits)

    def metrics(self) -> dict:
        """Operational snapshot; publishes gauges while obs is enabled."""
        fill = self.clock.fill_ratio()
        live_counters = int(np.count_nonzero(self.counters))
        saturated = int(np.count_nonzero(self.counters >= self.counter_max))
        if _obs.ENABLED:
            name = type(self).__name__
            _obs.publish_sketch(name, self.memory_bits(), fill)
            _obs.sample_clock(self.clock, labels={"sketch": name})
        return {
            "task": "size",
            "sketch": type(self).__name__,
            "memory_bits": self.memory_bits(),
            "items_inserted": self.items_inserted,
            "fill_ratio": fill,
            "s": self.s,
            "depth": self.depth,
            "width": self.width,
            "live_counters": live_counters,
            "saturated_counters": saturated,
            "sweep": self.clock.sweep_telemetry(),
        }

    def __repr__(self) -> str:
        return (
            f"ClockCountMin(width={self.width}, depth={self.depth}, "
            f"s={self.s}, b={self.counter_bits}, window={self.window})"
        )
