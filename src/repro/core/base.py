"""Shared plumbing for the four Clock-sketch applications.

Each application (activeness, cardinality, time span, size) is a
classic sketch whose cells carry ``s``-bit clock cells, driven by one
:class:`~repro.core.clockarray.ClockArray`. This base class centralises
the temporal conventions:

- **Count-based** windows: the ``i``-th inserted item arrives at time
  ``i`` (1-based); ``insert`` takes no timestamp and queries default to
  "after the latest insert".
- **Time-based** windows: every ``insert`` must carry a timestamp, and
  queries may carry one (defaulting to the latest time seen).

The cleaning pointer is advanced lazily to the operation's time before
the operation executes, which reproduces the paper's concurrent
cleaning thread deterministically.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, TimeError
from ..obs import runtime as _obs
from ..timebase import WindowSpec


class ClockSketchBase:
    """Temporal bookkeeping shared by all Clock-sketch variants."""

    #: Sharding escape hatch: a count-based sketch normally derives item
    #: times from its own insert counter, but a shard replica sees only
    #: a subsequence of the stream and must be told each item's *global*
    #: arrival position. The shard router flips this flag on its
    #: replicas so ``_insert_times_many`` accepts an explicit ``times``
    #: array even for count-based windows (validated, non-decreasing);
    #: plain sketches keep rejecting one.
    _accepts_global_times = False

    def __init__(self, window: WindowSpec):
        self.window = window
        self._items_inserted = 0
        self._now = 0.0

    @property
    def items_inserted(self) -> int:
        """Number of items inserted so far."""
        return self._items_inserted

    @property
    def now(self) -> float:
        """The current stream time (item count or timestamp)."""
        return self._now

    def _insert_time(self, t) -> float:
        """Resolve and record the time of an insert.

        Stream times are non-decreasing: ``t`` equal to the current time
        is explicitly allowed (ties are routine — batches of items often
        share one timestamp); only a strictly smaller ``t`` raises
        :class:`~repro.errors.TimeError`.
        """
        if self.window.is_count_based:
            if t is not None:
                raise TimeError(
                    "count-based sketches take no insert timestamp; "
                    "time is the item count"
                )
            self._items_inserted += 1
            self._now = float(self._items_inserted)
            if _obs.ENABLED:
                _obs.record_insert(type(self).__name__)
            return self._now
        if t is None:
            raise TimeError("time-based sketches require an insert timestamp")
        if t < self._now:
            raise TimeError(
                f"time moved backwards: {t} < {self._now} "
                "(equal timestamps are allowed; strictly smaller are not)"
            )
        self._items_inserted += 1
        self._now = float(t)
        if _obs.ENABLED:
            _obs.record_insert(type(self).__name__)
        return self._now

    def _insert_times_many(self, count: int, times) -> np.ndarray:
        """Resolve a whole batch of insert times in one vectorised pass.

        The array twin of :meth:`_insert_time`: applies the same
        temporal rules to ``count`` items at once and returns the
        per-item arrival times as ``float64``, *without* mutating the
        sketch — callers commit the batch once it is applied, so a
        rejected batch leaves the sketch untouched.

        Count-based windows take ``times=None`` (items arrive at
        consecutive counts); time-based windows require a non-decreasing
        ``times`` array whose first entry is not before the current
        time. Ties — runs of equal timestamps — are allowed, exactly as
        in the scalar path.
        """
        if self.window.is_count_based:
            if times is not None and not self._accepts_global_times:
                raise TimeError(
                    "count-based sketches take no insert timestamp; "
                    "time is the item count"
                )
            if times is not None:
                # A shard replica receiving global arrival positions:
                # validate exactly like the time-based path so the step
                # schedule stays the plain sketch's integer arithmetic.
                resolved = np.asarray(times, dtype=np.float64)
                if resolved.ndim != 1 or resolved.shape[0] != count:
                    raise ConfigurationError(
                        f"times must align with the {count} items, "
                        f"got shape {resolved.shape}"
                    )
                if count:
                    if resolved[0] <= self._now:
                        raise TimeError(
                            f"global arrival positions must advance: "
                            f"{resolved[0]} <= {self._now}"
                        )
                    if np.any(resolved[1:] <= resolved[:-1]):
                        raise TimeError(
                            "global arrival positions must be strictly "
                            "increasing within a batch"
                        )
                return resolved
            start = self._items_inserted
            return np.arange(start + 1, start + count + 1, dtype=np.float64)
        if times is None:
            raise ConfigurationError("time-based insert_many requires times")
        resolved = np.asarray(times, dtype=np.float64)
        if resolved.ndim != 1 or resolved.shape[0] != count:
            raise ConfigurationError(
                f"times must align with the {count} items, "
                f"got shape {resolved.shape}"
            )
        if count:
            if resolved[0] < self._now:
                raise TimeError(
                    f"time moved backwards: {resolved[0]} < {self._now} "
                    "(equal timestamps are allowed; strictly smaller are not)"
                )
            if np.any(resolved[1:] < resolved[:-1]):
                raise TimeError(
                    "insert times must be non-decreasing within a batch"
                )
        return resolved

    # ------------------------------------------------------------------
    # Merge / snapshot plumbing (shared by all four sketches)
    # ------------------------------------------------------------------

    def _merge_check(self, other, attrs) -> None:
        """Validate that ``other`` is structurally merge-compatible.

        Merging requires an identical configuration (same cells,
        hashes, seed, window) and cleaning pointers at the same
        position — i.e. both sketches synchronised to a common stream
        time, the Flink-style barrier of paper §7.
        """
        if type(other) is not type(self):
            raise ConfigurationError(
                f"cannot merge {type(self).__name__} with "
                f"{type(other).__name__}"
            )
        for attr in attrs:
            va, vb = getattr(self, attr), getattr(other, attr)
            if va != vb:
                raise ConfigurationError(
                    f"cannot merge: {attr} differs ({va} != {vb})"
                )
        if self.clock.steps_done != other.clock.steps_done:
            raise ConfigurationError(
                "cannot merge: cleaning pointers disagree "
                f"({self.clock.steps_done} != {other.clock.steps_done} "
                "steps); synchronise both sketches to the same stream "
                "time first"
            )

    def _merge_commit(self, other) -> None:
        """Union the clock state and temporal bookkeeping of ``other``.

        Clock cells merge by element-wise max through the validating
        :meth:`~repro.core.clockarray.ClockArray.merge_max`; the merged
        sketch counts both sides' items and sits at the later of the
        two stream times.
        """
        self.clock.merge_max(other.clock.values)
        if other.clock.now > self.clock.now:
            self.clock.sync_state(other.clock.now, self.clock.steps_done)
        self._now = max(self._now, other._now)
        self._items_inserted += other._items_inserted

    def _copy_state_into(self, clone) -> None:
        """Copy clock cells and temporal bookkeeping into a fresh clone.

        Used by each sketch's ``snapshot()``: ``clone`` must be a
        pristine instance with the same configuration. Cell images go
        through the validating
        :meth:`~repro.core.clockarray.ClockArray.load_values` /
        :meth:`~repro.core.clockarray.ClockArray.sync_state` entry
        points, never raw buffer writes.
        """
        clone.clock.load_values(self.clock.values)
        clone.clock.sync_state(self.clock.now, self.clock.steps_done)
        clone._now = self._now
        clone._items_inserted = self._items_inserted

    def _query_time(self, t) -> float:
        """Resolve the time of a query (defaults to the latest time).

        An explicit future ``t`` fast-forwards the structure: for
        count-based windows it also advances the item counter, so later
        inserts continue from the queried instant (the stream idled).
        """
        if t is None:
            if _obs.ENABLED:
                _obs.record_query(type(self).__name__)
            return self._now
        if self.window.is_count_based and t != int(t):
            raise TimeError(f"count-based query time must be an integer, got {t}")
        if t < self._now:
            raise TimeError(f"time moved backwards: {t} < {self._now}")
        self._now = float(t)
        if self.window.is_count_based:
            self._items_inserted = max(self._items_inserted, int(t))
        if _obs.ENABLED:
            _obs.record_query(type(self).__name__)
        return self._now
