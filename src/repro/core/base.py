"""Shared plumbing for the four Clock-sketch applications.

Each application (activeness, cardinality, time span, size) is a
classic sketch whose cells carry ``s``-bit clock cells, driven by one
:class:`~repro.core.clockarray.ClockArray`. This base class centralises
the temporal conventions:

- **Count-based** windows: the ``i``-th inserted item arrives at time
  ``i`` (1-based); ``insert`` takes no timestamp and queries default to
  "after the latest insert".
- **Time-based** windows: every ``insert`` must carry a timestamp, and
  queries may carry one (defaulting to the latest time seen).

The cleaning pointer is advanced lazily to the operation's time before
the operation executes, which reproduces the paper's concurrent
cleaning thread deterministically.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, TimeError
from ..obs import runtime as _obs
from ..timebase import WindowSpec


class ClockSketchBase:
    """Temporal bookkeeping shared by all Clock-sketch variants."""

    def __init__(self, window: WindowSpec):
        self.window = window
        self._items_inserted = 0
        self._now = 0.0

    @property
    def items_inserted(self) -> int:
        """Number of items inserted so far."""
        return self._items_inserted

    @property
    def now(self) -> float:
        """The current stream time (item count or timestamp)."""
        return self._now

    def _insert_time(self, t) -> float:
        """Resolve and record the time of an insert.

        Stream times are non-decreasing: ``t`` equal to the current time
        is explicitly allowed (ties are routine — batches of items often
        share one timestamp); only a strictly smaller ``t`` raises
        :class:`~repro.errors.TimeError`.
        """
        if self.window.is_count_based:
            if t is not None:
                raise TimeError(
                    "count-based sketches take no insert timestamp; "
                    "time is the item count"
                )
            self._items_inserted += 1
            self._now = float(self._items_inserted)
            if _obs.ENABLED:
                _obs.record_insert(type(self).__name__)
            return self._now
        if t is None:
            raise TimeError("time-based sketches require an insert timestamp")
        if t < self._now:
            raise TimeError(
                f"time moved backwards: {t} < {self._now} "
                "(equal timestamps are allowed; strictly smaller are not)"
            )
        self._items_inserted += 1
        self._now = float(t)
        if _obs.ENABLED:
            _obs.record_insert(type(self).__name__)
        return self._now

    def _insert_times_many(self, count: int, times) -> np.ndarray:
        """Resolve a whole batch of insert times in one vectorised pass.

        The array twin of :meth:`_insert_time`: applies the same
        temporal rules to ``count`` items at once and returns the
        per-item arrival times as ``float64``, *without* mutating the
        sketch — callers commit the batch once it is applied, so a
        rejected batch leaves the sketch untouched.

        Count-based windows take ``times=None`` (items arrive at
        consecutive counts); time-based windows require a non-decreasing
        ``times`` array whose first entry is not before the current
        time. Ties — runs of equal timestamps — are allowed, exactly as
        in the scalar path.
        """
        if self.window.is_count_based:
            if times is not None:
                raise TimeError(
                    "count-based sketches take no insert timestamp; "
                    "time is the item count"
                )
            start = self._items_inserted
            return np.arange(start + 1, start + count + 1, dtype=np.float64)
        if times is None:
            raise ConfigurationError("time-based insert_many requires times")
        resolved = np.asarray(times, dtype=np.float64)
        if resolved.ndim != 1 or resolved.shape[0] != count:
            raise ConfigurationError(
                f"times must align with the {count} items, "
                f"got shape {resolved.shape}"
            )
        if count:
            if resolved[0] < self._now:
                raise TimeError(
                    f"time moved backwards: {resolved[0]} < {self._now} "
                    "(equal timestamps are allowed; strictly smaller are not)"
                )
            if np.any(resolved[1:] < resolved[:-1]):
                raise TimeError(
                    "insert times must be non-decreasing within a batch"
                )
        return resolved

    def _query_time(self, t) -> float:
        """Resolve the time of a query (defaults to the latest time).

        An explicit future ``t`` fast-forwards the structure: for
        count-based windows it also advances the item counter, so later
        inserts continue from the queried instant (the stream idled).
        """
        if t is None:
            if _obs.ENABLED:
                _obs.record_query(type(self).__name__)
            return self._now
        if self.window.is_count_based and t != int(t):
            raise TimeError(f"count-based query time must be an integer, got {t}")
        if t < self._now:
            raise TimeError(f"time moved backwards: {t} < {self._now}")
        self._now = float(t)
        if self.window.is_count_based:
            self._items_inserted = max(self._items_inserted, int(t))
        if _obs.ENABLED:
            _obs.record_query(type(self).__name__)
        return self._now
