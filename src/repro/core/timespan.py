"""BF-ts+clock — item batch time span (paper §4.3).

A Bloom filter whose cells each carry an ``s``-bit clock cell *and* a
64-bit timestamp sketch cell. The timestamp records the arrival of the
first item of the batch currently occupying the cell: it is written
only when the cell is empty (timestamp zero) and erased when the clock
expires. Querying an active batch returns ``t_cur - t_begin`` where
``t_begin`` is the *newest* of the ``k`` hashed timestamps — collisions
can only make a cell's timestamp older than the batch start, so taking
the newest yields an answer that is either exact or an overestimate of
the span (never an underestimate of ``t_begin``).

Timestamp zero is the "empty" sentinel, so stream times must be
positive; count-based streams (items at times 1, 2, ...) satisfy this
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine import BatchEngine
from ..errors import TimeError
from ..hashing import IndexDeriver
from ..obs import runtime as _obs
from ..timebase import WindowSpec
from ..units import parse_memory
from .base import ClockSketchBase
from .clockarray import ClockArray
from .params import cells_for_memory

__all__ = ["ClockTimeSpanSketch", "TimeSpanResult", "TimeSpanBatchResult"]

#: §5.3/§6.4: the optimal clock width lies in [8, 64] and is 8 at the
#: paper's reference configuration (M = 128 KB, W = 4096).
DEFAULT_S_TIMESPAN = 8

#: The paper stores 64-bit timestamps (t = 64 in §5.3).
TIMESTAMP_BITS = 64


@dataclass(frozen=True)
class TimeSpanResult:
    """Answer to a time-span query.

    ``active`` is False when any hashed clock is zero (batch inactive);
    ``span``/``begin`` are then None.
    """

    active: bool
    span: "float | None" = None
    begin: "float | None" = None


@dataclass(frozen=True)
class TimeSpanBatchResult:
    """Vectorised answer to a batch of time-span queries.

    Arrays align with the queried items: ``active`` is boolean;
    ``span``/``begin`` are float64 and hold NaN where the batch is
    inactive. Indexing yields the scalar :class:`TimeSpanResult` for
    one item.
    """

    active: np.ndarray
    span: np.ndarray
    begin: np.ndarray

    def __len__(self) -> int:
        return len(self.active)

    def __getitem__(self, i: int) -> TimeSpanResult:
        if not self.active[i]:
            return TimeSpanResult(active=False)
        return TimeSpanResult(
            active=True, span=float(self.span[i]), begin=float(self.begin[i])
        )


class ClockTimeSpanSketch(ClockSketchBase):
    """Clock-sketch for item batch time span (BF-ts+clock).

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> ts = ClockTimeSpanSketch(n=512, k=2, s=8, window=count_window(64))
    >>> for _ in range(10):
    ...     ts.insert("job-7")
    >>> ts.query("job-7").span
    9.0
    """

    def __init__(self, n: int, k: int, s: int, window: WindowSpec,
                 seed: int = 0, sweep_mode: str = "vector",
                 sanitize: bool = False):
        super().__init__(window)
        self.s = int(s)
        self.k = int(k)
        self.timestamps = np.zeros(n, dtype=np.float64)
        self.clock = ClockArray(
            n, s, window, on_expire=self._clear_cells, sweep_mode=sweep_mode
        )
        self.deriver = IndexDeriver(n=n, k=k, seed=seed)
        self.seed = seed
        self.engine = BatchEngine(self)
        if sanitize:
            from ..qa.sanitizer import sanitize_sketch
            sanitize_sketch(self)

    def _clear_cells(self, expired: np.ndarray) -> None:
        self.timestamps[expired] = 0.0

    @classmethod
    def from_memory(cls, memory, window: WindowSpec, k: int = 2,
                    s: int = DEFAULT_S_TIMESPAN, seed: int = 0,
                    sweep_mode: str = "vector") -> "ClockTimeSpanSketch":
        """Build a sketch that fits a memory budget of clock+timestamp cells."""
        bits = parse_memory(memory)
        n = cells_for_memory(bits, s + TIMESTAMP_BITS)
        return cls(n=n, k=k, s=s, window=window, seed=seed, sweep_mode=sweep_mode)

    @property
    def n(self) -> int:
        """Number of (clock, timestamp) cell pairs."""
        return self.clock.n

    def insert(self, item, t=None) -> None:
        """Record an occurrence of ``item``; starts a batch if cells are empty.

        Semantically the batch-size-1 case of :meth:`insert_many`
        (bit-identical final state, property-tested).
        """
        now = self._insert_time(t)
        if now <= 0:
            raise TimeError("time-span sketch requires positive stream times")
        self.clock.advance(now)
        idxs = self.deriver.indexes(item)
        self.clock.touch(idxs)
        ts = self.timestamps
        for i in idxs:
            if ts[i] == 0.0:
                ts[i] = now

    def insert_many(self, items, times=None) -> None:
        """Insert a batch of items through the batch engine.

        Accepts integer key arrays or any sequence of hashable items;
        bit-identical to a loop of :meth:`insert` calls on the exact
        sweep modes. With a deferred cleaner, inserts are
        chunk-vectorised: within a cleaning circle, "write the
        timestamp if the cell is empty" reduces to a per-cell minimum
        over the chunk's arrival times.
        """
        self.engine.ingest_timespan(self.deriver.bulk_items(items), times,
                                    items=items)

    def query(self, item, t=None) -> TimeSpanResult:
        """Time span of the item's batch at time ``t`` (or the latest time)."""
        now = self._query_time(t)
        self.clock.advance(now)
        idxs = self.deriver.indexes(item)
        if not self.clock.are_nonzero(idxs):
            return TimeSpanResult(active=False)
        begin = float(np.max(self.timestamps[idxs]))
        return TimeSpanResult(active=True, span=now - begin, begin=begin)

    def query_many(self, items, t=None) -> TimeSpanBatchResult:
        """Vectorised :meth:`query` over a batch of items.

        Item ``i`` gets exactly the scalar answer: active iff all its
        ``k`` clocks are non-zero, with ``begin`` the newest of its
        hashed timestamps and ``span = t - begin``; inactive items hold
        NaN in both float arrays.
        """
        now = self._query_time(t)
        self.clock.advance(now)
        index_matrix = self.deriver.bulk_items(items)
        active = np.all(self.clock.values[index_matrix] > 0, axis=1)
        begin = np.max(self.timestamps[index_matrix], axis=1)
        span = now - begin
        begin[~active] = np.nan
        span[~active] = np.nan
        return TimeSpanBatchResult(active=active, span=span, begin=begin)

    def snapshot(self) -> "ClockTimeSpanSketch":
        """Deep copy of the current state (cells, stamps, bookkeeping)."""
        clone = ClockTimeSpanSketch(n=self.n, k=self.k, s=self.s,
                                    window=self.window, seed=self.seed,
                                    sweep_mode=self.clock.sweep_mode)
        self._copy_state_into(clone)
        clone.timestamps[:] = self.timestamps
        return clone

    def merge(self, other: "ClockTimeSpanSketch") -> "ClockTimeSpanSketch":
        """Fold another span sketch in: first-writer-wins timestamps.

        Clock cells merge by element-wise max; a cell live on both
        sides keeps the *older* (minimum) of the two timestamps, and a
        cell live on one side keeps that side's stamp. First-writer-
        wins is the only direction that preserves the sketch's span
        contract: a cell's stamp may only ever be **older** than the
        start of any batch currently using it (exactly as collisions
        already behave within one sketch), so the per-key maximum over
        ``k`` merged stamps still never starts after the true batch
        begin — spans stay overestimates. Taking the newer stamp
        instead could report a span *shorter* than the truth whenever
        two shards' batches collide in a cell. Returns ``self``.
        """
        self._merge_check(other, ("n", "k", "s", "window", "seed"))
        mine, theirs = self.timestamps, other.timestamps
        both = (mine > 0.0) & (theirs > 0.0)
        only_theirs = (mine == 0.0) & (theirs > 0.0)
        mine[both] = np.minimum(mine[both], theirs[both])
        mine[only_theirs] = theirs[only_theirs]
        self._merge_commit(other)
        return self

    def memory_bits(self) -> int:
        """Accounted footprint: ``n`` cells of ``s + 64`` bits."""
        return self.n * (self.s + TIMESTAMP_BITS)

    def metrics(self) -> dict:
        """Operational snapshot; publishes gauges while obs is enabled."""
        fill = self.clock.fill_ratio()
        stamped = int(np.count_nonzero(self.timestamps))
        if _obs.ENABLED:
            name = type(self).__name__
            _obs.publish_sketch(name, self.memory_bits(), fill)
            _obs.sample_clock(self.clock, labels={"sketch": name})
        return {
            "task": "span",
            "sketch": type(self).__name__,
            "memory_bits": self.memory_bits(),
            "items_inserted": self.items_inserted,
            "fill_ratio": fill,
            "k": self.k,
            "s": self.s,
            "stamped_cells": stamped,
            "sweep": self.clock.sweep_telemetry(),
        }

    def __repr__(self) -> str:
        return (
            f"ClockTimeSpanSketch(n={self.n}, k={self.k}, s={self.s}, "
            f"window={self.window})"
        )
