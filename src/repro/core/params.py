"""Parameter selection for the Clock-sketch applications (paper §5).

Given a memory budget and a window, §5 derives the optimal number of
hash functions ``k`` and clock-cell width ``s`` for each task. The full
closed-form error models live in :mod:`repro.analysis`; this module
holds the small helpers the sketch constructors call directly.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from .clockarray import circles_per_window_for

__all__ = [
    "active_load",
    "error_window_length",
    "optimal_k_membership",
    "cells_for_memory",
    "OPTIMAL_S_MEMBERSHIP",
]

# §5.1 proves the membership FPR is minimised at the smallest legal
# clock width. (s = 2 gives the most cells per bit; the wider error
# window is outweighed by the lower collision rate.)
OPTIMAL_S_MEMBERSHIP = 2


def active_load(window_length: float, s: int) -> float:
    """Expected number of "live" elements a membership sketch carries.

    §5.1: with window ``T`` and clock width ``s``, outdated elements in
    the error window contribute half-valid hash mappings, for an
    effective load of ``T * (1 + 1 / (2 * (2^s - 2)))``.
    """
    if s < 2:
        raise ConfigurationError(f"clock cell size must be >= 2, got {s}")
    return window_length * (1.0 + 1.0 / (2.0 * circles_per_window_for(s)))


def error_window_length(window_length: float, s: int) -> float:
    """Length of the residual error window, ``T / (2^s - 2)``.

    §4's central accuracy statement: after a batch expires, its cells
    may linger (stay non-zero) for at most one cleaning circle beyond
    the window — a stretch of this length in which stale positives are
    legitimate. The accuracy auditor uses it to separate "residual"
    stale keys (positives allowed) from genuinely expired ones.
    """
    if s < 2:
        raise ConfigurationError(f"clock cell size must be >= 2, got {s}")
    if window_length <= 0:
        raise ConfigurationError(
            f"window length must be positive, got {window_length}"
        )
    return window_length / circles_per_window_for(s)


def optimal_k_membership(n: int, window_length: float, s: int) -> int:
    """Optimal hash count for BF+clock (§5.1).

    Mirrors the classic Bloom-filter optimum with the effective load in
    place of the true cardinality: ``k* = n ln2 / load``. Clamped to at
    least 1 and at most 30 (beyond which pure insert cost dominates any
    accuracy gain).
    """
    load = active_load(window_length, s)
    k = round(n * math.log(2) / load)
    return max(1, min(30, k))


def cells_for_memory(memory_bits: int, bits_per_cell: int) -> int:
    """Number of cells a memory budget affords, validating it is >= 1."""
    if bits_per_cell <= 0:
        raise ConfigurationError(f"bits per cell must be positive, got {bits_per_cell}")
    n = memory_bits // bits_per_cell
    if n < 1:
        raise ConfigurationError(
            f"memory budget of {memory_bits} bits cannot hold a single "
            f"{bits_per_cell}-bit cell"
        )
    return n
