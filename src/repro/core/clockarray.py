"""The clock cell array and its cleaning pointer (paper §3.2).

A :class:`ClockArray` is ``n`` cells of ``s`` bits each, viewed as a
cyclic queue. Inserting an item sets its hashed cells to the maximum
value ``2^s - 1``; a cleaning pointer sweeps the array decrementing each
cell it passes, completing one full circle every ``T / (2^s - 2)`` time
units — i.e. ``2^s - 2`` circles per window. Zero is reserved as the
"invalid/empty" flag: when a cell decrements to zero, the information in
the attached sketch cell is expired.

Guarantees (the paper's core invariants, enforced by tests):

- *No false expiry*: a cell set at time ``t`` is swept at most
  ``2^s - 2`` times before ``t + T``, so it stays non-zero throughout
  the window.
- *Bounded staleness*: by ``t + T * (1 + 1/(2^s - 2))`` the cell has
  been swept ``2^s - 1`` times and is guaranteed zero — the residual
  ``T / (2^s - 2)`` is the paper's *error window*.

The cleaner is driven lazily: callers ``advance(now)`` before every
insert or query, and the array performs exactly the sweep steps the
paper's background thread would have performed by then. Count-based
windows use exact integer arithmetic, so the schedule is deterministic.

Two sweep implementations with identical semantics are provided:
``vector`` (numpy range operations — the stand-in for the paper's SIMD
cleaning) and ``scalar`` (a per-cell Python loop, the stand-in for the
paper's plain single-thread cleaning). Table 3's throughput comparison
is the ratio between them.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError, TimeError
# Back-compat re-exports: the closed-form kernels moved to
# repro.kernels (numpy reference backend); importing them from here
# keeps every historical call site working.
from ..kernels.numpy_backend import snapshot_values, sweep_hits  # noqa: F401
from ..kernels import resolve_backend
from ..obs import runtime as _obs
from ..timebase import WindowSpec

__all__ = ["ClockArray", "circles_per_window_for", "dtype_for_bits",
           "max_value_for", "snapshot_values", "sweep_hits"]


def max_value_for(s: int) -> int:
    """Maximum value of an ``s``-bit clock cell, ``2^s - 1``.

    The one place the repo computes this constant — everything outside
    :mod:`clockarray` goes through here (or an instance's
    ``max_value``) instead of repeating the bit arithmetic.
    """
    return (1 << s) - 1


def circles_per_window_for(s: int) -> int:
    """Cleaning circles per window for ``s``-bit cells, ``2^s - 2``.

    The cleaner sweeps one full circle every ``T / (2^s - 2)`` time
    units — the paper's error window denominator.
    """
    return (1 << s) - 2


def dtype_for_bits(s: int) -> np.dtype:
    """Smallest unsigned numpy dtype that can hold an ``s``-bit value."""
    if s <= 8:
        return np.dtype(np.uint8)
    if s <= 16:
        return np.dtype(np.uint16)
    if s <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


class ClockArray:
    """An ``s``-bit clock cell array with a lazily-driven cleaning pointer.

    Parameters
    ----------
    n:
        Number of clock cells.
    s:
        Bits per clock cell, ``2..64``. The paper requires ``s >= 2``
        because the sweep period is ``T / (2^s - 2)``.
    window:
        The :class:`~repro.timebase.WindowSpec` the array must preserve.
    on_expire:
        Optional callback invoked with a numpy array of cell indexes
        whose clocks just reached zero (used to clear sketch cells).
    sweep_mode:
        ``"vector"`` (numpy, default), ``"scalar"`` (Python loop),
        ``"deferred"`` (vectorised sweeps executed only once a full
        circle of work has accumulated — the stand-in for the paper's
        unsynchronised SIMD cleaning thread), or ``"deferred-scalar"``
        (same deferral, scalar sweeps — the unsynchronised cleaning
        thread *without* SIMD).

        The deferred modes trade the window guarantee at its edge, just
        like the paper's synchronisation-free threads: because a batched
        sweep can replay steps that nominally preceded a recent touch,
        a cell's effective protection shrinks by up to one cleaning
        circle — ages below ``T - T/(2^s - 2)`` are still guaranteed
        preserved, and staleness remains bounded by one extra circle.
        The exact modes (``vector``/``scalar``) preserve the full
        guarantee.
    kernel_backend:
        A :class:`~repro.kernels.KernelBackend` (or backend name, or
        None for the process default) providing the primitive numeric
        kernels — vector sweeps, closed-form snapshots, fused batch
        finishers. Resolved once at construction via
        :func:`repro.kernels.resolve_backend` and exposed as
        ``self.kernels``; every backend is bit-identical, so this is
        purely a speed choice.
    """

    def __init__(self, n: int, s: int, window: WindowSpec, on_expire=None,
                 sweep_mode: str = "vector", kernel_backend=None):
        if not 2 <= s <= 64:
            raise ConfigurationError(f"clock cell size s must be in 2..64, got {s}")
        if n <= 0:
            raise ConfigurationError(f"cell count must be positive, got {n}")
        if sweep_mode not in ("vector", "scalar", "deferred", "deferred-scalar"):
            raise ConfigurationError(f"unknown sweep mode {sweep_mode!r}")
        self.n = int(n)
        self.s = int(s)
        self.window = window
        self.max_value = max_value_for(s)
        self.circles_per_window = circles_per_window_for(s)
        self.values = np.zeros(self.n, dtype=dtype_for_bits(s))
        self.on_expire = on_expire
        self.sweep_mode = sweep_mode
        self.kernels = resolve_backend(kernel_backend)
        self._steps_done = 0
        self._now = 0.0
        # Sweep telemetry: plain ints maintained unconditionally (the
        # obs registry/ring only sees them while enabled).
        self._sweeps_done = 0
        self._cells_cleaned_total = 0
        # Exact integer scheduling is possible for count-based windows.
        self._count_based = window.is_count_based
        self._window_length = window.length

    # ------------------------------------------------------------------
    # Sweep scheduling
    # ------------------------------------------------------------------

    def total_steps_at(self, now) -> int:
        """Total sweep steps the cleaner has performed by time ``now``."""
        if self._count_based:
            return (int(now) * self.n * self.circles_per_window) // int(self._window_length)
        return math.floor(now * self.n * self.circles_per_window / self._window_length)

    def step_targets(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`total_steps_at` over an array of times.

        Bit-identical to calling :meth:`total_steps_at` per element:
        count-based windows use the same exact integer arithmetic, and
        time-based windows perform the identical sequence of float64
        operations before flooring.
        """
        times = np.asarray(times, dtype=np.float64)
        if self._count_based:
            counts = times.astype(np.int64)
            return (counts * self.n * self.circles_per_window) // int(self._window_length)
        raw = times * self.n * self.circles_per_window / self._window_length
        return np.floor(raw).astype(np.int64)

    @property
    def now(self) -> float:
        """The latest time the array has been advanced to."""
        return self._now

    @property
    def steps_done(self) -> int:
        """Total sweep steps performed so far."""
        return self._steps_done

    @property
    def pointer(self) -> int:
        """Current position of the cleaning pointer."""
        return self._steps_done % self.n

    def advance(self, now) -> None:
        """Run the cleaning pointer forward to time ``now``.

        Raises :class:`~repro.errors.TimeError` if ``now`` moves
        backwards — streams are monotone.
        """
        if now < self._now:
            raise TimeError(f"time moved backwards: {now} < {self._now}")
        self._now = now
        target = self.total_steps_at(now)
        delta = target - self._steps_done
        if delta <= 0:
            return
        if self.sweep_mode.startswith("deferred") and delta < self.n:
            # Let the "background thread" fall behind by up to one
            # circle before doing any work.
            if _obs.ENABLED:
                _obs.record_sweep_deferral(delta)
            return
        cleaned_before = self._cells_cleaned_total
        if self.sweep_mode in ("scalar", "deferred-scalar"):
            self._sweep_scalar(delta)
        else:
            self._sweep_vector(delta)
        self._steps_done = target
        self._sweeps_done += 1
        if _obs.ENABLED:
            _obs.record_sweep(
                self._now, self.pointer,
                self._cells_cleaned_total - cleaned_before, delta,
            )

    @property
    def is_deferred(self) -> bool:
        """True when cleaning is batched behind the insert path."""
        return self.sweep_mode.startswith("deferred")

    def sync_state(self, now, steps_done: int, cleaned: int = 0) -> None:
        """Adopt an externally computed cleaner position.

        The batch engine applies whole sweeps in closed form
        (:mod:`repro.engine.fused`) and then declares the end state here
        instead of replaying the steps through :meth:`advance`.
        ``cleaned`` reports how many cells the closed-form application
        expired, keeping the sweep telemetry consistent with the
        incremental path.
        """
        if now < self._now:
            raise TimeError(f"time moved backwards: {now} < {self._now}")
        self._now = now
        if steps_done > self._steps_done:
            steps = int(steps_done) - self._steps_done
            self._steps_done = int(steps_done)
            self._sweeps_done += 1
            self._cells_cleaned_total += int(cleaned)
            if _obs.ENABLED:
                _obs.record_sweep(self._now, self.pointer, int(cleaned), steps)

    def flush(self) -> None:
        """Force a deferred cleaner to catch up to the current time."""
        target = self.total_steps_at(self._now)
        delta = target - self._steps_done
        if delta > 0:
            cleaned_before = self._cells_cleaned_total
            if self.sweep_mode == "deferred-scalar":
                self._sweep_scalar(delta)
            else:
                self._sweep_vector(delta)
            self._steps_done = target
            self._sweeps_done += 1
            if _obs.ENABLED:
                _obs.record_sweep(
                    self._now, self.pointer,
                    self._cells_cleaned_total - cleaned_before, delta,
                )

    def _emit_expired(self, expired: np.ndarray) -> None:
        if expired.size:
            self._cells_cleaned_total += int(expired.size)
            if self.on_expire is not None:
                self.on_expire(expired)

    def _sweep_vector(self, delta: int) -> None:
        """Perform ``delta`` sweep steps through the kernel backend."""
        start = self._steps_done % self.n
        full_rounds, remainder = divmod(delta, self.n)
        if full_rounds:
            # Every cell is decremented ``full_rounds`` times; clamping
            # the round count at max_value keeps the subtrahend inside
            # the cell dtype.
            rounds = min(full_rounds, self.max_value)
            self._emit_expired(self.kernels.decay_all(self.values, rounds))
        if remainder:
            end = start + remainder
            if end <= self.n:
                self._decrement_range(start, end)
            else:
                self._decrement_range(start, self.n)
                self._decrement_range(0, end - self.n)

    def _decrement_range(self, a: int, b: int) -> None:
        """Decrement (clamped at zero) cells ``a..b-1`` once."""
        expired = self.kernels.decrement_range(self.values, a, b)
        if expired.size:
            self._emit_expired(expired)

    def _sweep_scalar(self, delta: int) -> None:
        """Perform ``delta`` sweep steps one cell at a time (reference)."""
        values = self.values
        n = self.n
        pos = self._steps_done % n
        expired = []
        for _ in range(delta):
            v = values[pos]
            if v > 0:
                values[pos] = v - 1
                if v == 1:
                    expired.append(pos)
            pos += 1
            if pos == n:
                pos = 0
        if expired:
            self._emit_expired(np.asarray(expired, dtype=np.int64))

    # ------------------------------------------------------------------
    # Cell access
    # ------------------------------------------------------------------

    def touch(self, indexes) -> None:
        """Set the given cells to the maximum clock value (an insert)."""
        self.values[indexes] = self.max_value

    def load_values(self, image) -> None:
        """Adopt a complete cell image, validating shape and range.

        The write-API twin of reading ``values``: the fused batch
        engine computes whole post-sweep images in closed form, and
        deserialisation restores saved ones — both land here instead of
        writing the buffer directly, so an out-of-range or mis-shaped
        image is rejected before it can corrupt the array.
        """
        # Keep the caller's dtype so the range check sees the image as
        # handed in, before any cast could wrap it.
        image = np.asarray(image)  # sketchlint: dtype-ok
        if image.shape != (self.n,):
            raise ConfigurationError(
                f"cell image shape {image.shape} does not match "
                f"({self.n},)"
            )
        if image.size and (int(image.max()) > self.max_value
                           or int(image.min()) < 0):
            raise ConfigurationError(
                f"cell image holds values outside [0, {self.max_value}]"
            )
        self.values[:] = image.astype(self.values.dtype)

    def merge_max(self, image) -> None:
        """Fold another cell image in by element-wise maximum.

        The merge twin of :meth:`load_values`, and the only sanctioned
        way to union clock state (shard merges, worker aggregation):
        the image is validated against the array's shape and value
        range first, so a corrupt or mis-shaped peer can never poison
        the cells. Taking the max preserves the window guarantee — a
        cell is never made newer than its newest writer, and never
        expired while any side still holds it live.
        """
        image = np.asarray(image)  # sketchlint: dtype-ok
        if image.shape != (self.n,):
            raise ConfigurationError(
                f"cell image shape {image.shape} does not match "
                f"({self.n},)"
            )
        if image.size and (int(image.max()) > self.max_value
                           or int(image.min()) < 0):
            raise ConfigurationError(
                f"cell image holds values outside [0, {self.max_value}]"
            )
        np.maximum(self.values, image.astype(self.values.dtype),
                   out=self.values)

    def bind_buffer(self, view: np.ndarray) -> None:
        """Adopt an external array as the cell buffer (shared memory).

        ``view`` must be a 1-D array of exactly ``n`` cells in this
        array's dtype — typically a numpy view over a
        ``multiprocessing.shared_memory`` block, so a shard worker can
        mutate cells the parent process reads. The current cell image
        is copied into the view before it is adopted, so binding is
        state-preserving.
        """
        if not isinstance(view, np.ndarray):
            raise ConfigurationError("bind_buffer requires a numpy array view")
        if view.shape != (self.n,) or view.dtype != self.values.dtype:
            raise ConfigurationError(
                f"buffer view {view.dtype}{view.shape} does not match "
                f"{self.values.dtype}({self.n},)"
            )
        view[:] = self.values
        self.values = view

    def are_nonzero(self, indexes) -> bool:
        """True if every given cell currently holds a non-zero clock."""
        return bool(np.all(self.values[indexes] > 0))

    def count_zero(self) -> int:
        """Number of cells currently at zero (used by bitmap estimation)."""
        return int(np.count_nonzero(self.values == 0))

    def memory_bits(self) -> int:
        """Accounted footprint: ``n`` cells of ``s`` bits."""
        return self.n * self.s

    # ------------------------------------------------------------------
    # Sweep telemetry
    # ------------------------------------------------------------------

    @property
    def sweeps_done(self) -> int:
        """Sweep executions so far (advance/flush/fused batches that did work)."""
        return self._sweeps_done

    @property
    def cells_cleaned_total(self) -> int:
        """Cells expired (decremented to zero) by cleaning so far."""
        return self._cells_cleaned_total

    @property
    def sweep_lag(self) -> int:
        """Steps the cleaner is behind the ideal cadence at the current time.

        Exact sweep modes are always caught up after an operation
        (lag 0); deferred modes let the lag grow to just under one
        circle (``n`` steps) before sweeping.
        """
        return self.total_steps_at(self._now) - self._steps_done

    def fill_ratio(self) -> float:
        """Fraction of cells currently non-zero."""
        return float(np.count_nonzero(self.values)) / self.n

    def occupancy_histogram(self) -> "tuple[np.ndarray, np.ndarray]":
        """Log-2 histogram of the non-zero cell values.

        Returns ``(bounds, counts)``: ``bounds`` are the upper bucket
        bounds ``2^0 .. 2^s`` (``le`` semantics) and ``counts`` has one
        extra overflow slot (always zero, since values cap at
        ``2^s - 1``).
        """
        bounds = np.power(2.0, np.arange(0, self.s + 1, dtype=np.float64))
        nonzero = self.values[self.values > 0].astype(np.float64)
        indexes = np.searchsorted(bounds, nonzero, side="left")
        counts = np.bincount(indexes, minlength=bounds.size + 1)
        return bounds, counts

    def sweep_telemetry(self) -> dict:
        """One-call snapshot of the cleaner's bookkeeping."""
        return {
            "sweeps_done": self._sweeps_done,
            "steps_done": self._steps_done,
            "cells_cleaned_total": self._cells_cleaned_total,
            "pointer": self.pointer,
            "sweep_lag": self.sweep_lag,
            "fill_ratio": self.fill_ratio(),
            "zero_cells": self.count_zero(),
        }

    def reset(self) -> None:
        """Clear all cells and rewind the cleaner to time zero."""
        self.values[:] = 0
        self._steps_done = 0
        self._now = 0.0
        self._sweeps_done = 0
        self._cells_cleaned_total = 0

    def __repr__(self) -> str:
        return (
            f"ClockArray(n={self.n}, s={self.s}, window={self.window}, "
            f"mode={self.sweep_mode!r})"
        )
