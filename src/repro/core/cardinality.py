"""BM+clock — item batch cardinality (paper §4.2).

A linear-counting bitmap whose bits are replaced by ``s``-bit clock
cells. One hash function maps each item to one cell; the number of
currently-zero clocks ``u`` yields the classic maximum-likelihood
cardinality estimate ``-n * ln(u / n)`` (Whang et al.), here counting
*active item batches* because expired cells self-clean.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..engine import BatchEngine
from ..errors import EstimatorSaturatedError
from ..hashing import IndexDeriver
from ..obs import runtime as _obs
from ..timebase import WindowSpec
from ..units import parse_memory
from .base import ClockSketchBase
from .clockarray import ClockArray
from .params import cells_for_memory

__all__ = ["ClockBitmap", "CardinalityEstimate", "linear_counting_estimate",
           "snapshot_cardinality"]

#: Default clock width for cardinality; §5.2/§6.3 find s = 8 optimal at
#: the paper's reference configuration (M = 128 KB, W = 16384).
DEFAULT_S_CARDINALITY = 8


@dataclass(frozen=True)
class CardinalityEstimate:
    """A cardinality estimate plus its saturation flag.

    ``saturated`` is True when every cell was occupied — the estimator
    then reports its maximum resolvable value (``u`` clamped to 1)
    rather than infinity.
    """

    value: float
    zero_cells: int
    total_cells: int
    saturated: bool

    def __float__(self) -> float:
        return self.value


def linear_counting_estimate(zero_cells: int, total_cells: int,
                             strict: bool = False) -> CardinalityEstimate:
    """Whang et al.'s linear-counting MLE, ``-n ln(u/n)``, with clamping."""
    saturated = zero_cells == 0
    if saturated and strict:
        raise EstimatorSaturatedError(
            "all bitmap cells occupied; cardinality unresolvable"
        )
    u = max(zero_cells, 1)
    value = -total_cells * math.log(u / total_cells)
    return CardinalityEstimate(
        value=value, zero_cells=zero_cells, total_cells=total_cells,
        saturated=saturated,
    )


class ClockBitmap(ClockSketchBase):
    """Clock-sketch for item batch cardinality (BM+clock).

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> bm = ClockBitmap(n=4096, s=8, window=count_window(256))
    >>> for key in range(100):
    ...     bm.insert(key)
    >>> 80 < bm.estimate().value < 125
    True
    """

    def __init__(self, n: int, s: int, window: WindowSpec, seed: int = 0,
                 sweep_mode: str = "vector", sanitize: bool = False):
        super().__init__(window)
        self.s = int(s)
        self.clock = ClockArray(n, s, window, sweep_mode=sweep_mode)
        self.deriver = IndexDeriver(n=n, k=1, seed=seed)
        self.seed = seed
        self.engine = BatchEngine(self)
        if sanitize:
            from ..qa.sanitizer import sanitize_sketch
            sanitize_sketch(self)

    @classmethod
    def from_memory(cls, memory, window: WindowSpec,
                    s: int = DEFAULT_S_CARDINALITY, seed: int = 0,
                    sweep_mode: str = "vector") -> "ClockBitmap":
        """Build a bitmap that fits a memory budget (bytes or "8KB")."""
        bits = parse_memory(memory)
        n = cells_for_memory(bits, s)
        return cls(n=n, s=s, window=window, seed=seed, sweep_mode=sweep_mode)

    @property
    def n(self) -> int:
        """Number of clock cells."""
        return self.clock.n

    def insert(self, item, t=None) -> None:
        """Record an occurrence of ``item``.

        Semantically the batch-size-1 case of :meth:`insert_many`
        (bit-identical final state, property-tested).
        """
        now = self._insert_time(t)
        self.clock.advance(now)
        self.clock.touch(self.deriver.indexes(item)[:1])

    def insert_many(self, items, times=None) -> None:
        """Insert a batch of items through the batch engine.

        Accepts integer key arrays or any sequence of hashable items;
        bit-identical to a loop of :meth:`insert` calls on the exact
        sweep modes, chunk-vectorised under a deferred cleaner (see
        :meth:`ClockBloomFilter.insert_many`).
        """
        cells = self.deriver.bulk_single_items(items)
        self.engine.ingest_touch(cells.reshape(-1, 1), times, items=items)

    def query(self, item, t=None) -> bool:
        """Scalar twin of :meth:`query_many`: is the item's single cell live?

        Subject to the same free aliasing — this is a bitmap, not a
        filter — but matching the batch API keeps every sketch's
        scalar/batch surface symmetric.
        """
        now = self._query_time(t)
        self.clock.advance(now)
        return self.clock.are_nonzero(self.deriver.indexes(item)[:1])

    def query_many(self, items, t=None) -> np.ndarray:
        """Crude per-item activity view: is each item's single cell live?

        One hash per item means collisions alias freely — this is a
        bitmap, not a filter — but the zero/non-zero pattern is exactly
        what :meth:`estimate` aggregates, exposed per item for
        diagnostics and batch pipelines.
        """
        now = self._query_time(t)
        self.clock.advance(now)
        cells = self.deriver.bulk_single_items(items)
        return self.clock.values[cells] > 0

    def estimate(self, t=None, strict: bool = False) -> CardinalityEstimate:
        """Estimate the number of active item batches at time ``t``."""
        now = self._query_time(t)
        self.clock.advance(now)
        return linear_counting_estimate(self.clock.count_zero(), self.n, strict)

    def snapshot(self) -> "ClockBitmap":
        """Deep copy of the current state (cells, cleaner, bookkeeping)."""
        clone = ClockBitmap(n=self.n, s=self.s, window=self.window,
                            seed=self.seed,
                            sweep_mode=self.clock.sweep_mode)
        self._copy_state_into(clone)
        return clone

    def merge(self, other: "ClockBitmap") -> "ClockBitmap":
        """Fold another bitmap in: the linear-counting union.

        Clock cells merge by element-wise max (a cell is zero in the
        union iff it is zero on both sides), so a later
        :meth:`estimate` applies the §4.2 estimator ``-n ln(u/n)`` to
        the *union's* zero count — the standard post-union
        linear-counting estimator, which deduplicates batches seen by
        several workers instead of summing per-worker estimates.
        Returns ``self``.
        """
        self._merge_check(other, ("n", "s", "window", "seed"))
        self._merge_commit(other)
        return self

    def memory_bits(self) -> int:
        """Accounted footprint in bits."""
        return self.clock.memory_bits()

    def metrics(self) -> dict:
        """Operational snapshot; publishes gauges while obs is enabled.

        Reads the current cell state without advancing the clock (a
        metrics scrape must not perturb the structure), so the embedded
        estimate reflects the last operation's time.
        """
        fill = self.clock.fill_ratio()
        estimate = linear_counting_estimate(self.clock.count_zero(), self.n)
        if _obs.ENABLED:
            name = type(self).__name__
            _obs.publish_sketch(name, self.memory_bits(), fill)
            _obs.sample_clock(self.clock, labels={"sketch": name})
        return {
            "task": "cardinality",
            "sketch": type(self).__name__,
            "memory_bits": self.memory_bits(),
            "items_inserted": self.items_inserted,
            "fill_ratio": fill,
            "s": self.s,
            "estimate": estimate.value,
            "saturated": estimate.saturated,
            "sweep": self.clock.sweep_telemetry(),
        }

    def __repr__(self) -> str:
        return f"ClockBitmap(n={self.n}, s={self.s}, window={self.window})"


def snapshot_cardinality(
    keys: np.ndarray,
    times: "np.ndarray | None",
    t_query: float,
    n: int,
    s: int,
    window: WindowSpec,
    seed: int = 0,
    strict: bool = False,
) -> CardinalityEstimate:
    """Closed-form BM+clock estimate after a whole key stream.

    Equivalent to inserting ``keys`` into a :class:`ClockBitmap` and
    calling :meth:`ClockBitmap.estimate` at ``t_query``.
    """
    keys = np.asarray(keys, dtype=np.int64)
    deriver = IndexDeriver(n=n, k=1, seed=seed)
    probe = ClockArray(n, s, window)

    if times is None:
        insert_times = np.arange(1, len(keys) + 1, dtype=np.int64)
        set_steps = (
            insert_times * np.int64(n) * np.int64(probe.circles_per_window)
        ) // np.int64(int(window.length))
    else:
        set_steps = np.floor(
            np.asarray(times, dtype=float) * n * probe.circles_per_window
            / window.length
        ).astype(np.int64)
    query_steps = probe.total_steps_at(t_query)

    cells = deriver.bulk_single(keys)
    last_set = np.full(n, -1, dtype=np.int64)
    np.maximum.at(last_set, cells, set_steps)

    touched = np.flatnonzero(last_set >= 0)
    live = probe.kernels.snapshot_values(last_set[touched], touched, n,
                                         probe.max_value, query_steps)
    nonzero = int(np.count_nonzero(live > 0))
    return linear_counting_estimate(n - nonzero, n, strict)
