"""The paper's primary contribution: the Clock-sketch framework.

Four applications of the framework (paper §4):

- :class:`~repro.core.activeness.ClockBloomFilter` — BF+clock,
  activeness/membership of item batches.
- :class:`~repro.core.cardinality.ClockBitmap` — BM+clock, number of
  active item batches.
- :class:`~repro.core.timespan.ClockTimeSpanSketch` — BF-ts+clock,
  how long an active batch has lasted.
- :class:`~repro.core.size.ClockCountMin` — CM+clock, how many items an
  active batch contains.

All are built on :class:`~repro.core.clockarray.ClockArray`, the s-bit
clock cell array with its cyclic cleaning pointer.
"""

from .clockarray import ClockArray, dtype_for_bits, snapshot_values, sweep_hits
from .activeness import ClockBloomFilter, snapshot_membership
from .cardinality import (
    CardinalityEstimate,
    ClockBitmap,
    linear_counting_estimate,
    snapshot_cardinality,
)
from .timespan import ClockTimeSpanSketch, TimeSpanBatchResult, TimeSpanResult
from .size import ClockCountMin
from .params import active_load, cells_for_memory, optimal_k_membership

__all__ = [
    "ClockArray",
    "dtype_for_bits",
    "snapshot_values",
    "sweep_hits",
    "ClockBloomFilter",
    "snapshot_membership",
    "ClockBitmap",
    "CardinalityEstimate",
    "linear_counting_estimate",
    "snapshot_cardinality",
    "ClockTimeSpanSketch",
    "TimeSpanResult",
    "TimeSpanBatchResult",
    "ClockCountMin",
    "active_load",
    "cells_for_memory",
    "optimal_k_membership",
]
