"""BF+clock — item batch activeness / membership (paper §4.1).

A Bloom filter whose bit cells are replaced by ``s``-bit clock cells:
the bit is 1 exactly when the clock is non-zero, so only the clock
array is stored. Inserting sets the ``k`` hashed clocks to ``2^s - 1``;
the cleaning pointer decrements them; a batch is reported active when
all ``k`` clocks are non-zero.

Two evaluation paths are provided:

- :class:`ClockBloomFilter` — the faithful incremental structure.
- :func:`snapshot_membership` — a closed-form vectorised evaluation of
  the final clock state after a whole key stream, used by the accuracy
  experiments (identical results, orders of magnitude faster; the
  equivalence is enforced by property tests).
"""

from __future__ import annotations

import numpy as np

from ..engine import BatchEngine
from ..hashing import IndexDeriver
from ..obs import runtime as _obs
from ..timebase import WindowSpec
from ..units import parse_memory
from .base import ClockSketchBase
from .clockarray import ClockArray
from .params import OPTIMAL_S_MEMBERSHIP, cells_for_memory, optimal_k_membership

__all__ = ["ClockBloomFilter", "snapshot_membership"]


class ClockBloomFilter(ClockSketchBase):
    """Clock-sketch for item batch activeness (BF+clock).

    Parameters
    ----------
    n:
        Number of clock cells.
    k:
        Number of hash functions.
    s:
        Bits per clock cell (the paper proves ``s = 2`` optimal here).
    window:
        The sliding window ``T``.
    seed:
        Hash seed; two filters with the same seed are identical maps.
    sweep_mode:
        ``"vector"`` or ``"scalar"`` cleaning (see
        :class:`~repro.core.clockarray.ClockArray`).
    sanitize:
        Wrap this instance with the runtime invariant checks of
        :mod:`repro.qa.sanitizer` (see ``docs/qa.md``).

    Examples
    --------
    >>> from repro.timebase import count_window
    >>> bf = ClockBloomFilter(n=1024, k=4, s=2, window=count_window(64))
    >>> bf.insert("flow-a")
    >>> bf.contains("flow-a")
    True
    """

    def __init__(self, n: int, k: int, s: int, window: WindowSpec,
                 seed: int = 0, sweep_mode: str = "vector",
                 sanitize: bool = False):
        super().__init__(window)
        self.s = int(s)
        self.k = int(k)
        self.clock = ClockArray(n, s, window, sweep_mode=sweep_mode)
        self.deriver = IndexDeriver(n=n, k=k, seed=seed)
        self.seed = seed
        self.engine = BatchEngine(self)
        if sanitize:
            from ..qa.sanitizer import sanitize_sketch
            sanitize_sketch(self)

    @classmethod
    def from_memory(cls, memory, window: WindowSpec, s: int = OPTIMAL_S_MEMBERSHIP,
                    k: "int | None" = None, seed: int = 0,
                    sweep_mode: str = "vector") -> "ClockBloomFilter":
        """Build a filter that fits a memory budget.

        ``memory`` accepts bytes or strings like ``"64KB"``. ``k``
        defaults to the §5.1 optimum for the given ``s`` and window.
        """
        bits = parse_memory(memory)
        n = cells_for_memory(bits, s)
        if k is None:
            k = optimal_k_membership(n, window.length, s)
        return cls(n=n, k=k, s=s, window=window, seed=seed, sweep_mode=sweep_mode)

    @property
    def n(self) -> int:
        """Number of clock cells."""
        return self.clock.n

    def insert(self, item, t=None) -> None:
        """Record an occurrence of ``item`` (at time ``t`` if time-based).

        Semantically the batch-size-1 case of :meth:`insert_many`
        (bit-identical final state, property-tested), kept as a direct
        scalar path so single-item callers skip the batch machinery.
        """
        now = self._insert_time(t)
        self.clock.advance(now)
        self.clock.touch(self.deriver.indexes(item))

    def insert_many(self, items, times=None) -> None:
        """Insert a batch of items through the batch engine.

        ``items`` may be an integer key array (fully vectorised
        hashing) or any sequence of hashable stream items. ``times`` is
        required for time-based windows and must be non-decreasing.
        The final state is bit-identical to the equivalent loop of
        :meth:`insert` calls on the exact sweep modes; with a deferred
        cleaner, inserts are chunk-vectorised under that mode's relaxed
        window guarantee.
        """
        self.engine.ingest_touch(self.deriver.bulk_items(items), times,
                                 items=items)

    def contains(self, item, t=None) -> bool:
        """Is the item's batch active? (May false-positive, never false-negative
        within the window guarantee.)"""
        now = self._query_time(t)
        self.clock.advance(now)
        return self.clock.are_nonzero(self.deriver.indexes(item))

    def contains_many(self, items, t=None) -> np.ndarray:
        """Vectorised :meth:`contains` over a batch of items."""
        now = self._query_time(t)
        self.clock.advance(now)
        index_matrix = self.deriver.bulk_items(items)
        return np.all(self.clock.values[index_matrix] > 0, axis=1)

    def query(self, item, t=None) -> bool:
        """Scalar query alias: activeness of one item (see :meth:`contains`)."""
        return self.contains(item, t)

    def query_many(self, items, t=None) -> np.ndarray:
        """Batch query alias: activeness per item (see :meth:`contains_many`)."""
        return self.contains_many(items, t)

    def snapshot(self) -> "ClockBloomFilter":
        """Deep copy of the current state (cells, cleaner, bookkeeping).

        The copy is detached: mutating either sketch never affects the
        other. Shard routers snapshot one replica and :meth:`merge` the
        rest into it to build a global view.
        """
        clone = ClockBloomFilter(n=self.n, k=self.k, s=self.s,
                                 window=self.window, seed=self.seed,
                                 sweep_mode=self.clock.sweep_mode)
        self._copy_state_into(clone)
        return clone

    def merge(self, other: "ClockBloomFilter") -> "ClockBloomFilter":
        """Fold another filter in: the Bloom union (element-wise clock max).

        With clock cells, the classic bit-OR becomes an element-wise
        max — a cell is live in the union iff it is live on either
        side, and its remaining lifetime is its newest writer's. Both
        sketches must share a configuration and a cleaning-pointer
        position (synchronise to a common stream time first). Returns
        ``self``.
        """
        self._merge_check(other, ("n", "k", "s", "window", "seed"))
        self._merge_commit(other)
        return self

    def memory_bits(self) -> int:
        """Accounted footprint in bits (clock cells only, per §4.1)."""
        return self.clock.memory_bits()

    def metrics(self) -> dict:
        """Operational snapshot; publishes gauges while obs is enabled."""
        fill = self.clock.fill_ratio()
        if _obs.ENABLED:
            name = type(self).__name__
            _obs.publish_sketch(name, self.memory_bits(), fill)
            _obs.sample_clock(self.clock, labels={"sketch": name})
        return {
            "task": "activeness",
            "sketch": type(self).__name__,
            "memory_bits": self.memory_bits(),
            "items_inserted": self.items_inserted,
            "fill_ratio": fill,
            "k": self.k,
            "s": self.s,
            "sweep": self.clock.sweep_telemetry(),
        }

    def __repr__(self) -> str:
        return (
            f"ClockBloomFilter(n={self.n}, k={self.k}, s={self.s}, "
            f"window={self.window})"
        )


def snapshot_membership(
    keys: np.ndarray,
    times: "np.ndarray | None",
    query_keys: np.ndarray,
    t_query: float,
    n: int,
    k: int,
    s: int,
    window: WindowSpec,
    seed: int = 0,
) -> np.ndarray:
    """Closed-form BF+clock membership after a whole stream.

    Inserts ``keys`` (count-based: ``times`` None, item ``i`` arrives at
    ``i + 1``; time-based: ``times`` aligned with ``keys``) and returns
    a boolean array: for each query key, whether the filter would report
    it active at ``t_query``. Exactly matches the incremental
    :class:`ClockBloomFilter` on the same inputs.
    """
    keys = np.asarray(keys, dtype=np.int64)
    deriver = IndexDeriver(n=n, k=k, seed=seed)
    probe = ClockArray(n, s, window)  # used only for its step arithmetic
    max_value = probe.max_value

    if times is None:
        insert_times = np.arange(1, len(keys) + 1, dtype=np.int64)
        set_steps_per_item = (
            insert_times * np.int64(n) * np.int64(probe.circles_per_window)
        ) // np.int64(int(window.length))
    else:
        times = np.asarray(times, dtype=float)
        set_steps_per_item = np.floor(
            times * n * probe.circles_per_window / window.length
        ).astype(np.int64)
    query_steps = probe.total_steps_at(t_query)

    index_matrix = deriver.bulk(keys)  # (N, k)
    last_set = np.full(n, -1, dtype=np.int64)
    flat_cells = index_matrix.ravel()
    flat_steps = np.repeat(set_steps_per_item, k)
    np.maximum.at(last_set, flat_cells, flat_steps)

    values = np.zeros(n, dtype=np.int64)
    touched = np.flatnonzero(last_set >= 0)
    values[touched] = probe.kernels.snapshot_values(
        last_set[touched], touched, n, max_value, query_steps
    )

    query_matrix = deriver.bulk(np.asarray(query_keys, dtype=np.int64))
    return np.all(values[query_matrix] > 0, axis=1)
