"""One-stop item-batch monitoring: all four measurements, one object.

:class:`ItemBatchMonitor` bundles the four Clock-sketch structures
behind a single ``observe``/``report`` interface with a shared window
and a single memory budget, split across the tasks the caller enables.
This is the "framework" face of the library: applications that want
item-batch telemetry without assembling sketches by hand (the examples
and §1.1 use cases) start here.

>>> from repro import ItemBatchMonitor, count_window
>>> monitor = ItemBatchMonitor(count_window(64), memory="32KB", seed=1)
>>> for _ in range(5):
...     monitor.observe("flow-7")
>>> monitor.is_active("flow-7")
True
>>> monitor.batch_size("flow-7")
5
>>> report = monitor.report("flow-7")
>>> (report.active, report.size, report.span)
(True, 5, 4.0)
"""

from __future__ import annotations

from dataclasses import dataclass

from .analysis import membership_fpr
from .core import (
    ClockBitmap,
    ClockBloomFilter,
    ClockCountMin,
    ClockTimeSpanSketch,
)
from .errors import ConfigurationError
from .obs import names as _names
from .obs import runtime as _obs
from .obs import trace as _trace
from .timebase import WindowSpec
from .units import parse_memory

__all__ = ["ItemBatchMonitor", "BatchReport"]

#: Default share of the memory budget per enabled task. Activeness and
#: cardinality cells are tiny (s bits), so most of the budget goes to
#: the counter/timestamp tasks, mirroring the paper's per-task budgets.
DEFAULT_SPLIT = {
    "activeness": 0.1,
    "cardinality": 0.1,
    "size": 0.4,
    "span": 0.4,
}


@dataclass(frozen=True)
class BatchReport:
    """Everything the monitor knows about one item's batch."""

    key: object
    active: bool
    size: "int | None"
    span: "float | None"
    begin: "float | None"


class ItemBatchMonitor:
    """All four item-batch measurements behind one interface.

    Parameters
    ----------
    window:
        The batch threshold ``T`` (count- or time-based).
    memory:
        Total budget (bytes or ``"32KB"``), split across enabled tasks.
    tasks:
        Iterable of task names to enable, from ``{"activeness",
        "cardinality", "size", "span"}``. Defaults to all four.
    split:
        Optional ``{task: fraction}`` overriding the budget split;
        fractions are renormalised over the enabled tasks.
    """

    TASKS = ("activeness", "cardinality", "size", "span")

    #: Task name → the attribute holding that task's sketch.
    _TASK_ATTRS = {
        "activeness": "activeness",
        "cardinality": "cardinality",
        "size": "size_sketch",
        "span": "span_sketch",
    }

    def __init__(self, window: WindowSpec, memory="64KB", tasks=None,
                 split=None, seed: int = 0):
        self.window = window
        enabled = tuple(tasks) if tasks is not None else self.TASKS
        unknown = set(enabled) - set(self.TASKS)
        if unknown:
            raise ConfigurationError(f"unknown tasks: {sorted(unknown)}")
        if not enabled:
            raise ConfigurationError("enable at least one task")
        self.tasks = enabled

        weights = dict(DEFAULT_SPLIT)
        if split:
            weights.update(split)
        total_weight = sum(weights[t] for t in enabled)
        # The effective split: renormalised over the enabled task
        # subset, so it always sums to 1.0 — this is what operators see
        # in repr()/memory_report().
        self.split = {t: weights[t] / total_weight for t in enabled}
        bits = parse_memory(memory)
        budget = {t: int(bits * weights[t] / total_weight) for t in enabled}
        self.budget_bits = dict(budget)

        self.activeness = None
        self.cardinality = None
        self.size_sketch = None
        self.span_sketch = None
        if "activeness" in enabled:
            self.activeness = ClockBloomFilter.from_memory(
                budget["activeness"] // 8, window, seed=seed)
        if "cardinality" in enabled:
            self.cardinality = ClockBitmap.from_memory(
                budget["cardinality"] // 8, window, seed=seed + 1)
        if "size" in enabled:
            self.size_sketch = ClockCountMin.from_memory(
                budget["size"] // 8, window, seed=seed + 2)
        if "span" in enabled:
            self.span_sketch = ClockTimeSpanSketch.from_memory(
                budget["span"] // 8, window, seed=seed + 3)
        self._sketches = [s for s in (self.activeness, self.cardinality,
                                      self.size_sketch, self.span_sketch)
                          if s is not None]
        self.seed = seed
        self.shards = 1
        self._auditor = None

    @classmethod
    def sharded(cls, window: WindowSpec, memory="64KB", tasks=None,
                split=None, seed: int = 0, *, shards: int = 2,
                router: str = "serial", mp_context=None,
                queue_capacity=None, timeout=None, time_source=None):
        """A monitor whose every task is a key-partitioned sharded sketch.

        Builds the ordinary per-task structures from ``memory`` (the
        *per-shard* budget — accuracy tracks a single shard's size, see
        :meth:`~repro.shard.ShardedSketch.shard_memory_bits`), then
        wraps each in a :class:`~repro.shard.ShardedSketch` with
        ``shards`` partitions. ``router="process"`` gives every shard
        of every task its own worker process; call :meth:`close` (or
        use the monitor as a context manager) to release them.
        """
        from .shard import ShardedSketch
        from .shard.workers import DEFAULT_QUEUE_CAPACITY, DEFAULT_TIMEOUT

        monitor = cls(window, memory=memory, tasks=tasks, split=split,
                      seed=seed)
        options = {
            "router": router,
            "mp_context": mp_context,
            "queue_capacity": DEFAULT_QUEUE_CAPACITY
            if queue_capacity is None else queue_capacity,
            "timeout": DEFAULT_TIMEOUT if timeout is None else timeout,
            "time_source": time_source,
        }
        for task in monitor.tasks:
            attribute = cls._TASK_ATTRS[task]
            prototype = getattr(monitor, attribute)
            setattr(monitor, attribute,
                    ShardedSketch(prototype, shards=shards, **options))
        monitor._sketches = [
            getattr(monitor, cls._TASK_ATTRS[task]) for task in monitor.tasks
        ]
        monitor.shards = int(shards)
        return monitor

    def close(self) -> None:
        """Release per-task resources (sharded worker pools). Idempotent."""
        for sketch in self._sketches:
            close = getattr(sketch, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ItemBatchMonitor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def audited(self, sample_rate: float = 0.01, every_items=None,
                seed=None, predictor=None, detector=None):
        """Attach a live accuracy auditor; returns the auditor.

        Installs a :class:`~repro.obs.audit.ShadowAuditor` on the batch
        engine's ingest tap: a hash-sampled fraction of keys is tracked
        exactly, and every ``every_items`` stream items the sampled keys
        are replayed against the live sketches to measure observed
        error, compare it against the analytic prediction, and raise
        drift alerts. See ``docs/observability.md``.
        """
        from .obs.audit import ShadowAuditor
        from .shard import ShardedSketch

        if any(isinstance(s, ShardedSketch) for s in self._sketches):
            raise ConfigurationError(
                "auditing a sharded monitor is not supported: the ingest "
                "tap lives on each shard's worker-side engine, so a "
                "parent-side auditor would sample nothing; audit an "
                "unsharded monitor at the same per-shard configuration "
                "instead"
            )
        auditor = ShadowAuditor(
            self, sample_rate=sample_rate, every_items=every_items,
            seed=self.seed if seed is None else seed,
            predictor=predictor, detector=detector,
        )
        self._auditor = auditor
        # Tap only the first sketch's engine: every enabled structure
        # sees the same batches, so one tap per monitor batch suffices.
        self._sketches[0].engine.tap = auditor.ingest
        return auditor

    @property
    def auditor(self):
        """The attached :class:`ShadowAuditor`, or None."""
        return self._auditor

    def observe(self, key, t=None) -> None:
        """Record one occurrence of ``key`` in every enabled structure."""
        for sketch in self._sketches:
            sketch.insert(key, t)
        auditor = self._auditor
        if auditor is not None:
            # The scalar path bypasses the batch engine (and its tap),
            # so feed the sampler directly with the resolved time.
            auditor.ingest_one(key, self._sketches[0].now)
            if auditor.due:
                auditor.audit()

    def observe_many(self, keys, times=None) -> None:
        """Record a batch of occurrences through every bulk path.

        Semantically identical to calling :meth:`observe` per item
        (the batch engine is bit-identical to the scalar path), but
        hashes each key once and applies the updates vectorized.
        """
        with _trace.span(_names.SPAN_MONITOR_OBSERVE) as sp:
            if sp.recording:
                sp.set("items", len(keys) if hasattr(keys, "__len__") else -1)
                sp.set("sketches", len(self._sketches))
            for sketch in self._sketches:
                sketch.insert_many(keys, times)
            auditor = self._auditor
            if auditor is not None and auditor.due:
                auditor.audit()

    def observe_stream(self, stream) -> None:
        """Feed a whole :class:`~repro.streams.Stream` (bulk paths)."""
        times = stream.times if not self.window.is_count_based else None
        self.observe_many(stream.keys, times)

    def _require(self, attribute, task):
        sketch = getattr(self, attribute)
        if sketch is None:
            raise ConfigurationError(f"task {task!r} is not enabled")
        return sketch

    def is_active(self, key, t=None) -> bool:
        """Is the key's batch active? (Needs the activeness task.)"""
        return self._require("activeness", "activeness").contains(key, t)

    def active_batches(self, t=None) -> float:
        """Estimated number of active batches. (Cardinality task.)"""
        return self._require("cardinality", "cardinality").estimate(t).value

    def batch_size(self, key, t=None) -> int:
        """Estimated size of the key's active batch. (Size task.)"""
        return self._require("size_sketch", "size").query(key, t)

    def batch_span(self, key, t=None):
        """Span result for the key's batch. (Span task.)"""
        return self._require("span_sketch", "span").query(key, t)

    def report(self, key, t=None) -> BatchReport:
        """Combined answer from every enabled per-key task."""
        active = (self.activeness.contains(key, t)
                  if self.activeness is not None else None)
        size = (self.size_sketch.query(key)
                if self.size_sketch is not None else None)
        span = begin = None
        if self.span_sketch is not None:
            result = self.span_sketch.query(key)
            if result.active:
                span, begin = result.span, result.begin
            elif active is None:
                active = False
        if active is None:
            active = span is not None
        if not active:
            size, span, begin = None, None, None
        return BatchReport(key=key, active=bool(active), size=size,
                           span=span, begin=begin)

    def predicted_fpr(self) -> "float | None":
        """§5.1's predicted activeness FPR at this configuration.

        For a sharded monitor the accuracy-relevant size is one
        shard's footprint (every replica spans the full cell space and
        the merged view behaves like a single shard-sized filter), so
        the prediction uses ``shard_memory_bits`` when the task is a
        :class:`~repro.shard.ShardedSketch`.
        """
        if self.activeness is None:
            return None
        bits = getattr(self.activeness, "shard_memory_bits",
                       self.activeness.memory_bits)()
        return membership_fpr(bits, self.window.length, self.activeness.s,
                              k=self.activeness.k)

    def memory_bits(self) -> int:
        """Total accounted footprint of the enabled structures."""
        return sum(s.memory_bits() for s in self._sketches)

    def memory_report(self) -> dict:
        """Per-task memory accounting: split fractions, budgets, actuals.

        ``split`` is the effective (renormalised) fraction per enabled
        task and always sums to 1.0; ``budget_bits`` is each task's
        slice of the configured budget; ``actual_bits`` is what the
        built structure really occupies (cell-count rounding makes it
        ≤ its budget).
        """
        actual = {
            task: getattr(self, self._TASK_ATTRS[task]).memory_bits()
            for task in self.tasks
        }
        return {
            "total_bits": self.memory_bits(),
            "split": dict(self.split),
            "budget_bits": dict(self.budget_bits),
            "actual_bits": actual,
        }

    def metrics(self) -> dict:
        """Aggregated operational snapshot across every enabled task.

        Returns the monitor's memory accounting plus each enabled
        sketch's :meth:`metrics` dict; while :mod:`repro.obs` is
        enabled, also publishes the monitor gauges (footprint, task
        count, split ratios) and each sketch's gauges to the registry.
        """
        per_task = {
            task: getattr(self, self._TASK_ATTRS[task]).metrics()
            for task in self.tasks
        }
        if _obs.ENABLED:
            _obs.publish_monitor(self.memory_bits(), self.split)
        return {
            "tasks": list(self.tasks),
            "memory_bits": self.memory_bits(),
            "split": dict(self.split),
            "budget_bits": dict(self.budget_bits),
            "per_task": per_task,
        }

    def __repr__(self) -> str:
        split = ", ".join(
            f"{task}={self.split[task]:.2f}" for task in self.tasks
        )
        return (
            f"ItemBatchMonitor(window={self.window}, tasks={self.tasks}, "
            f"memory={self.memory_bits() // 8192}KB, split=({split}))"
        )
