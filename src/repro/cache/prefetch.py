"""Prefetching from periodical item batches (paper §1.1, case 1).

"By observing the starting time and time span of each item batch, we
are able to find item batches with periodical patterns. Therefore,
prefetching an item from a periodical item batch into the cache can
realize cache hit for all items in this item batch."

Two pieces:

- :class:`PeriodicityDetector` — watches batch *starts* (via a
  BF+clock: a batch starts when an arriving item's batch was inactive)
  and keeps a short history of start times per key, flagging keys whose
  inter-batch gaps are stable (low relative spread). Memory is bounded
  by tracking at most ``max_tracked`` keys, evicting the stalest.
- :class:`PrefetchingCache` — a cache that, on every access, asks the
  detector which keys are due within a lookahead horizon and inserts
  them ahead of demand; the first access of each predicted batch then
  hits instead of missing.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.activeness import ClockBloomFilter
from ..errors import ConfigurationError
from ..timebase import WindowSpec
from .policies import LRUCache

__all__ = ["PeriodicityDetector", "PrefetchingCache"]


class PeriodicityDetector:
    """Finds keys whose batches recur on a stable period.

    Parameters
    ----------
    window:
        The batch threshold ``T`` (batch starts are detected with a
        BF+clock under this window).
    history:
        Batch start times kept per key (the period needs >= 3).
    tolerance:
        Maximum relative spread (max gap / min gap - 1) for the gaps to
        count as periodic.
    max_tracked:
        Bound on per-key history entries kept (stalest evicted).
    """

    def __init__(self, window: WindowSpec, history: int = 4,
                 tolerance: float = 0.25, max_tracked: int = 4096,
                 memory="8KB", seed: int = 0):
        if history < 3:
            raise ConfigurationError("history must be >= 3 batch starts")
        if tolerance <= 0:
            raise ConfigurationError("tolerance must be positive")
        self.window = window
        self.history = int(history)
        self.tolerance = float(tolerance)
        self.max_tracked = int(max_tracked)
        self.active = ClockBloomFilter.from_memory(memory, window, seed=seed)
        self._starts: "dict[object, deque]" = {}
        self._clock = 0.0

    def observe(self, key, t=None) -> None:
        """Feed one access; records a batch start when one begins."""
        starts_batch = not self.active.contains(key, t)
        self.active.insert(key, t)
        now = self.active.now
        self._clock = now
        if not starts_batch:
            return
        starts = self._starts.get(key)
        if starts is None:
            if len(self._starts) >= self.max_tracked:
                self._evict_stalest()
            starts = deque(maxlen=self.history)
            self._starts[key] = starts
        starts.append(now)

    def _evict_stalest(self) -> None:
        stalest = min(self._starts, key=lambda k: self._starts[k][-1])
        del self._starts[stalest]

    def period(self, key) -> "float | None":
        """The key's batch period, or None when not periodic (yet)."""
        starts = self._starts.get(key)
        if starts is None or len(starts) < 3:
            return None
        gaps = np.diff(np.asarray(starts, dtype=np.float64))
        low, high = float(gaps.min()), float(gaps.max())
        if low <= 0 or high / low - 1.0 > self.tolerance:
            return None
        return float(gaps.mean())

    def periodic_keys(self) -> list:
        """All keys currently classified as periodic."""
        return [key for key in self._starts if self.period(key) is not None]

    def due_keys(self, lookahead: float, limit: "int | None" = None) -> list:
        """Keys whose next batch is predicted within ``lookahead``.

        A key is due when ``next_start = last_start + period`` falls in
        ``(now, now + lookahead]`` — slightly-late predictions (up to
        half a period) are included so jitter does not starve them.
        Results are ordered most-imminent first; ``limit`` truncates,
        which callers with small caches use to avoid prefetch thrash.
        """
        due = []
        now = self._clock
        for key, starts in self._starts.items():
            period = self.period(key)
            if period is None:
                continue
            next_start = starts[-1] + period
            if now - period / 2 <= next_start <= now + lookahead:
                due.append((next_start, key))
        due.sort()
        keys = [key for _start, key in due]
        return keys if limit is None else keys[:limit]


class PrefetchingCache:
    """A cache that prefetches predicted periodic batches.

    Wraps an inner cache (LRU by default); on every access it also asks
    the :class:`PeriodicityDetector` which keys are due within
    ``lookahead`` and warms them. Prefetch insertions do not count as
    demand accesses in the hit statistics.
    """

    def __init__(self, capacity: int, window: WindowSpec,
                 lookahead: "float | None" = None, detector=None,
                 inner=None, check_interval: int = 16, seed: int = 0):
        self.inner = inner if inner is not None else LRUCache(capacity)
        self.detector = (detector if detector is not None
                         else PeriodicityDetector(window, seed=seed))
        self.lookahead = (lookahead if lookahead is not None
                          else window.length)
        # Scanning the tracked keys on every access would be O(keys)
        # per item; amortise by scanning once per `check_interval`
        # accesses (the lookahead horizon absorbs the delay).
        self.check_interval = max(1, int(check_interval))
        # Warming more keys than a fraction of the cache per scan would
        # evict the prefetches (and the demand set) before they pay off.
        self.prefetch_budget = max(1, capacity // 4)
        self.prefetches = 0
        self._since_check = 0

    def __len__(self) -> int:
        return len(self.inner)

    def access(self, key) -> bool:
        """Demand access: returns True on a hit, then prefetches."""
        hit = self.inner.access(key)
        self.detector.observe(key)
        self._since_check += 1
        if self._since_check >= self.check_interval:
            self._since_check = 0
            resident = self.inner.contents()
            for due in self.detector.due_keys(self.lookahead,
                                              limit=self.prefetch_budget):
                if due not in resident:
                    self.inner.access(due)  # warm it; miss not counted
                    self.prefetches += 1
        return hit

    def contents(self) -> set:
        """The set of resident keys."""
        return self.inner.contents()
