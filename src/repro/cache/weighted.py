"""Batch-size-weighted LFU (paper §1.1, case 1).

"LFU puts weight one on each incoming item. Thus items from larger item
batches are not likely to be inserted into cache soon. With historical
knowledge of the size of past item batches, we will be able to judge
whether an incoming item belongs to a large item batch. If we change
the weight of replacement from one to the size of its past item
batches, larger incoming item batches will encounter fewer cache
misses."

:class:`BatchWeightedLFU` implements exactly that: on admission a key's
initial weight is its *current batch size* as estimated by a CM+clock,
so an item arriving mid-batch (or whose batch history is large) starts
with enough weight to survive eviction pressure, instead of entering at
weight one and being thrashed out.
"""

from __future__ import annotations

import heapq

from ..core.size import ClockCountMin
from ..errors import ConfigurationError
from ..timebase import WindowSpec

__all__ = ["BatchWeightedLFU"]


class BatchWeightedLFU:
    """LFU whose admission weight is the item's batch size.

    Parameters
    ----------
    capacity:
        Cache slots.
    window:
        The batch threshold for the size sketch (a good default is a
        few multiples of the capacity, like the paper's 2x rule for the
        activeness sketch).
    sketch_memory:
        Budget for the CM+clock (bytes or ``"8KB"``).
    """

    def __init__(self, capacity: int, window: WindowSpec,
                 sketch_memory="8KB", seed: int = 0):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.sizes = ClockCountMin.from_memory(sketch_memory, window,
                                               seed=seed)
        self._weight: "dict[object, int]" = {}
        self._heap: "list[tuple[int, int, object]]" = []
        self._age = 0

    def __len__(self) -> int:
        return len(self._weight)

    def access(self, key) -> bool:
        """Access a key; returns True on a hit."""
        self.sizes.insert(key)
        self._age += 1
        if key in self._weight:
            self._weight[key] += 1
            heapq.heappush(self._heap, (self._weight[key], self._age, key))
            return True
        if len(self._weight) >= self.capacity:
            self._evict()
        # Admission weight = the batch's size so far (>= 1): items from
        # large batches start heavy instead of at one.
        weight = max(1, self.sizes.query(key))
        self._weight[key] = weight
        heapq.heappush(self._heap, (weight, self._age, key))
        return False

    def _evict(self) -> None:
        while self._heap:
            weight, _age, key = heapq.heappop(self._heap)
            if self._weight.get(key) == weight:
                del self._weight[key]
                return
        raise RuntimeError("weighted-LFU heap exhausted with residents left")

    def contents(self) -> set:
        """The set of resident keys."""
        return set(self._weight)
