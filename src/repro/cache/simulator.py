"""Cache simulation harness.

Drives any cache exposing ``access(key) -> bool`` over a
:class:`~repro.streams.Stream` and reports hit statistics — the
machinery behind Figure 13 and the cache examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..streams import Stream

__all__ = ["CacheStats", "simulate"]


@dataclass(frozen=True)
class CacheStats:
    """Outcome of a cache simulation."""

    accesses: int
    hits: int

    @property
    def misses(self) -> int:
        """Number of cache misses."""
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served from cache."""
        return self.hits / self.accesses if self.accesses else 0.0

    def __str__(self) -> str:
        return (
            f"{self.hits}/{self.accesses} hits "
            f"(hit rate {self.hit_rate:.3f})"
        )


def simulate(cache, stream: Stream, warmup: int = 0) -> CacheStats:
    """Run ``stream`` through ``cache`` and count hits.

    ``warmup`` accesses at the head of the stream are executed but not
    counted, so cold-start misses don't dominate short traces.
    """
    hits = 0
    counted = 0
    for position, key in enumerate(stream.keys):
        hit = cache.access(int(key))
        if position >= warmup:
            counted += 1
            hits += hit
    return CacheStats(accesses=counted, hits=hits)
