"""Classic cache replacement policies: LFU, LRU, and CLOCK.

Each cache exposes a single ``access(key) -> bool`` method returning
whether the access hit; on a miss the key is admitted, evicting a
victim chosen by the policy. This is the interface
:func:`repro.cache.simulator.simulate` drives.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict

from ..errors import ConfigurationError

__all__ = ["LFUCache", "LRUCache", "ClockCache"]


class LFUCache:
    """Least-Frequently-Used cache (Figure 13's baseline).

    Evicts the resident with the smallest access frequency, breaking
    ties by age. Implemented with a lazy min-heap: each access pushes a
    fresh ``(freq, age, key)`` entry and eviction pops entries until one
    matches the key's current frequency.

    Examples
    --------
    >>> c = LFUCache(2)
    >>> c.access("a"), c.access("a"), c.access("b"), c.access("c")
    (False, True, False, False)
    >>> c.access("a")  # "b" (freq 1) was evicted, not "a" (freq 2)
    True
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._freq: "dict[object, int]" = {}
        self._heap: "list[tuple[int, int, object]]" = []
        self._clock = 0

    def __len__(self) -> int:
        return len(self._freq)

    def access(self, key) -> bool:
        """Access a key; returns True on a hit."""
        self._clock += 1
        if key in self._freq:
            self._freq[key] += 1
            heapq.heappush(self._heap, (self._freq[key], self._clock, key))
            return True
        if len(self._freq) >= self.capacity:
            self._evict()
        self._freq[key] = 1
        heapq.heappush(self._heap, (1, self._clock, key))
        return False

    def _evict(self) -> None:
        while self._heap:
            freq, _age, key = heapq.heappop(self._heap)
            if self._freq.get(key) == freq:
                del self._freq[key]
                return
        raise RuntimeError("LFU heap exhausted with residents remaining")

    def contents(self) -> set:
        """The set of resident keys."""
        return set(self._freq)


class LRUCache:
    """Least-Recently-Used cache.

    Examples
    --------
    >>> c = LRUCache(2)
    >>> c.access("a"), c.access("b"), c.access("a"), c.access("c")
    (False, False, True, False)
    >>> c.access("b")  # "b" was evicted as least recently used
    False
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def access(self, key) -> bool:
        """Access a key; returns True on a hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
        self._entries[key] = True
        return False

    def contents(self) -> set:
        """The set of resident keys."""
        return set(self._entries)


class ClockCache:
    """The classic CLOCK policy of §2.2 (one reference bit per slot).

    A hit sets the slot's reference bit. On a miss the hand sweeps:
    slots with the bit set get a second chance (bit cleared), the first
    slot with a clear bit is the victim.

    Examples
    --------
    >>> c = ClockCache(2)
    >>> c.access("a"), c.access("b"), c.access("a"), c.access("c")
    (False, False, True, False)
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._slots: "list[object | None]" = [None] * capacity
        self._ref: "list[bool]" = [False] * capacity
        self._where: "dict[object, int]" = {}
        self._hand = 0

    def __len__(self) -> int:
        return len(self._where)

    def access(self, key) -> bool:
        """Access a key; returns True on a hit."""
        slot = self._where.get(key)
        if slot is not None:
            self._ref[slot] = True
            return True
        victim = self._find_victim()
        old = self._slots[victim]
        if old is not None:
            del self._where[old]
        self._slots[victim] = key
        self._ref[victim] = True
        self._where[key] = victim
        return False

    def _find_victim(self) -> int:
        while True:
            slot = self._hand
            self._hand = (self._hand + 1) % self.capacity
            if self._slots[slot] is None or not self._ref[slot]:
                return slot
            self._ref[slot] = False

    def contents(self) -> set:
        """The set of resident keys."""
        return set(self._where)
