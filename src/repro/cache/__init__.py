"""Cache simulation substrate (paper §1.1 case 1 and Figure 13).

The paper motivates item batch measurement with cache management and
evaluates a BF+clock-assisted replacement policy against LFU
(Figure 13). This subpackage provides:

- :mod:`repro.cache.policies` — LFU, LRU, and classic CLOCK caches.
- :mod:`repro.cache.clock_assisted` — the BF+clock-assisted cache: on a
  miss it victimises a vacant slot or one whose resident's batch the
  Clock-sketch reports inactive.
- :mod:`repro.cache.prefetch` — periodical-batch detection and a
  prefetching cache (the other half of §1.1 case 1).
- :mod:`repro.cache.weighted` — LFU with batch-size admission weights
  (§1.1's "change the weight of replacement to the batch size").
- :mod:`repro.cache.simulator` — drives a cache over a
  :class:`~repro.streams.Stream` and reports hit rates.
"""

from .policies import ClockCache, LFUCache, LRUCache
from .clock_assisted import ClockAssistedCache
from .prefetch import PeriodicityDetector, PrefetchingCache
from .weighted import BatchWeightedLFU
from .simulator import CacheStats, simulate

__all__ = [
    "LFUCache",
    "LRUCache",
    "ClockCache",
    "ClockAssistedCache",
    "PeriodicityDetector",
    "PrefetchingCache",
    "BatchWeightedLFU",
    "CacheStats",
    "simulate",
]
