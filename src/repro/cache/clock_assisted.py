"""The BF+clock-assisted cache of Figure 13.

Every access is inserted into a small BF+clock whose window is twice
the cache capacity (the paper's choice: "we choose the window size of
BF+clock as twice the size of cache" so all active items fit despite
duplicates). On a miss, a hand sweeps the slots looking for a vacant
slot or one whose resident's batch the BF+clock reports *inactive* —
evicting items whose batches have ended instead of punishing items from
large batches the way LFU does. If a full sweep finds every resident
active, the slot after the hand is evicted anyway (the cache is
over-subscribed and someone must go).

The sketch memory is small next to the cache ("can be neglected" per
§6.2); ``sketch_memory`` defaults to one byte per cache slot.
"""

from __future__ import annotations

from ..core.activeness import ClockBloomFilter
from ..errors import ConfigurationError
from ..timebase import count_window

__all__ = ["ClockAssistedCache"]


class ClockAssistedCache:
    """Cache with BF+clock-driven victim selection.

    Examples
    --------
    >>> c = ClockAssistedCache(4)
    >>> c.access("a"), c.access("a")
    (False, True)
    """

    def __init__(self, capacity: int, sketch_memory=None, s: int = 2,
                 seed: int = 0, scan_limit: int = 64):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        # Victim search probes at most this many slots per miss (a
        # bounded CLOCK sweep): past that depth, evicting an active
        # resident is near-forced anyway and unbounded sweeps would make
        # large caches quadratic.
        self.scan_limit = min(int(scan_limit), self.capacity)
        window = count_window(2 * self.capacity)
        if sketch_memory is None:
            sketch_memory = max(64, self.capacity)  # bytes
        self.sketch = ClockBloomFilter.from_memory(
            sketch_memory, window, s=s, seed=seed
        )
        self._slots: "list[object | None]" = [None] * self.capacity
        self._where: "dict[object, int]" = {}
        self._hand = 0

    def __len__(self) -> int:
        return len(self._where)

    def access(self, key) -> bool:
        """Access a key; returns True on a hit."""
        self.sketch.insert(key)
        if key in self._where:
            return True
        victim = self._find_victim()
        old = self._slots[victim]
        if old is not None:
            del self._where[old]
        self._slots[victim] = key
        self._where[key] = victim
        return False

    def _find_victim(self) -> int:
        """First vacant or inactive slot after the hand; else the next slot."""
        for offset in range(self.scan_limit):
            slot = (self._hand + offset) % self.capacity
            resident = self._slots[slot]
            if resident is None or not self.sketch.contains(resident):
                self._hand = (slot + 1) % self.capacity
                return slot
        slot = self._hand
        self._hand = (slot + 1) % self.capacity
        return slot

    def contents(self) -> set:
        """The set of resident keys."""
        return set(self._where)
