"""Figure 7 — BF+clock stability over time.

Regenerates the FPR-at-6..10-windows series. Reproduced shape: flat
FPR across query times for every window size (steady-state cleaning).
"""

from repro.bench.experiments import fig07_stability_activeness

from conftest import run_once


def test_fig07_activeness_stability(benchmark, record_result):
    result = run_once(benchmark, fig07_stability_activeness.run, seed=1)
    record_result("fig07", result)

    # The paper's panels are log-scale: "comparable FPR" means the
    # series stays within a small constant factor across query times
    # (the synthetic long tail adds a mild upward drift as new keys
    # keep appearing, which real traces also show).
    by_config = {}
    for row in result.rows:
        by_config.setdefault((row["panel"], row["window"]), []).append(row["fpr"])
    for series in by_config.values():
        assert max(series) <= 2.5 * min(series) + 1e-3
