"""Shared helpers for the benchmark suite.

Every benchmark runs one paper experiment (at paper parameters unless
noted), times it via pytest-benchmark, prints the reproduced series,
and archives it under ``benchmarks/results/``.

``--kernel {auto,numpy,numba}`` selects the kernel backend for the
whole benchmark session (default: the ``REPRO_KERNEL`` environment
variable, else ``auto``); the resolved backend is stamped into every
``BENCH_*.json`` payload via :func:`bench_payload`.
"""

import pathlib

import pytest

from repro.kernels import kernel_info, set_default_backend

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--kernel", action="store", default=None,
        choices=("auto", "numpy", "numba"),
        help="kernel backend for the numeric hot path (default: "
             "REPRO_KERNEL env var, else auto)",
    )


@pytest.fixture(scope="session", autouse=True)
def _apply_kernel_option(request):
    """Pin the session's process-default backend from ``--kernel``."""
    choice = request.config.getoption("--kernel")
    if choice is not None:
        set_default_backend(choice)


def bench_payload(result):
    """JSON payload for one ExperimentResult, stamped with the backend."""
    return {
        "title": result.title,
        "columns": list(result.columns),
        "rows": [{k: row[k] for k in result.columns} for row in result.rows],
        "kernel": kernel_info(),
    }


@pytest.fixture
def record_result():
    """Save an ExperimentResult's rendering to benchmarks/results/."""

    def _record(name, result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _record


def run_once(benchmark, runner, **kwargs):
    """Execute an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
