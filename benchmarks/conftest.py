"""Shared helpers for the benchmark suite.

Every benchmark runs one paper experiment (at paper parameters unless
noted), times it via pytest-benchmark, prints the reproduced series,
and archives it under ``benchmarks/results/``.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Save an ExperimentResult's rendering to benchmarks/results/."""

    def _record(name, result):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _record


def run_once(benchmark, runner, **kwargs):
    """Execute an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
