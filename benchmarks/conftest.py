"""Shared helpers for the benchmark suite.

Every benchmark runs one paper experiment (at paper parameters unless
noted), times it via pytest-benchmark, prints the reproduced series,
and archives it through :func:`record_result`, which fans one
``ExperimentResult`` out to every surface the performance trajectory
needs:

- ``benchmarks/results/<name>.txt`` — the rendered table (gitignored
  working copy, uploaded as a CI artifact);
- ``benchmarks/results/<name>.json`` — the JSON payload, same life;
- ``BENCH_<name>.json`` at the repository root — the committed
  cross-PR trajectory file;
- one :class:`~repro.obs.perf.record.PerfRecord` appended to the
  performance ledger (``benchmarks/results/perf_ledger.jsonl``, or
  ``$REPRO_PERF_LEDGER``), carrying the headline scalars, kernel
  backend, host facts, and the explanatory metrics delta when the
  experiment archived a registry snapshot.

``--kernel {auto,numpy,numba}`` selects the kernel backend for the
whole benchmark session (default: the ``REPRO_KERNEL`` environment
variable, else ``auto``); the resolved backend is stamped into every
``BENCH_*.json`` payload via :func:`bench_payload`. Quick-mode runs
(any ``*_BENCH_QUICK`` env toggle) are marked as such on their ledger
records so they only ever compare against quick-mode baselines.
"""

import json
import os
import pathlib

import pytest

from repro.kernels import kernel_info, set_default_backend

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: The suite's quick-mode toggles; any of them marks the run as quick.
QUICK_ENV_VARS = (
    "OBS_BENCH_QUICK",
    "AUDIT_BENCH_QUICK",
    "TRACE_BENCH_QUICK",
    "SHARD_BENCH_QUICK",
    "BATCH_BENCH_QUICK",
    "SERVE_BENCH_QUICK",
)


def pytest_addoption(parser):
    parser.addoption(
        "--kernel", action="store", default=None,
        choices=("auto", "numpy", "numba"),
        help="kernel backend for the numeric hot path (default: "
             "REPRO_KERNEL env var, else auto)",
    )


@pytest.fixture(scope="session", autouse=True)
def _apply_kernel_option(request):
    """Pin the session's process-default backend from ``--kernel``."""
    choice = request.config.getoption("--kernel")
    if choice is not None:
        set_default_backend(choice)


def quick_mode():
    """True when any benchmark quick-mode env toggle is set."""
    return any(os.environ.get(var, "") not in ("", "0")
               for var in QUICK_ENV_VARS)


def bench_payload(result):
    """JSON payload for one ExperimentResult, stamped with the backend.

    JSON-safe extras ride along under ``"extras"`` — except the bulky
    registry snapshot, which benchmarks that want it archive separately.
    """
    payload = {
        "title": result.title,
        "columns": list(result.columns),
        "rows": [{k: row[k] for k in result.columns} for row in result.rows],
        "kernel": kernel_info(),
    }
    extras = {k: v for k, v in getattr(result, "extras", {}).items()
              if k != "snapshot"}
    if extras:
        payload["extras"] = extras
    return payload


@pytest.fixture
def record_result():
    """Archive an ExperimentResult to text, JSON, root, and the ledger."""

    def _record(name, result):
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        text = result.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        body = json.dumps(bench_payload(result), indent=2,
                          default=float) + "\n"
        (RESULTS_DIR / f"{name}.json").write_text(body)
        (REPO_ROOT / f"BENCH_{name}.json").write_text(body)

        # Ledger append: lazy imports so collecting the suite stays
        # cheap when a run dies before any benchmark records.
        from repro.obs.perf import PerfLedger, PerfRecord
        from repro.obs.perf.ledger import LEDGER_ENV
        from repro.obs.perf.telemetry import aggregate_snapshot
        delta = aggregate_snapshot(
            getattr(result, "extras", {}).get("snapshot"))
        record = PerfRecord.from_result(
            name, result, quick=quick_mode(), metrics_delta=delta)
        PerfLedger(os.environ.get(LEDGER_ENV)
                   or RESULTS_DIR / "perf_ledger.jsonl").append(record)

        print()
        print(text)
        return result

    return _record


def run_once(benchmark, runner, **kwargs):
    """Execute an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(lambda: runner(**kwargs), rounds=1, iterations=1)
